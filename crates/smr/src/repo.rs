//! The Sensor Metadata Repository: a semantic-wiki layer whose system of
//! record is the relational engine, with every annotation and link mirrored
//! into the RDF store — so queries can run "using a combination of SQL and
//! SPARQL", as the paper describes.

use crate::error::{Result, SmrError};
use crate::page::{BulkReport, Page, PageDraft};
use sensormeta_graph::CsrGraph;
use sensormeta_rdf::{evaluate, parse_sparql, Solutions, Term, TripleStore};
use sensormeta_relstore::{
    Database, LogicalOp, RecoveryReport, ResultSet, ShipReport, StdVfs, Value, Vfs,
};
use std::sync::Arc;

/// Base IRI for page resources in the RDF mirror.
pub const PAGE_IRI_BASE: &str = "http://swiss-experiment.ch/page/";
/// Base IRI for annotation properties.
pub const PROP_IRI_BASE: &str = "http://swiss-experiment.ch/property/";
/// IRI of the wiki-link predicate.
pub const LINKS_TO: &str = "http://swiss-experiment.ch/property/linksTo";
/// IRI of rdf:type.
pub const RDF_TYPE: &str = "http://www.w3.org/1999/02/22-rdf-syntax-ns#type";
/// Base IRI for namespaces (page classes).
pub const NS_IRI_BASE: &str = "http://swiss-experiment.ch/namespace/";

/// The repository.
pub struct Smr {
    db: Database,
    rdf: TripleStore,
}

impl Default for Smr {
    fn default() -> Self {
        Self::new()
    }
}

/// The repository's relational schema, installed on first open.
const SCHEMA_SQL: &str = "CREATE TABLE pages (id INTEGER PRIMARY KEY, title TEXT NOT NULL UNIQUE, \
     namespace TEXT NOT NULL, body TEXT, revision INTEGER NOT NULL);
     CREATE TABLE annotations (page_id INTEGER NOT NULL, attribute TEXT NOT NULL, \
     value TEXT NOT NULL);
     CREATE TABLE links (from_id INTEGER NOT NULL, to_title TEXT NOT NULL);
     CREATE TABLE tags (page_id INTEGER NOT NULL, tag TEXT NOT NULL);
     CREATE TABLE revisions (page_id INTEGER NOT NULL, revision INTEGER NOT NULL, \
     body TEXT);
     CREATE INDEX annotations_page ON annotations (page_id);
     CREATE INDEX annotations_attr ON annotations (attribute);
     CREATE TRIGRAM INDEX pages_title_trgm ON pages (title);
     CREATE INDEX links_from ON links (from_id);
     CREATE INDEX links_to ON links (to_title);
     CREATE INDEX tags_page ON tags (page_id);
     CREATE INDEX tags_tag ON tags (tag);";

impl Smr {
    /// Creates an empty in-memory repository with its relational schema
    /// installed.
    pub fn new() -> Smr {
        let mut db = Database::new();
        // Invariant: SCHEMA_SQL is a compile-time constant exercised by every
        // test in this crate; it cannot fail against a fresh database.
        db.execute_script(SCHEMA_SQL)
            .expect("static schema is valid"); // xlint: allow(no-unwrap)
        Smr {
            db,
            rdf: TripleStore::new(),
        }
    }

    /// Opens (or creates) a durable repository at `path`: every mutation is
    /// write-ahead logged before it is applied, and opening replays the log
    /// so a crash recovers to the last committed state. Returns what
    /// recovery found alongside the repository.
    pub fn open_durable(path: &std::path::Path) -> Result<(Smr, RecoveryReport)> {
        let (mut db, report) = Database::open_durable(path)?;
        if !db.has_table("pages") {
            db.execute_script(SCHEMA_SQL)?;
        }
        let mut smr = Smr {
            db,
            rdf: TripleStore::new(),
        };
        smr.rebuild_mirror()?;
        Ok((smr, report))
    }

    /// A cheap read-only clone for MVCC snapshot publication: shares every
    /// page, index and triple ordering with `self` (copy-on-write `Arc`s all
    /// the way down) but carries no durability handle, so it never logs and
    /// can be handed to concurrent readers while `self` keeps writing.
    pub fn clone_reader(&self) -> Smr {
        Smr {
            db: self.db.clone_reader(),
            rdf: self.rdf.clone(),
        }
    }

    /// Folds the write-ahead log into a fresh snapshot (no-op for
    /// repositories that are not durable).
    // Pure durability maintenance: no page, tag or triple changes, so no
    // cached result can go stale. // xlint: allow(epoch-bump-on-mutate)
    pub fn checkpoint(&mut self) -> Result<()> {
        Ok(self.db.checkpoint()?)
    }

    /// The page IRI for a title.
    pub fn page_iri(title: &str) -> String {
        format!("{PAGE_IRI_BASE}{}", encode_iri_component(title))
    }

    /// The property IRI for an annotation attribute.
    pub fn property_iri(attr: &str) -> String {
        format!("{PROP_IRI_BASE}{}", encode_iri_component(attr))
    }

    /// Number of pages.
    pub fn page_count(&self) -> usize {
        self.db
            .query_scalar("SELECT COUNT(*) FROM pages")
            .ok()
            .flatten()
            .and_then(|v| v.as_int())
            .unwrap_or(0) as usize
    }

    /// Creates a page. Fails if the title exists.
    pub fn create_page(&mut self, draft: PageDraft) -> Result<i64> {
        if draft.title.is_empty() {
            return Err(SmrError::InvalidDraft("empty title".into()));
        }
        if self.page_id(&draft.title)?.is_some() {
            return Err(SmrError::PageExists(draft.title));
        }
        let id = self.next_page_id()?;
        self.db.insert_row(
            "pages",
            vec![
                Value::Int(id),
                Value::text(draft.title.clone()),
                Value::text(draft.namespace.clone()),
                Value::text(draft.body.clone()),
                Value::Int(1),
            ],
        )?;
        self.write_satellites(id, &draft)?;
        self.mirror_page(&draft);
        let clk = sensormeta_cache::clock();
        clk.bump(sensormeta_cache::Domain::WebGraph);
        clk.bump(sensormeta_cache::Domain::TagIncidence);
        Ok(id)
    }

    /// Updates an existing page in place, bumping its revision and archiving
    /// the previous body.
    pub fn update_page(&mut self, draft: PageDraft) -> Result<i64> {
        let Some(id) = self.page_id(&draft.title)? else {
            return Err(SmrError::NoSuchPage(draft.title));
        };
        let Some(old) = self.get_page(&draft.title)? else {
            return Err(SmrError::NoSuchPage(draft.title));
        };
        // Archive the old body.
        self.db.insert_row(
            "revisions",
            vec![
                Value::Int(id),
                Value::Int(old.revision),
                Value::text(old.body.clone()),
            ],
        )?;
        // Rewrite the page row.
        let esc = sql_escape(&draft.title);
        self.db.execute(&format!(
            "UPDATE pages SET namespace = '{}', body = '{}', revision = revision + 1 \
             WHERE title = '{esc}'",
            sql_escape(&draft.namespace),
            sql_escape(&draft.body),
        ))?;
        // Replace satellites.
        self.db
            .execute(&format!("DELETE FROM annotations WHERE page_id = {id}"))?;
        self.db
            .execute(&format!("DELETE FROM links WHERE from_id = {id}"))?;
        self.db
            .execute(&format!("DELETE FROM tags WHERE page_id = {id}"))?;
        self.write_satellites(id, &draft)?;
        // Re-mirror in RDF.
        self.rdf
            .remove_subject(&Term::iri(Self::page_iri(&draft.title)));
        self.mirror_page(&draft);
        let clk = sensormeta_cache::clock();
        clk.bump(sensormeta_cache::Domain::WebGraph);
        clk.bump(sensormeta_cache::Domain::TagIncidence);
        Ok(id)
    }

    /// Creates or updates, whichever applies.
    pub fn upsert_page(&mut self, draft: PageDraft) -> Result<(i64, bool)> {
        if self.page_id(&draft.title)?.is_some() {
            Ok((self.update_page(draft)?, false))
        } else {
            Ok((self.create_page(draft)?, true))
        }
    }

    /// Deletes a page (its revisions, annotations, links, tags, and RDF
    /// mirror). Returns true if it existed.
    pub fn delete_page(&mut self, title: &str) -> Result<bool> {
        let Some(id) = self.page_id(title)? else {
            return Ok(false);
        };
        for sql in [
            format!("DELETE FROM annotations WHERE page_id = {id}"),
            format!("DELETE FROM links WHERE from_id = {id}"),
            format!("DELETE FROM tags WHERE page_id = {id}"),
            format!("DELETE FROM revisions WHERE page_id = {id}"),
            format!("DELETE FROM pages WHERE id = {id}"),
        ] {
            self.db.execute(&sql)?;
        }
        self.rdf.remove_subject(&Term::iri(Self::page_iri(title)));
        let clk = sensormeta_cache::clock();
        clk.bump(sensormeta_cache::Domain::WebGraph);
        clk.bump(sensormeta_cache::Domain::TagIncidence);
        Ok(true)
    }

    /// Bulk-loads drafts (the paper's Bulk-loading Interface): existing titles
    /// are updated, new ones created, and per-draft failures collected rather
    /// than aborting the batch.
    pub fn bulk_load(&mut self, drafts: impl IntoIterator<Item = PageDraft>) -> BulkReport {
        let mut report = BulkReport::default();
        for draft in drafts {
            let title = draft.title.clone();
            match self.upsert_page(draft) {
                Ok((_, true)) => report.created += 1,
                Ok((_, false)) => report.updated += 1,
                Err(e) => report.errors.push((title, e.to_string())),
            }
        }
        report
    }

    /// Reads a page back, with annotations, links and tags.
    pub fn get_page(&self, title: &str) -> Result<Option<Page>> {
        let esc = sql_escape(title);
        let rs = self.db.query(&format!(
            "SELECT id, title, namespace, body, revision FROM pages WHERE title = '{esc}'"
        ))?;
        let Some(row) = rs.rows.first() else {
            return Ok(None);
        };
        let Some(id) = row[0].as_int() else {
            return Err(SmrError::Corrupt(format!(
                "pages.id for `{title}` is not an integer"
            )));
        };
        let annotations = self
            .db
            .query(&format!(
                "SELECT attribute, value FROM annotations WHERE page_id = {id}"
            ))?
            .rows
            .into_iter()
            .map(|r| (r[0].to_string(), r[1].to_string()))
            .collect();
        let links = self
            .db
            .query(&format!(
                "SELECT to_title FROM links WHERE from_id = {id} ORDER BY to_title"
            ))?
            .rows
            .into_iter()
            .map(|r| r[0].to_string())
            .collect();
        let tags = self
            .db
            .query(&format!(
                "SELECT tag FROM tags WHERE page_id = {id} ORDER BY tag"
            ))?
            .rows
            .into_iter()
            .map(|r| r[0].to_string())
            .collect();
        Ok(Some(Page {
            id,
            title: row[1].to_string(),
            namespace: row[2].to_string(),
            body: row[3].to_string(),
            revision: row[4].as_int().unwrap_or(1),
            annotations,
            links,
            tags,
        }))
    }

    /// All page titles, sorted.
    pub fn page_titles(&self) -> Result<Vec<String>> {
        Ok(self
            .db
            .query("SELECT title FROM pages ORDER BY title")?
            .rows
            .into_iter()
            .map(|r| r[0].to_string())
            .collect())
    }

    /// Titles in a namespace.
    pub fn pages_in_namespace(&self, ns: &str) -> Result<Vec<String>> {
        Ok(self
            .db
            .query(&format!(
                "SELECT title FROM pages WHERE namespace = '{}' ORDER BY title",
                sql_escape(ns)
            ))?
            .rows
            .into_iter()
            .map(|r| r[0].to_string())
            .collect())
    }

    /// Pages linking *to* the given title.
    pub fn backlinks(&self, title: &str) -> Result<Vec<String>> {
        Ok(self
            .db
            .query(&format!(
                "SELECT p.title FROM links l JOIN pages p ON l.from_id = p.id \
                 WHERE l.to_title = '{}' ORDER BY p.title",
                sql_escape(title)
            ))?
            .rows
            .into_iter()
            .map(|r| r[0].to_string())
            .collect())
    }

    /// Archived revision bodies of a page, oldest first.
    pub fn revisions(&self, title: &str) -> Result<Vec<(i64, String)>> {
        let Some(id) = self.page_id(title)? else {
            return Ok(Vec::new());
        };
        Ok(self
            .db
            .query(&format!(
                "SELECT revision, body FROM revisions WHERE page_id = {id} ORDER BY revision"
            ))?
            .rows
            .into_iter()
            .map(|r| (r[0].as_int().unwrap_or(0), r[1].to_string()))
            .collect())
    }

    /// Runs a raw SQL SELECT against the relational store.
    pub fn sql(&self, query: &str) -> Result<ResultSet> {
        Ok(self.db.query(query)?)
    }

    /// Runs a SPARQL SELECT against the RDF mirror.
    pub fn sparql(&self, query: &str) -> Result<Solutions> {
        let q = parse_sparql(query)?;
        Ok(evaluate(&self.rdf, &q)?)
    }

    /// Direct read access to the RDF mirror.
    pub fn rdf(&self) -> &TripleStore {
        &self.rdf
    }

    /// Direct read access to the relational store.
    pub fn database(&self) -> &Database {
        &self.db
    }

    /// Distinct annotation attributes with usage counts (drives the dynamic
    /// drop-down menus of the advanced search form).
    pub fn attributes(&self) -> Result<Vec<(String, usize)>> {
        Ok(self
            .db
            .query(
                "SELECT attribute, COUNT(*) AS n FROM annotations GROUP BY attribute \
                 ORDER BY n DESC, attribute",
            )?
            .rows
            .into_iter()
            .map(|r| (r[0].to_string(), r[1].as_int().unwrap_or(0) as usize))
            .collect())
    }

    /// Distinct values of one attribute (for autocomplete / drop-downs).
    pub fn attribute_values(&self, attr: &str) -> Result<Vec<String>> {
        Ok(self
            .db
            .query(&format!(
                "SELECT DISTINCT value FROM annotations WHERE attribute = '{}' ORDER BY value",
                sql_escape(attr)
            ))?
            .rows
            .into_iter()
            .map(|r| r[0].to_string())
            .collect())
    }

    /// Builds the paper's double linking structure over all pages:
    /// `(semantic, hyperlink, titles)` where `titles[i]` labels node `i`.
    /// Semantic edges come from annotations whose value is another page's
    /// title; hyperlink edges from the wiki-link table (dangling link targets
    /// — red links — are skipped, they are not pages).
    pub fn link_graphs(&self) -> Result<(CsrGraph, CsrGraph, Vec<String>)> {
        let titles = self.page_titles()?;
        let index: std::collections::HashMap<&str, usize> = titles
            .iter()
            .enumerate()
            .map(|(i, t)| (t.as_str(), i))
            .collect();
        let n = titles.len();
        let mut hyper = Vec::new();
        let rs = self
            .db
            .query("SELECT p.title, l.to_title FROM links l JOIN pages p ON l.from_id = p.id")?;
        for row in rs.rows {
            if let (Some(&u), Some(&v)) = (
                index.get(row[0].to_string().as_str()),
                index.get(row[1].to_string().as_str()),
            ) {
                if u != v {
                    hyper.push((u, v));
                }
            }
        }
        let mut semantic = Vec::new();
        let rs = self
            .db
            .query("SELECT p.title, a.value FROM annotations a JOIN pages p ON a.page_id = p.id")?;
        for row in rs.rows {
            if let (Some(&u), Some(&v)) = (
                index.get(row[0].to_string().as_str()),
                index.get(row[1].to_string().as_str()),
            ) {
                if u != v {
                    semantic.push((u, v));
                }
            }
        }
        Ok((
            CsrGraph::from_edges(n, &semantic, true),
            CsrGraph::from_edges(n, &hyper, true),
            titles,
        ))
    }

    /// All (page title, tag) pairs — input for the tagging pipeline.
    pub fn all_tags(&self) -> Result<Vec<(String, String)>> {
        Ok(self
            .db
            .query(
                "SELECT p.title, t.tag FROM tags t JOIN pages p ON t.page_id = p.id \
                 ORDER BY p.title, t.tag",
            )?
            .rows
            .into_iter()
            .map(|r| (r[0].to_string(), r[1].to_string()))
            .collect())
    }

    /// Aggregate repository statistics (pages per namespace, satellite
    /// counts, mirror size) — the home page's health panel.
    pub fn statistics(&self) -> Result<RepoStats> {
        let per_ns = self
            .db
            .query("SELECT namespace, COUNT(*) FROM pages GROUP BY namespace ORDER BY namespace")?
            .rows
            .into_iter()
            .map(|r| (r[0].to_string(), r[1].as_int().unwrap_or(0) as usize))
            .collect();
        let count = |t: &str| -> Result<usize> {
            Ok(self
                .db
                .query_scalar(&format!("SELECT COUNT(*) FROM {t}"))?
                .and_then(|v| v.as_int())
                .unwrap_or(0) as usize)
        };
        Ok(RepoStats {
            pages: count("pages")?,
            pages_per_namespace: per_ns,
            annotations: count("annotations")?,
            links: count("links")?,
            tags: count("tags")?,
            revisions: count("revisions")?,
            triples: self.rdf.len(),
        })
    }

    // ----- persistence -----

    /// Saves the repository to a snapshot file (relational state only; the
    /// RDF mirror is derived data and is rebuilt on load).
    pub fn save(&self, path: &std::path::Path) -> Result<()> {
        Ok(self.db.save(path)?)
    }

    /// Loads a repository from a snapshot file in recovering mode: any
    /// committed write-ahead-log records beside the snapshot are replayed
    /// in memory (nothing on disk is modified), and the RDF mirror is
    /// rebuilt from the relational tables.
    pub fn load(path: &std::path::Path) -> Result<Smr> {
        Ok(Smr::load_with_report(path)?.0)
    }

    /// [`Smr::load`] that also returns the recovery report — a replica opens
    /// through this to learn the highest operation sequence already folded
    /// into its state, which is where WAL tailing resumes.
    pub fn load_with_report(path: &std::path::Path) -> Result<(Smr, RecoveryReport)> {
        let vfs: Arc<dyn Vfs> = Arc::new(StdVfs);
        let (db, report) = Database::open_recovering(vfs, path)?;
        let mut smr = Smr {
            db,
            rdf: TripleStore::new(),
        };
        smr.rebuild_mirror()?;
        Ok((smr, report))
    }

    /// Applies operations shipped from a primary's write-ahead log (the
    /// replica side of replication): relational ops replay through the same
    /// deterministic path recovery uses, then the RDF mirror is rebuilt so
    /// SPARQL sees the new state. Ops at or below `after_seq` are skipped.
    pub fn apply_replicated(
        &mut self,
        ops: &[(u64, LogicalOp)],
        after_seq: u64,
    ) -> Result<ShipReport> {
        let report = self.db.apply_shipped(ops, after_seq);
        if report.applied > 0 {
            self.rebuild_mirror()?;
        }
        Ok(report)
    }

    /// Rebuilds the whole RDF mirror from the relational state. Used after
    /// loading a snapshot; also useful after direct SQL surgery.
    pub fn rebuild_mirror(&mut self) -> Result<()> {
        self.rdf = TripleStore::new();
        let drafts: Vec<PageDraft> = self
            .page_titles()?
            .into_iter()
            .map(|t| {
                let Some(p) = self.get_page(&t)? else {
                    return Err(SmrError::NoSuchPage(t));
                };
                Ok(PageDraft {
                    title: p.title,
                    namespace: p.namespace,
                    body: p.body,
                    annotations: p.annotations,
                    links: p.links,
                    tags: p.tags,
                })
            })
            .collect::<Result<_>>()?;
        for draft in drafts {
            self.mirror_page(&draft);
        }
        // The whole mirror was replaced, not just the pages re-inserted:
        // even when there are zero drafts (so no insert ever bumped), any
        // cached SPARQL result over the old store is now invalid.
        sensormeta_cache::clock().bump(sensormeta_cache::Domain::Triples);
        Ok(())
    }

    // ----- internals -----

    fn page_id(&self, title: &str) -> Result<Option<i64>> {
        let rs = self.db.query(&format!(
            "SELECT id FROM pages WHERE title = '{}'",
            sql_escape(title)
        ))?;
        Ok(rs.rows.first().and_then(|r| r[0].as_int()))
    }

    fn next_page_id(&self) -> Result<i64> {
        Ok(self
            .db
            .query_scalar("SELECT MAX(id) FROM pages")?
            .and_then(|v| v.as_int())
            .unwrap_or(0)
            + 1)
    }

    fn write_satellites(&mut self, id: i64, draft: &PageDraft) -> Result<()> {
        for (a, v) in &draft.annotations {
            self.db.insert_row(
                "annotations",
                vec![
                    Value::Int(id),
                    Value::text(a.clone()),
                    Value::text(v.clone()),
                ],
            )?;
        }
        for l in &draft.links {
            self.db
                .insert_row("links", vec![Value::Int(id), Value::text(l.clone())])?;
        }
        for t in &draft.tags {
            self.db
                .insert_row("tags", vec![Value::Int(id), Value::text(t.clone())])?;
        }
        Ok(())
    }

    fn mirror_page(&mut self, draft: &PageDraft) {
        let subject = Term::iri(Self::page_iri(&draft.title));
        self.rdf.insert(
            subject.clone(),
            Term::iri(RDF_TYPE),
            Term::iri(format!(
                "{NS_IRI_BASE}{}",
                encode_iri_component(&draft.namespace)
            )),
        );
        self.rdf.insert(
            subject.clone(),
            Term::iri(format!("{PROP_IRI_BASE}title")),
            Term::lit(draft.title.clone()),
        );
        for (attr, value) in &draft.annotations {
            // Values that name a page become object links; everything else a
            // literal (numeric literals keep their lexical form).
            let object = if self.page_id(value).ok().flatten().is_some() {
                Term::iri(Self::page_iri(value))
            } else {
                Term::lit(value.clone())
            };
            self.rdf
                .insert(subject.clone(), Term::iri(Self::property_iri(attr)), object);
        }
        for target in &draft.links {
            self.rdf.insert(
                subject.clone(),
                Term::iri(LINKS_TO),
                Term::iri(Self::page_iri(target)),
            );
        }
    }
}

/// Aggregate counts over a repository.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RepoStats {
    /// Total pages.
    pub pages: usize,
    /// (namespace, page count), sorted by namespace.
    pub pages_per_namespace: Vec<(String, usize)>,
    /// Total (attribute, value) annotations.
    pub annotations: usize,
    /// Total wiki links.
    pub links: usize,
    /// Total tag assignments.
    pub tags: usize,
    /// Archived revisions.
    pub revisions: usize,
    /// Triples in the RDF mirror.
    pub triples: usize,
}

/// Escapes a string for inclusion in a single-quoted SQL literal.
pub fn sql_escape(s: &str) -> String {
    s.replace('\'', "''")
}

/// Percent-encodes the characters that would break IRIs.
fn encode_iri_component(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            ' ' => out.push('_'),
            '<' | '>' | '"' | '{' | '}' | '|' | '^' | '`' | '\\' => {
                for b in c.to_string().as_bytes() {
                    out.push_str(&format!("%{b:02X}"));
                }
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn draft(title: &str) -> PageDraft {
        PageDraft::new(title, "Deployment")
            .body("a sensor")
            .annotate("measuresQuantity", "temperature")
            .tag("snow")
    }

    #[test]
    fn create_and_read_back() {
        let mut smr = Smr::new();
        let id = smr.create_page(draft("Deployment:wfj_temp")).unwrap();
        assert_eq!(id, 1);
        let p = smr.get_page("Deployment:wfj_temp").unwrap().unwrap();
        assert_eq!(p.revision, 1);
        assert_eq!(p.annotations[0].1, "temperature");
        assert_eq!(p.tags, vec!["snow"]);
        assert!(smr.get_page("missing").unwrap().is_none());
    }

    #[test]
    fn duplicate_title_rejected() {
        let mut smr = Smr::new();
        smr.create_page(draft("X")).unwrap();
        assert!(matches!(
            smr.create_page(draft("X")).unwrap_err(),
            SmrError::PageExists(_)
        ));
    }

    #[test]
    fn update_bumps_revision_and_archives() {
        let mut smr = Smr::new();
        smr.create_page(draft("X")).unwrap();
        smr.update_page(PageDraft::new("X", "Deployment").body("v2"))
            .unwrap();
        let p = smr.get_page("X").unwrap().unwrap();
        assert_eq!(p.revision, 2);
        assert_eq!(p.body, "v2");
        assert!(p.annotations.is_empty(), "satellites replaced");
        let revs = smr.revisions("X").unwrap();
        assert_eq!(revs.len(), 1);
        assert_eq!(revs[0], (1, "a sensor".to_string()));
    }

    #[test]
    fn rdf_mirror_tracks_pages() {
        let mut smr = Smr::new();
        smr.create_page(draft("Deployment:wfj_temp").annotate("deployedAt", "Fieldsite:WFJ"))
            .unwrap();
        smr.create_page(PageDraft::new("Fieldsite:WFJ", "Fieldsite"))
            .unwrap();
        // Literal annotation mirrored.
        let sols = smr
            .sparql(
                "PREFIX prop: <http://swiss-experiment.ch/property/> \
                 SELECT ?s WHERE { ?s prop:measuresQuantity \"temperature\" }",
            )
            .unwrap();
        assert_eq!(sols.len(), 1);
        // Deleting removes the mirror.
        smr.delete_page("Deployment:wfj_temp").unwrap();
        let sols = smr
            .sparql(
                "PREFIX prop: <http://swiss-experiment.ch/property/> \
                 SELECT ?s WHERE { ?s prop:measuresQuantity \"temperature\" }",
            )
            .unwrap();
        assert!(sols.is_empty());
    }

    #[test]
    fn object_annotations_become_iri_links() {
        let mut smr = Smr::new();
        smr.create_page(PageDraft::new("Fieldsite:WFJ", "Fieldsite"))
            .unwrap();
        smr.create_page(draft("Deployment:d1").annotate("deployedAt", "Fieldsite:WFJ"))
            .unwrap();
        let sols = smr
            .sparql(
                "PREFIX prop: <http://swiss-experiment.ch/property/> \
                 SELECT ?site WHERE { ?d prop:deployedAt ?site . FILTER(isIRI(?site)) }",
            )
            .unwrap();
        assert_eq!(sols.len(), 1);
    }

    #[test]
    fn bulk_load_reports() {
        let mut smr = Smr::new();
        smr.create_page(draft("A")).unwrap();
        let report = smr.bulk_load(vec![
            draft("A"),                       // update
            draft("B"),                       // create
            PageDraft::new("", "Deployment"), // error
        ]);
        assert_eq!(report.created, 1);
        assert_eq!(report.updated, 1);
        assert_eq!(report.errors.len(), 1);
        assert_eq!(smr.page_count(), 2);
    }

    #[test]
    fn backlinks_and_namespaces() {
        let mut smr = Smr::new();
        smr.create_page(PageDraft::new("Fieldsite:WFJ", "Fieldsite"))
            .unwrap();
        smr.create_page(draft("Deployment:d1").link("Fieldsite:WFJ"))
            .unwrap();
        smr.create_page(draft("Deployment:d2").link("Fieldsite:WFJ"))
            .unwrap();
        assert_eq!(
            smr.backlinks("Fieldsite:WFJ").unwrap(),
            vec!["Deployment:d1", "Deployment:d2"]
        );
        assert_eq!(smr.pages_in_namespace("Fieldsite").unwrap().len(), 1);
        assert_eq!(smr.pages_in_namespace("Deployment").unwrap().len(), 2);
    }

    #[test]
    fn link_graphs_built_from_both_structures() {
        let mut smr = Smr::new();
        smr.create_page(PageDraft::new("A", "Main").link("B"))
            .unwrap();
        smr.create_page(PageDraft::new("B", "Main").annotate("rel", "A"))
            .unwrap();
        smr.create_page(PageDraft::new("C", "Main").link("Missing"))
            .unwrap();
        let (sem, hyp, titles) = smr.link_graphs().unwrap();
        assert_eq!(titles, vec!["A", "B", "C"]);
        let a = 0;
        let b = 1;
        assert_eq!(hyp.neighbors(a), &[b]);
        assert_eq!(sem.neighbors(b), &[a]);
        // Red link (to a missing page) produces no edge.
        assert_eq!(hyp.out_degree(2), 0);
    }

    #[test]
    fn attributes_and_values_for_dropdowns() {
        let mut smr = Smr::new();
        smr.create_page(draft("D1")).unwrap();
        smr.create_page(draft("D2").annotate("hasUnit", "C"))
            .unwrap();
        let attrs = smr.attributes().unwrap();
        assert_eq!(attrs[0].0, "measuresQuantity");
        assert_eq!(attrs[0].1, 2);
        assert_eq!(
            smr.attribute_values("measuresQuantity").unwrap(),
            vec!["temperature"]
        );
    }

    #[test]
    fn sql_escape_quotes() {
        let mut smr = Smr::new();
        smr.create_page(PageDraft::new("O'Brien's page", "Main"))
            .unwrap();
        let p = smr.get_page("O'Brien's page").unwrap().unwrap();
        assert_eq!(p.title, "O'Brien's page");
    }

    #[test]
    fn all_tags_lists_pairs() {
        let mut smr = Smr::new();
        smr.create_page(draft("A").tag("alpine")).unwrap();
        let tags = smr.all_tags().unwrap();
        assert_eq!(
            tags,
            vec![
                ("A".to_string(), "alpine".to_string()),
                ("A".to_string(), "snow".to_string())
            ]
        );
    }
}

#[cfg(test)]
mod persistence_tests {
    use super::*;

    #[test]
    fn save_load_roundtrip_with_mirror() {
        let dir = std::env::temp_dir().join("smr_persist_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("repo.snap");

        let mut smr = Smr::new();
        smr.create_page(PageDraft::new("Fieldsite:WFJ", "Fieldsite"))
            .unwrap();
        smr.create_page(
            PageDraft::new("Deployment:d1", "Deployment")
                .body("a body with ünïcode")
                .annotate("deployedAt", "Fieldsite:WFJ")
                .annotate("measuresQuantity", "temperature")
                .link("Fieldsite:WFJ")
                .tag("snow"),
        )
        .unwrap();
        smr.save(&path).unwrap();

        let restored = Smr::load(&path).unwrap();
        assert_eq!(restored.page_count(), 2);
        let page = restored.get_page("Deployment:d1").unwrap().unwrap();
        assert_eq!(page.body, "a body with ünïcode");
        assert_eq!(page.tags, vec!["snow"]);
        // The RDF mirror was rebuilt: SPARQL still answers, and the
        // object-valued annotation is an IRI again.
        let sols = restored
            .sparql(
                "PREFIX prop: <http://swiss-experiment.ch/property/> \
                 SELECT ?site WHERE { ?d prop:deployedAt ?site . FILTER(isIRI(?site)) }",
            )
            .unwrap();
        assert_eq!(sols.len(), 1);
        // Mutations work after load (ids continue correctly).
        let mut restored = restored;
        let id = restored
            .create_page(PageDraft::new("Deployment:d2", "Deployment"))
            .unwrap();
        assert!(id > 2);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_missing_file_errors() {
        assert!(Smr::load(std::path::Path::new("/nonexistent/x.snap")).is_err());
    }

    #[test]
    fn durable_open_survives_drop_without_save() {
        let dir = std::env::temp_dir().join("smr_durable_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("repo.snap");
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(sensormeta_relstore::wal_path_for(&path)).ok();

        let (mut smr, report) = Smr::open_durable(&path).unwrap();
        assert_eq!(report.replayed_ops, 0);
        smr.create_page(
            PageDraft::new("Deployment:d1", "Deployment")
                .annotate("measuresQuantity", "temperature")
                .tag("snow"),
        )
        .unwrap();
        // Drop without calling save(): the WAL alone must carry the state.
        drop(smr);

        let (restored, report) = Smr::open_durable(&path).unwrap();
        assert!(
            report.replayed_ops > 0,
            "page creation must be replayed from the log"
        );
        let p = restored.get_page("Deployment:d1").unwrap().unwrap();
        assert_eq!(p.tags, vec!["snow"]);
        // The mirror was rebuilt from replayed state too.
        let sols = restored
            .sparql(
                "PREFIX prop: <http://swiss-experiment.ch/property/> \
                 SELECT ?s WHERE { ?s prop:measuresQuantity \"temperature\" }",
            )
            .unwrap();
        assert_eq!(sols.len(), 1);
        // Read-only load sees the same recovered state.
        let ro = Smr::load(&path).unwrap();
        assert_eq!(ro.page_count(), 1);

        std::fs::remove_file(&path).ok();
        std::fs::remove_file(sensormeta_relstore::wal_path_for(&path)).ok();
    }
}

#[cfg(test)]
mod stats_tests {
    use super::*;

    #[test]
    fn statistics_count_everything() {
        let mut smr = Smr::new();
        smr.create_page(
            PageDraft::new("Fieldsite:A", "Fieldsite")
                .annotate("x", "1")
                .annotate("y", "2")
                .tag("t1"),
        )
        .unwrap();
        smr.create_page(PageDraft::new("Deployment:B", "Deployment").link("Fieldsite:A"))
            .unwrap();
        smr.update_page(PageDraft::new("Deployment:B", "Deployment").body("v2"))
            .unwrap();
        let stats = smr.statistics().unwrap();
        assert_eq!(stats.pages, 2);
        assert_eq!(
            stats.pages_per_namespace,
            vec![("Deployment".to_string(), 1), ("Fieldsite".to_string(), 1)]
        );
        assert_eq!(stats.annotations, 2);
        assert_eq!(stats.links, 0, "update replaced satellites");
        assert_eq!(stats.tags, 1);
        assert_eq!(stats.revisions, 1);
        assert!(stats.triples >= 4, "type + title triples per page");
    }
}
