//! Page types and the bulk-load input formats.

use serde::{Deserialize, Serialize};

/// Input for creating or updating a metadata page.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PageDraft {
    /// Unique title, conventionally `Namespace:name`.
    pub title: String,
    /// Namespace / entity kind (e.g. `Deployment`).
    #[serde(default = "default_namespace")]
    pub namespace: String,
    /// Free-text body (wiki markup treated as plain text).
    #[serde(default)]
    pub body: String,
    /// Semantic (attribute, value) annotations.
    #[serde(default)]
    pub annotations: Vec<(String, String)>,
    /// Titles of pages this page links to.
    #[serde(default)]
    pub links: Vec<String>,
    /// User tags.
    #[serde(default)]
    pub tags: Vec<String>,
}

fn default_namespace() -> String {
    "Main".to_owned()
}

impl PageDraft {
    /// Creates a minimal draft.
    pub fn new(title: impl Into<String>, namespace: impl Into<String>) -> PageDraft {
        PageDraft {
            title: title.into(),
            namespace: namespace.into(),
            body: String::new(),
            annotations: Vec::new(),
            links: Vec::new(),
            tags: Vec::new(),
        }
    }

    /// Adds body text.
    pub fn body(mut self, body: impl Into<String>) -> PageDraft {
        self.body = body.into();
        self
    }

    /// Adds one annotation.
    pub fn annotate(mut self, attr: impl Into<String>, value: impl Into<String>) -> PageDraft {
        self.annotations.push((attr.into(), value.into()));
        self
    }

    /// Adds one wiki link.
    pub fn link(mut self, target: impl Into<String>) -> PageDraft {
        self.links.push(target.into());
        self
    }

    /// Adds one tag.
    pub fn tag(mut self, tag: impl Into<String>) -> PageDraft {
        self.tags.push(tag.into());
        self
    }
}

/// A stored metadata page as read back from the repository.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Page {
    /// Stable numeric id.
    pub id: i64,
    /// Unique title.
    pub title: String,
    /// Namespace.
    pub namespace: String,
    /// Current body text.
    pub body: String,
    /// Current revision number (1-based).
    pub revision: i64,
    /// Annotations.
    pub annotations: Vec<(String, String)>,
    /// Outgoing wiki links.
    pub links: Vec<String>,
    /// Tags.
    pub tags: Vec<String>,
}

/// Outcome of a bulk load (the paper's Bulk-loading Interface reports this
/// back to the uploader).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct BulkReport {
    /// Pages newly created.
    pub created: usize,
    /// Pages that already existed and were updated in place.
    pub updated: usize,
    /// Inputs rejected, with the reason.
    pub errors: Vec<(String, String)>,
}

/// Parses a JSON-lines bulk file: one [`PageDraft`] object per line.
/// Malformed lines are reported, not fatal — a bulk upload of thousands of
/// rows must not die on row 17.
pub fn parse_jsonl(input: &str) -> (Vec<PageDraft>, Vec<(String, String)>) {
    let mut drafts = Vec::new();
    let mut errors = Vec::new();
    for (lineno, line) in input.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        match serde_json::from_str::<PageDraft>(line) {
            Ok(d) => drafts.push(d),
            Err(e) => errors.push((format!("line {}", lineno + 1), e.to_string())),
        }
    }
    (drafts, errors)
}

/// Parses a CSV bulk file with header
/// `title,namespace,body,annotations,links,tags`; `annotations` is
/// `attr=value|attr=value`, `links`/`tags` are `|`-separated. Quoted fields
/// with embedded commas are supported.
pub fn parse_csv(input: &str) -> (Vec<PageDraft>, Vec<(String, String)>) {
    let mut drafts = Vec::new();
    let mut errors = Vec::new();
    let mut lines = input.lines().enumerate();
    let Some((_, header)) = lines.next() else {
        return (drafts, errors);
    };
    let cols: Vec<String> = split_csv_line(header)
        .into_iter()
        .map(|s| s.trim().to_owned())
        .collect();
    let col_ix = |name: &str| cols.iter().position(|c| c.eq_ignore_ascii_case(name));
    let (Some(t_ix), ns_ix, b_ix, a_ix, l_ix, g_ix) = (
        col_ix("title"),
        col_ix("namespace"),
        col_ix("body"),
        col_ix("annotations"),
        col_ix("links"),
        col_ix("tags"),
    ) else {
        errors.push(("header".into(), "missing required `title` column".into()));
        return (drafts, errors);
    };
    for (lineno, line) in lines {
        if line.trim().is_empty() {
            continue;
        }
        let fields = split_csv_line(line);
        let get = |ix: Option<usize>| ix.and_then(|i| fields.get(i)).cloned().unwrap_or_default();
        let title = get(Some(t_ix));
        if title.is_empty() {
            errors.push((format!("line {}", lineno + 1), "empty title".into()));
            continue;
        }
        let annotations = get(a_ix)
            .split('|')
            .filter(|s| !s.is_empty())
            .filter_map(|kv| {
                kv.split_once('=')
                    .map(|(a, v)| (a.trim().to_owned(), v.trim().to_owned()))
            })
            .collect();
        let split_list = |s: String| -> Vec<String> {
            s.split('|')
                .map(str::trim)
                .filter(|s| !s.is_empty())
                .map(str::to_owned)
                .collect()
        };
        drafts.push(PageDraft {
            title,
            namespace: {
                let ns = get(ns_ix);
                if ns.is_empty() {
                    default_namespace()
                } else {
                    ns
                }
            },
            body: get(b_ix),
            annotations,
            links: split_list(get(l_ix)),
            tags: split_list(get(g_ix)),
        });
    }
    (drafts, errors)
}

/// Splits one CSV line honoring double-quoted fields with `""` escapes.
fn split_csv_line(line: &str) -> Vec<String> {
    let mut fields = Vec::new();
    let mut cur = String::new();
    let mut in_quotes = false;
    let mut chars = line.chars().peekable();
    while let Some(c) = chars.next() {
        match c {
            '"' if in_quotes => {
                if chars.peek() == Some(&'"') {
                    cur.push('"');
                    chars.next();
                } else {
                    in_quotes = false;
                }
            }
            '"' => in_quotes = true,
            ',' if !in_quotes => {
                fields.push(std::mem::take(&mut cur));
            }
            c => cur.push(c),
        }
    }
    fields.push(cur);
    fields
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jsonl_parses_and_reports_bad_lines() {
        let input = r#"
{"title": "Fieldsite:Davos", "namespace": "Fieldsite", "annotations": [["hasElevation", "1594"]]}
# a comment
{"title": "broken"
{"title": "Project:x", "links": ["Fieldsite:Davos"], "tags": ["snow"]}
"#;
        let (drafts, errors) = parse_jsonl(input);
        assert_eq!(drafts.len(), 2);
        assert_eq!(errors.len(), 1);
        assert_eq!(drafts[0].annotations[0].0, "hasElevation");
        assert_eq!(drafts[1].namespace, "Main", "namespace defaults");
    }

    #[test]
    fn csv_roundtrip() {
        let input = "title,namespace,body,annotations,links,tags\n\
            Fieldsite:Davos,Fieldsite,\"Station at Davos, GR\",hasElevation=1594|canton=GR,Project:p1,snow|alpine\n\
            ,Fieldsite,missing title,,,\n";
        let (drafts, errors) = parse_csv(input);
        assert_eq!(drafts.len(), 1);
        assert_eq!(errors.len(), 1);
        let d = &drafts[0];
        assert_eq!(d.body, "Station at Davos, GR");
        assert_eq!(d.annotations.len(), 2);
        assert_eq!(d.links, vec!["Project:p1"]);
        assert_eq!(d.tags, vec!["snow", "alpine"]);
    }

    #[test]
    fn csv_quote_escapes() {
        let fields = split_csv_line("a,\"b\"\"c\",d");
        assert_eq!(fields, vec!["a", "b\"c", "d"]);
    }

    #[test]
    fn csv_missing_title_column() {
        let (drafts, errors) = parse_csv("name,body\nx,y\n");
        assert!(drafts.is_empty());
        assert_eq!(errors.len(), 1);
    }

    #[test]
    fn draft_builder() {
        let d = PageDraft::new("Deployment:x", "Deployment")
            .body("text")
            .annotate("hasUnit", "C")
            .link("Fieldsite:Davos")
            .tag("snow");
        assert_eq!(d.annotations.len(), 1);
        assert_eq!(d.links.len(), 1);
        assert_eq!(d.tags.len(), 1);
    }
}
