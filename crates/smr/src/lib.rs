//! # sensormeta-smr
//!
//! The Sensor Metadata Repository: a semantic-wiki metadata store in the
//! style of the paper's Semantic-MediaWiki deployment. Pages carry
//! (attribute, value) annotations, wiki links, tags, and revisioned bodies;
//! the relational engine is the system of record and every annotation/link
//! is mirrored into an RDF store so queries run as a combination of SQL and
//! SPARQL. Includes the bulk-loading interface (JSON-lines and CSV).
//!
//! ```
//! use sensormeta_smr::{Smr, PageDraft};
//!
//! let mut smr = Smr::new();
//! smr.create_page(
//!     PageDraft::new("Deployment:wfj_temp", "Deployment")
//!         .annotate("measuresQuantity", "temperature")
//!         .tag("snow"),
//! ).unwrap();
//! assert_eq!(smr.page_count(), 1);
//! ```

#![warn(missing_docs)]

pub mod error;
pub mod page;
pub mod repo;

pub use error::{Result, SmrError};
pub use page::{parse_csv, parse_jsonl, BulkReport, Page, PageDraft};
pub use repo::{sql_escape, RepoStats, Smr};
