//! SMR error types.

use std::fmt;

/// Errors produced by the Sensor Metadata Repository.
#[derive(Debug)]
pub enum SmrError {
    /// A page with this title already exists.
    PageExists(String),
    /// No page with this title.
    NoSuchPage(String),
    /// A draft failed validation.
    InvalidDraft(String),
    /// A stored row did not have the shape the schema promises (e.g. a
    /// non-integer id column). Indicates direct SQL surgery or a bug.
    Corrupt(String),
    /// Underlying relational engine error.
    Rel(sensormeta_relstore::RelError),
    /// Underlying RDF/SPARQL error.
    Rdf(sensormeta_rdf::RdfError),
}

impl fmt::Display for SmrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SmrError::PageExists(t) => write!(f, "page `{t}` already exists"),
            SmrError::NoSuchPage(t) => write!(f, "no such page: `{t}`"),
            SmrError::InvalidDraft(m) => write!(f, "invalid page draft: {m}"),
            SmrError::Corrupt(m) => write!(f, "corrupt relational state: {m}"),
            SmrError::Rel(e) => write!(f, "storage error: {e}"),
            SmrError::Rdf(e) => write!(f, "rdf error: {e}"),
        }
    }
}

impl std::error::Error for SmrError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SmrError::Rel(e) => Some(e),
            SmrError::Rdf(e) => Some(e),
            _ => None,
        }
    }
}

impl From<sensormeta_relstore::RelError> for SmrError {
    fn from(e: sensormeta_relstore::RelError) -> Self {
        SmrError::Rel(e)
    }
}

impl From<sensormeta_rdf::RdfError> for SmrError {
    fn from(e: sensormeta_rdf::RdfError) -> Self {
        SmrError::Rdf(e)
    }
}

/// Result alias for the SMR.
pub type Result<T> = std::result::Result<T, SmrError>;
