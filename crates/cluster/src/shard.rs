//! Hash partitioning and the scatter-gather executor.

use sensormeta_cache::Domain;
use sensormeta_obs as obs;
use sensormeta_par::Pool;
use sensormeta_query::{CondOp, QueryEngine, QueryError, QueryOutput, Result, SearchForm};
use sensormeta_search::Hit;
use sensormeta_smr::{PageDraft, Smr};
use sensormeta_tx::{Mvcc, Snapshot};
use std::collections::HashSet;
use std::ops::Range;
use std::time::Instant;

/// Hash partitioning of the store: pages by id, index documents by range.
///
/// Page placement uses an FNV-1a hash of the SMR page id, so it is stable
/// across rebuilds of derived structures; keyword evaluation instead slices
/// the *shared* index into contiguous document ranges, which lets each
/// scatter task scan a disjoint span of postings with zero coordination.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardMap {
    shards: usize,
}

impl ShardMap {
    /// A map over `shards` partitions (clamped to at least 1).
    pub fn new(shards: usize) -> ShardMap {
        ShardMap {
            shards: shards.max(1),
        }
    }

    /// Number of partitions.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The shard owning an SMR page id.
    pub fn shard_of(&self, page_id: i64) -> usize {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = FNV_OFFSET;
        for b in page_id.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(FNV_PRIME);
        }
        (h % self.shards as u64) as usize
    }

    /// Contiguous, disjoint document ranges covering `0..doc_count` — one
    /// per shard (trailing ranges may be empty for tiny corpora).
    pub fn doc_ranges(&self, doc_count: usize) -> Vec<Range<usize>> {
        let per = doc_count.div_ceil(self.shards).max(1);
        (0..self.shards)
            .map(|s| {
                let lo = (s * per).min(doc_count);
                let hi = ((s + 1) * per).min(doc_count);
                lo..hi
            })
            .collect()
    }
}

/// Deterministically merges per-shard hit lists into one ranked list.
///
/// Hits are identified by their *external key* (page title), never by
/// shard-local doc ids, so the merge is independent of how documents were
/// assigned to shards. Duplicate keys keep the higher score (shards are
/// disjoint, so duplicates only arise from overlapping scatters). Order is
/// score-descending with the key as tie-break.
pub fn merge_hits(parts: Vec<Vec<Hit>>) -> Vec<Hit> {
    let mut by_key: std::collections::HashMap<String, Hit> = std::collections::HashMap::new();
    for hit in parts.into_iter().flatten() {
        match by_key.entry(hit.key.clone()) {
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(hit);
            }
            std::collections::hash_map::Entry::Occupied(mut e) => {
                if hit.score > e.get().score {
                    e.insert(hit);
                }
            }
        }
    }
    let mut merged: Vec<Hit> = by_key.into_values().collect();
    merged.sort_by(|a, b| {
        b.score
            .partial_cmp(&a.score)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.key.cmp(&b.key))
    });
    merged
}

/// Per-task service times from one scattered search.
///
/// In-process shards stand in for cluster nodes, so the number that scales
/// with shard count is per-*task* service time, not single-box wall clock
/// (on a box with fewer cores than shards the pool interleaves tasks and
/// wall clock flattens). [`ScatterTrace::critical_path_us`] models the read
/// latency a one-worker-per-shard deployment would see: the slowest task of
/// each scattered stage plus the serial coordinator work.
#[derive(Debug, Clone, Default)]
pub struct ScatterTrace {
    /// Stage-1 per-document-range keyword scoring, µs per task.
    pub keyword_task_us: Vec<u64>,
    /// Stage-2 condition evaluation, µs accumulated per shard.
    pub condition_task_us: Vec<u64>,
    /// Stage-3/4 per-shard candidate assembly, µs per task.
    pub assemble_task_us: Vec<u64>,
    /// Serial coordinator work (snapshotting, hit merge, score projection,
    /// title-set resolution, finalization), µs.
    pub serial_us: u64,
}

impl ScatterTrace {
    /// Modeled critical-path latency of the scattered read: the slowest
    /// task of each scattered stage plus the serial coordinator tail.
    pub fn critical_path_us(&self) -> u64 {
        self.keyword_task_us.iter().copied().max().unwrap_or(0)
            + self.condition_task_us.iter().copied().max().unwrap_or(0)
            + self.assemble_task_us.iter().copied().max().unwrap_or(0)
            + self.serial_us
    }
}

/// One shard's published state: a query engine over the partition store,
/// plus the dense page ids the shard owns (assembly is restricted to these).
struct ShardState {
    engine: QueryEngine,
    owned: HashSet<usize>,
}

/// The scatter-gather executor: N in-process shards of one repository, each
/// an independent engine behind an MVCC cell, searched in parallel on the
/// global pool and merged deterministically.
///
/// Shards partition *storage and per-document work*; ranking statistics
/// stay collection-global (the shard views share the full index, PageRank
/// vector and recommender by `Arc`), which is what makes
/// [`ShardSet::search`] byte-identical to
/// [`QueryEngine::search_uncached`] — the property the cluster test suite
/// asserts at 1, 2 and 4 shards.
pub struct ShardSet {
    map: ShardMap,
    /// The whole-corpus engine: global stages (keyword scatter input,
    /// normalization, recommendations) run here.
    coordinator: Mvcc<QueryEngine>,
    shards: Vec<Mvcc<ShardState>>,
}

impl ShardSet {
    /// Partitions `primary`'s repository into `shards` shard views and
    /// publishes each through its own MVCC cell.
    pub fn build(primary: &QueryEngine, shards: usize) -> Result<ShardSet> {
        let map = ShardMap::new(shards);
        let states = Self::partition(primary, map)?;
        Ok(ShardSet {
            map,
            coordinator: Mvcc::new(primary.clone_reader()),
            shards: states.into_iter().map(Mvcc::new).collect(),
        })
    }

    /// Re-partitions from the primary's current state and publishes new
    /// versions into every cell — the write path after a primary commit.
    /// Publishes with no domain bumps: the primary's own commit already
    /// dated the underlying change on the epoch clock.
    pub fn republish(&self, primary: &QueryEngine) -> Result<()> {
        let states = Self::partition(primary, self.map)?;
        for (cell, state) in self.shards.iter().zip(states) {
            cell.begin().publish(&[], state);
        }
        self.coordinator
            .begin()
            .publish(&[], primary.clone_reader());
        obs::counter("cluster_republish_total").inc();
        Ok(())
    }

    fn partition(primary: &QueryEngine, map: ShardMap) -> Result<Vec<ShardState>> {
        let _span = obs::span("cluster_partition");
        let n = map.shards();
        let mut buckets: Vec<Vec<PageDraft>> = (0..n).map(|_| Vec::new()).collect();
        let mut owned: Vec<HashSet<usize>> = (0..n).map(|_| HashSet::new()).collect();
        for title in primary.smr().page_titles()? {
            let Some(page) = primary.smr().get_page(&title)? else {
                continue;
            };
            let shard = map.shard_of(page.id);
            if let Some(dense) = primary.dense_id(&page.title) {
                owned[shard].insert(dense);
            }
            buckets[shard].push(PageDraft {
                title: page.title,
                namespace: page.namespace,
                body: page.body,
                annotations: page.annotations,
                links: page.links,
                tags: page.tags,
            });
        }
        buckets
            .into_iter()
            .zip(owned)
            .map(|(drafts, owned)| {
                let mut partition = Smr::new();
                let report = partition.bulk_load(drafts);
                if let Some(e) = report.errors.first() {
                    return Err(QueryError::Internal(format!(
                        "shard partition load failed: {e:?}"
                    )));
                }
                Ok(ShardState {
                    engine: primary.shard_view(partition),
                    owned,
                })
            })
            .collect()
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.map.shards()
    }

    /// A snapshot of the coordinator (whole-corpus) engine.
    pub fn coordinator(&self) -> Snapshot<QueryEngine> {
        self.coordinator.snapshot()
    }

    /// Scatter-gather search: fans the form out to every shard on the
    /// global pool and merges the partials into one output. Byte-identical
    /// to the coordinator's `search_uncached` for the same corpus.
    pub fn search(&self, form: &SearchForm, user: Option<&str>) -> Result<QueryOutput> {
        Ok(self.search_traced(form, user)?.0)
    }

    /// [`ShardSet::search`] plus a [`ScatterTrace`] of per-task service
    /// times — the measurement the cluster bench uses for its throughput
    /// model (in-process shards stand in for cluster nodes, so per-task
    /// time, not single-box wall clock, is what scales with shard count).
    pub fn search_traced(
        &self,
        form: &SearchForm,
        user: Option<&str>,
    ) -> Result<(QueryOutput, ScatterTrace)> {
        let _span = obs::span("cluster_search");
        obs::counter("cluster_searches_total").inc();
        obs::counter("cluster_shard_fanout_total").add(self.shards.len() as u64);
        if form.is_empty() {
            return Err(QueryError::EmptyForm);
        }
        let total = Instant::now();
        let mut scattered_wall = 0u64;
        let mut trace = ScatterTrace::default();
        let pool = Pool::global();
        let coord = self.coordinator.snapshot();
        let snaps: Vec<Snapshot<ShardState>> = self
            .shards
            .iter()
            .map(sensormeta_tx::Mvcc::snapshot)
            .collect();
        trace.condition_task_us = vec![0; snaps.len()];

        // Stage 1: keyword scoring scattered by document range over the
        // shared index, merged by external key.
        let scores = if form.keywords.trim().is_empty() {
            None
        } else {
            let ranges = self.map.doc_ranges(coord.doc_count());
            let region = Instant::now();
            let parts = pool.par_map_collect(&ranges, 1, |r| {
                let t = Instant::now();
                // Engine counters take the short, bounded registry lock;
                // they never wait on I/O. xlint: allow(no-blocking-in-par)
                let out = coord.keyword_hits_range(form, r.clone());
                (out, t.elapsed().as_micros() as u64)
            });
            scattered_wall += region.elapsed().as_micros() as u64;
            let mut lists = Vec::with_capacity(parts.len());
            for (part, us) in parts {
                trace.keyword_task_us.push(us);
                lists.push(part?.unwrap_or_default());
            }
            let merged = {
                let _m = obs::span("cluster_merge");
                merge_hits(lists)
            };
            Some(coord.scores_from_hits(&merged))
        };

        // Stage 2: structured conditions scattered across shard stores.
        // Each condition's matches are the union of the per-shard matches;
        // for Eq conditions the case-insensitive SQL fallback triggers only
        // when the *global* SPARQL union is empty — the same decision the
        // single-store path makes.
        let mut cond_sets = Vec::with_capacity(form.conditions.len());
        for cond in &form.conditions {
            let mut titles: Vec<String> = Vec::new();
            if cond.op == CondOp::Eq {
                let region = Instant::now();
                let parts = pool.par_map_collect(&snaps, 1, |s| {
                    let t = Instant::now();
                    // Bounded registry-counter lock only. xlint: allow(no-blocking-in-par)
                    let out = s.engine.sparql_condition_titles(cond);
                    (out, t.elapsed().as_micros() as u64)
                });
                scattered_wall += region.elapsed().as_micros() as u64;
                for (shard, (part, us)) in parts.into_iter().enumerate() {
                    trace.condition_task_us[shard] += us;
                    titles.extend(part?);
                }
            }
            if titles.is_empty() {
                let region = Instant::now();
                let parts = pool.par_map_collect(&snaps, 1, |s| {
                    let t = Instant::now();
                    // Bounded registry-counter lock only. xlint: allow(no-blocking-in-par)
                    let out = s.engine.sql_condition_titles(cond);
                    (out, t.elapsed().as_micros() as u64)
                });
                scattered_wall += region.elapsed().as_micros() as u64;
                for (shard, (part, us)) in parts.into_iter().enumerate() {
                    trace.condition_task_us[shard] += us;
                    titles.extend(part?);
                }
            }
            cond_sets.push(coord.resolve_title_set(titles));
        }

        // Stages 3–4: candidate assembly on each shard's own store,
        // restricted to the pages it owns.
        let region = Instant::now();
        let partials = pool.par_map_collect(&snaps, 1, |s| {
            let t = Instant::now();
            let out = s
                .engine
                // Chaos checkpoints and counters take short bounded locks,
                // never I/O waits. xlint: allow(no-blocking-in-par)
                .assemble_partial(form, user, scores.as_ref(), &cond_sets, Some(&s.owned));
            (out, t.elapsed().as_micros() as u64)
        });
        scattered_wall += region.elapsed().as_micros() as u64;
        let mut collected = Vec::with_capacity(partials.len());
        for (part, us) in partials {
            trace.assemble_task_us.push(us);
            collected.push(part?);
        }

        // Stages 5–6: normalization, global sort, facet merge and
        // recommendations on the coordinator.
        let _m = obs::span("cluster_merge");
        let out = coord.finalize_partials(form, scores.as_ref(), collected)?;
        trace.serial_us = (total.elapsed().as_micros() as u64).saturating_sub(scattered_wall);
        Ok((out, trace))
    }

    /// Epoch domains a scattered search depends on (same as the engine's
    /// combined-result dependencies).
    pub const SEARCH_DEPS: &'static [Domain] = &[
        Domain::Relational,
        Domain::Triples,
        Domain::SearchIndex,
        Domain::WebGraph,
    ];
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_of_is_stable_and_in_range() {
        let map = ShardMap::new(4);
        for id in 0..1000i64 {
            let s = map.shard_of(id);
            assert!(s < 4);
            assert_eq!(s, map.shard_of(id));
        }
        // All shards get some pages for a reasonable id spread.
        let mut seen = HashSet::new();
        for id in 0..1000i64 {
            seen.insert(map.shard_of(id));
        }
        assert_eq!(seen.len(), 4);
    }

    #[test]
    fn doc_ranges_cover_exactly() {
        for shards in 1..=5 {
            for n in [0usize, 1, 7, 64] {
                let ranges = ShardMap::new(shards).doc_ranges(n);
                assert_eq!(ranges.len(), shards);
                let total: usize = ranges.iter().map(std::ops::Range::len).sum();
                assert_eq!(total, n, "{shards} shards over {n} docs");
                for w in ranges.windows(2) {
                    assert!(w[0].end == w[1].start || w[1].is_empty());
                }
            }
        }
    }

    #[test]
    fn merge_hits_orders_by_score_then_key() {
        let hit = |key: &str, doc: usize, score: f64| Hit {
            doc,
            key: key.to_string(),
            score,
        };
        // Shard-local doc ids deliberately collide and contradict key order:
        // the merge must ignore them entirely.
        let a = vec![hit("b", 0, 2.0), hit("d", 1, 1.0)];
        let b = vec![hit("a", 0, 2.0), hit("c", 1, 3.0)];
        let merged = merge_hits(vec![a, b]);
        let keys: Vec<&str> = merged.iter().map(|h| h.key.as_str()).collect();
        assert_eq!(keys, ["c", "a", "b", "d"]);
    }
}
