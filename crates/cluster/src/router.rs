//! Read/write routing over a primary and its replicas.

use crate::replica::Replica;
use sensormeta_cache::Domain;
use sensormeta_obs as obs;
use sensormeta_query::QueryEngine;
use sensormeta_tx::Snapshot;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Routes reads to sufficiently fresh replicas and everything else to the
/// primary.
///
/// Writes always go to the primary (the router never exposes a mutable
/// path to a replica). Reads name the epoch [`Domain`]s they depend on;
/// the router round-robins across replicas whose
/// [staleness](Replica::staleness) on those domains is within the bound
/// and falls back to the primary when none qualifies.
pub struct Router {
    replicas: Vec<Arc<Replica>>,
    /// Maximum per-domain epoch lag a replica may have and still serve.
    bound: u64,
    rr: AtomicUsize,
}

impl Router {
    /// A router over `replicas` with the given staleness bound (epochs).
    pub fn new(replicas: Vec<Arc<Replica>>, staleness_epochs: u64) -> Router {
        Router {
            replicas,
            bound: staleness_epochs,
            rr: AtomicUsize::new(0),
        }
    }

    /// Replicas behind this router.
    pub fn replicas(&self) -> &[Arc<Replica>] {
        &self.replicas
    }

    /// Picks a replica engine for a read depending on `deps`, or `None`
    /// when every replica is too stale (or there are none) — the caller
    /// then serves from the primary.
    pub fn route_read(&self, deps: &[Domain]) -> Option<Snapshot<QueryEngine>> {
        if self.replicas.is_empty() {
            obs::counter("cluster_reads_primary_total").inc();
            return None;
        }
        let start = self.rr.fetch_add(1, Ordering::Relaxed);
        for i in 0..self.replicas.len() {
            let replica = &self.replicas[(start + i) % self.replicas.len()];
            if replica.staleness(deps) <= self.bound {
                obs::counter("cluster_reads_replica_total").inc();
                return Some(replica.snapshot());
            }
        }
        obs::counter("cluster_reads_primary_total").inc();
        None
    }
}
