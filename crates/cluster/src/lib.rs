//! Sharded, replicated serving over the single-store engine.
//!
//! The paper's demo serves one Sensor Metadata Repository from one process;
//! the ROADMAP's north star is the same query surface at production scale.
//! This crate turns the single store into a *topology*:
//!
//! - [`ShardMap`] hash-partitions the SMR by page id — and the shared
//!   search index by document range — into N in-process shards, each an
//!   independent [`QueryEngine`](sensormeta_query::QueryEngine) published
//!   through an [`Mvcc`](sensormeta_tx::Mvcc) cell.
//! - [`ShardSet`] is the scatter-gather executor: it fans a `SearchForm`
//!   out to every shard on the [`par`](sensormeta_par) pool and
//!   deterministically merges hits, facets and scores. Ranking statistics
//!   (BM25 idf/length norms, PageRank) stay collection-global, so the
//!   merged output is byte-identical to the single-store result at any
//!   shard count.
//! - [`Replica`] is a read replica fed by WAL shipping: `open_recovering`
//!   plus a tail loop that applies newly committed CRC-framed frames from
//!   the primary's log and publishes each applied batch as an MVCC commit.
//! - [`Router`] sends writes to the primary and routes reads to replicas
//!   under per-domain epoch staleness bounds, falling back to the primary
//!   when every replica lags past the bound.
//!
//! Deterministic merging (see [`merge_hits`]) works on external keys, never
//! shard-local doc ids, so results do not depend on how documents landed in
//! shards.

#![warn(missing_docs)]

mod replica;
mod router;
mod shard;

pub use replica::{Replica, ReplicaPoll};
pub use router::Router;
pub use shard::{merge_hits, ScatterTrace, ShardMap, ShardSet};

use std::time::Duration;

/// Serving topology, usually read from the environment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Topology {
    /// In-process shards the store is partitioned into (1 = unsharded).
    pub shards: usize,
    /// WAL-shipped read replicas to run (0 = none).
    pub replicas: usize,
    /// Per-domain epoch staleness bound for replica reads: a replica more
    /// than this many epochs behind on any domain a read depends on is
    /// skipped in favor of the primary.
    pub staleness_epochs: u64,
    /// How often a replica's tail loop polls the primary's log.
    pub poll_interval: Duration,
}

impl Default for Topology {
    fn default() -> Self {
        Topology {
            shards: 1,
            replicas: 0,
            staleness_epochs: 64,
            poll_interval: Duration::from_millis(25),
        }
    }
}

impl Topology {
    /// Reads `SENSORMETA_SHARDS`, `SENSORMETA_REPLICAS` and
    /// `SENSORMETA_STALENESS_EPOCHS` (unset or unparsable values keep the
    /// defaults: 1 shard, 0 replicas, 64 epochs).
    pub fn from_env() -> Topology {
        fn parse<T: std::str::FromStr>(key: &str) -> Option<T> {
            std::env::var(key).ok()?.trim().parse().ok()
        }
        let d = Topology::default();
        Topology {
            shards: parse("SENSORMETA_SHARDS").unwrap_or(d.shards).max(1),
            replicas: parse("SENSORMETA_REPLICAS").unwrap_or(d.replicas),
            staleness_epochs: parse("SENSORMETA_STALENESS_EPOCHS").unwrap_or(d.staleness_epochs),
            poll_interval: d.poll_interval,
        }
    }

    /// True when this topology is anything beyond the plain single store.
    pub fn is_clustered(&self) -> bool {
        self.shards > 1 || self.replicas > 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_topology_is_single_store() {
        let t = Topology::default();
        assert_eq!(t.shards, 1);
        assert_eq!(t.replicas, 0);
        assert!(!t.is_clustered());
    }
}
