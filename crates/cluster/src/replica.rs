//! WAL-shipped read replicas.
//!
//! A replica opens the primary's snapshot in recovering mode (nothing on
//! disk is modified), then *tails* the primary's live write-ahead log:
//! each poll reads the log bytes, feeds them to a
//! [`WalTail`](sensormeta_relstore::WalTail) incremental parser, applies
//! newly committed transactions through the same deterministic replay path
//! recovery uses, and publishes the updated engine as an MVCC commit.
//! Checkpoint truncation and persistent frame damage both trigger a full
//! resync from the snapshot.

use sensormeta_cache::{clock, Domain, EpochVector};
use sensormeta_obs as obs;
use sensormeta_query::{QueryEngine, QueryError, Result};
use sensormeta_relstore::{wal_path_for, LogicalOp, WalTail};
use sensormeta_smr::Smr;
use sensormeta_tx::{Mvcc, Snapshot};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, Weak};
use std::time::Duration;

/// How many consecutive stalled polls (torn or damaged frames that never
/// heal) a replica tolerates before it gives up on the tail and resyncs
/// from the snapshot.
const STALL_RESYNC_THRESHOLD: u32 = 3;

/// Outcome of one tail poll, mostly for tests and the bench harness.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ReplicaPoll {
    /// Operations applied to the replica store this poll.
    pub applied: u64,
    /// Operations skipped because the replica already had them.
    pub skipped: u64,
    /// Operations that failed to replay (counted, never fatal).
    pub failed: u64,
    /// The primary checkpointed (log shrank) and the replica resynced.
    pub truncated: bool,
    /// The replica rebuilt itself from the snapshot this poll.
    pub resynced: bool,
    /// The tail is stalled on damaged frames (diagnostic; a few
    /// consecutive stalls trigger a resync).
    pub stalled: Option<String>,
}

struct TailState {
    smr: Smr,
    tail: WalTail,
    /// Highest operation sequence folded into `smr`.
    applied: u64,
    /// Consecutive stalled polls; reset by any clean poll.
    stalls: u32,
}

/// Epoch bookkeeping: which clock values this replica's published state
/// is known to cover.
struct Freshness {
    epochs: EpochVector,
}

/// A read replica over a primary's durable store.
///
/// The replica never writes to the primary's files: it loads the snapshot
/// in recovering mode, then tails the log read-only. Construct with
/// [`Replica::open`], drive deterministically with [`Replica::poll_once`]
/// (tests, benches) or continuously with [`Replica::start`] (serving).
pub struct Replica {
    name: String,
    primary_path: PathBuf,
    engine: Mvcc<QueryEngine>,
    state: Mutex<TailState>,
    freshness: Mutex<Freshness>,
    stop: Arc<AtomicBool>,
    handle: Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl Replica {
    /// Opens a replica of the durable store at `primary_path` (snapshot
    /// plus optional live WAL). The returned replica is caught up to the
    /// snapshot and whatever committed WAL existed at open time; call
    /// [`Replica::poll_once`] or [`Replica::start`] to follow new commits.
    pub fn open(name: &str, primary_path: &std::path::Path) -> Result<Arc<Replica>> {
        let epochs_at_read = clock().snapshot();
        let (smr, report) = Smr::load_with_report(primary_path)?;
        let engine = QueryEngine::open(smr.clone_reader())?;
        let mut tail = WalTail::new();
        // Fast-forward the tail past everything recovery already replayed:
        // the bytes currently in the log decode to ops at or below
        // `report.last_seq`, which `apply_replicated` would skip anyway,
        // but re-parsing them on the first poll is wasted work only — so
        // feed them through once here where the outcome is discarded.
        if let Ok(bytes) = std::fs::read(wal_path_for(primary_path)) {
            let _ = tail.poll(&bytes);
        }
        obs::counter("cluster_replica_opens_total").inc();
        Ok(Arc::new(Replica {
            name: name.to_string(),
            primary_path: primary_path.to_path_buf(),
            engine: Mvcc::new(engine),
            state: Mutex::new(TailState {
                smr,
                tail,
                applied: report.last_seq,
                stalls: 0,
            }),
            freshness: Mutex::new(Freshness {
                epochs: epochs_at_read,
            }),
            stop: Arc::new(AtomicBool::new(false)),
            handle: Mutex::new(None),
        }))
    }

    /// The replica's name (used in log lines and metrics).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// A snapshot of the replica's published query engine.
    pub fn snapshot(&self) -> Snapshot<QueryEngine> {
        self.engine.snapshot()
    }

    /// Highest operation sequence folded into the replica's store.
    pub fn applied_seq(&self) -> u64 {
        lock(&self.state).applied
    }

    /// The epoch vector this replica's published state is known to cover:
    /// reads depending only on domains where the global clock equals this
    /// vector see data as fresh as the primary's.
    pub fn covered_epochs(&self) -> EpochVector {
        lock(&self.freshness).epochs
    }

    /// How many epochs behind the global clock this replica is, maximized
    /// over `deps` — the domains a read depends on.
    pub fn staleness(&self, deps: &[Domain]) -> u64 {
        let covered = self.covered_epochs();
        let now = clock().snapshot();
        deps.iter()
            .map(|&d| now.get(d).saturating_sub(covered.get(d)))
            .max()
            .unwrap_or(0)
    }

    /// Logical contents of the replica's relational store, for convergence
    /// checks against the primary's `logical_dump`.
    pub fn logical_dump(&self) -> Vec<(String, Vec<Vec<u8>>)> {
        lock(&self.state).smr.database().logical_dump()
    }

    /// One synchronous tail step: read the primary's log, apply any newly
    /// committed transactions, publish the updated engine. Deterministic —
    /// the convergence tests drive replication entirely through this.
    pub fn poll_once(&self) -> Result<ReplicaPoll> {
        // Capture the clock BEFORE reading the log: any commit that bumped
        // an epoch before this point has its WAL bytes visible to the read
        // below (the primary writes the log before bumping), so a clean
        // poll that drains the log covers at least this vector.
        let epochs_at_read = clock().snapshot();
        let bytes = match std::fs::read(wal_path_for(&self.primary_path)) {
            Ok(b) => b,
            // No log yet (fresh store or mid-checkpoint swap): caught up.
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
            Err(e) => return Err(QueryError::Internal(format!("read primary wal: {e}"))),
        };

        let mut out = ReplicaPoll::default();
        let mut state = lock(&self.state);
        let poll = state.tail.poll(&bytes);

        if poll.truncated {
            // The primary checkpointed: the old log is gone and the new one
            // may start past what we had applied. Resync from the snapshot
            // rather than guessing.
            out.truncated = true;
            self.resync(&mut state)?;
            out.resynced = true;
            drop(state);
            self.publish(epochs_at_read);
            return Ok(out);
        }

        if let Some(why) = poll.stalled {
            state.stalls += 1;
            obs::counter("cluster_replica_stalls_total").inc();
            if state.stalls >= STALL_RESYNC_THRESHOLD {
                self.resync(&mut state)?;
                out.resynced = true;
                drop(state);
                self.publish(epochs_at_read);
            } else {
                out.stalled = Some(why);
            }
            return Ok(out);
        }

        let ops: Vec<(u64, LogicalOp)> = poll.committed.into_iter().flat_map(|tx| tx.ops).collect();
        let seen = ops
            .iter()
            .map(|(seq, _)| *seq)
            .max()
            .unwrap_or(state.applied);
        if !ops.is_empty() {
            let after = state.applied;
            let report = state.smr.apply_replicated(&ops, after)?;
            state.applied = report.last_seq.max(state.applied);
            out.applied = report.applied;
            out.skipped = report.skipped;
            out.failed = report.failed;
        }
        state.stalls = 0;
        let lag = seen.saturating_sub(state.applied);
        drop(state);

        obs::gauge("cluster_replica_lag_seq").set(lag as f64);
        if out.applied > 0 {
            self.rebuild_engine()?;
        }
        // Clean poll that drained the log: the published state covers
        // everything committed before the read started.
        self.publish(epochs_at_read);
        Ok(out)
    }

    /// Reports replica lag against an externally known primary sequence
    /// (more accurate than the tail's own view when the log has frames the
    /// replica has not parsed yet).
    pub fn record_lag(&self, primary_seq: u64) -> u64 {
        let lag = primary_seq.saturating_sub(self.applied_seq());
        obs::gauge("cluster_replica_lag_seq").set(lag as f64);
        lag
    }

    fn resync(&self, state: &mut TailState) -> Result<()> {
        let (smr, report) = Smr::load_with_report(&self.primary_path)?;
        state.smr = smr;
        state.tail = WalTail::new();
        state.applied = report.last_seq;
        state.stalls = 0;
        obs::counter("cluster_replica_resyncs_total").inc();
        Ok(())
    }

    fn rebuild_engine(&self) -> Result<()> {
        let smr = lock(&self.state).smr.clone_reader();
        let engine = QueryEngine::open(smr)?;
        // No domain bumps: the primary's commit already dated this change
        // on the global clock; the replica is only catching up to it.
        self.engine.begin().publish(&[], engine);
        Ok(())
    }

    fn publish(&self, epochs: EpochVector) {
        let mut f = lock(&self.freshness);
        // Epochs only move forward; a concurrent poll may already have
        // recorded a later vector.
        for d in sensormeta_cache::ALL_DOMAINS {
            if epochs.get(d) > f.epochs.get(d) {
                f.epochs.0[d as usize] = epochs.get(d);
            }
        }
    }

    /// Starts the background tail loop: polls the primary's log every
    /// `interval` until [`Replica::stop`] is called or every external
    /// handle to the replica is dropped.
    pub fn start(self: &Arc<Self>, interval: Duration) {
        let weak: Weak<Replica> = Arc::downgrade(self);
        let stop = Arc::clone(&self.stop);
        let name = format!("replica-tail-{}", self.name);
        // The tail loop does file I/O and sleeps, so it must live on its
        // own thread rather than the shared compute pool.
        let handle = std::thread::Builder::new() // xlint: allow(no-raw-thread-spawn)
            .name(name)
            .spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    let Some(replica) = weak.upgrade() else { break };
                    if replica.poll_once().is_err() {
                        obs::counter("cluster_replica_poll_errors_total").inc();
                    }
                    drop(replica);
                    std::thread::sleep(interval);
                }
            });
        *lock(&self.handle) = handle.ok();
    }

    /// Stops the background tail loop (if running) and waits for it.
    pub fn stop(&self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = lock(&self.handle).take() {
            let _ = handle.join();
        }
    }
}

impl Drop for Replica {
    fn drop(&mut self) {
        // The loop thread only holds a Weak, so this runs as soon as the
        // last external handle drops; the upgrade inside the loop then
        // fails and the thread exits on its own even without `stop()`.
        self.stop.store(true, Ordering::Relaxed);
    }
}

/// Locks a mutex, recovering from poisoning (a panicked poll must not take
/// the whole replica down with it).
fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}
