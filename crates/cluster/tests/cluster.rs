//! Cluster integration tests: scatter-gather identity, deterministic
//! merging, WAL-tail convergence and staleness routing.

use sensormeta_cluster::{merge_hits, Replica, Router, ShardSet};
use sensormeta_query::{CondOp, Condition, QueryEngine, SearchForm};
use sensormeta_search::Hit;
use sensormeta_smr::{PageDraft, Smr};
use sensormeta_workload::{generate_corpus, CorpusConfig};
use std::path::PathBuf;
use std::sync::{Mutex, MutexGuard};

/// Replication and routing read the process-global epoch clock, which every
/// page write bumps; tests that write pages or assert on staleness take
/// this lock so concurrent test threads don't skew each other's clocks.
fn clock_guard() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn corpus_engine(scale: usize, seed: u64) -> QueryEngine {
    let pages = generate_corpus(&CorpusConfig {
        institutions: scale,
        seed,
        ..CorpusConfig::default()
    });
    let mut smr = Smr::new();
    let report = smr.bulk_load(pages.into_iter().map(|p| {
        let mut d = PageDraft::new(p.title, p.namespace).body(p.body);
        d.annotations = p.annotations;
        d.links = p.links;
        d.tags = p.tags;
        d
    }));
    assert!(report.errors.is_empty(), "{:?}", report.errors);
    QueryEngine::open(smr).expect("engine build")
}

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sensormeta_cluster_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

/// Forms spanning every scatter stage: pure keyword, conjunctive keyword,
/// structured-only (Eq → SPARQL, Contains/Gt → SQL), mixed, namespaced
/// and limited.
fn probe_forms() -> Vec<SearchForm> {
    let mut forms = vec![
        SearchForm::keywords("temperature sensor"),
        SearchForm::keywords("wind alpine station"),
        SearchForm {
            keywords: "snow depth".into(),
            match_all: true,
            ..SearchForm::default()
        },
        SearchForm::default().condition(Condition::new("hasVendor", CondOp::Eq, "Vaisala")),
        SearchForm::default().condition(Condition::new("hasTopic", CondOp::Contains, "hydro")),
        SearchForm::default().condition(Condition::new("hasElevation", CondOp::Gt, "1500")),
        SearchForm::keywords("deployment").condition(Condition::new(
            "hasVendor",
            CondOp::Eq,
            "Campbell",
        )),
        SearchForm {
            keywords: "sensor".into(),
            namespace: Some("Deployment".into()),
            limit: 10,
            ..SearchForm::default()
        },
        // A condition no page satisfies: exercises the global SQL-fallback
        // decision (every shard's SPARQL set is empty).
        SearchForm::keywords("station").condition(Condition::new(
            "hasVendor",
            CondOp::Eq,
            "NoSuchVendor",
        )),
    ];
    for f in &mut forms {
        // Recommendation seeds and facets are part of the output; keep the
        // default limit where not explicitly testing truncation.
        f.descending = false;
    }
    forms
}

/// Tentpole acceptance: the scattered result is byte-identical to the
/// single-store result at every tested shard count.
#[test]
fn scatter_gather_matches_single_store_at_1_2_4_shards() {
    let _clock = clock_guard();
    let engine = corpus_engine(6, 42);
    for shards in [1usize, 2, 4] {
        let set = ShardSet::build(&engine, shards).expect("build shard set");
        assert_eq!(set.shard_count(), shards);
        for (i, form) in probe_forms().iter().enumerate() {
            let single = engine.search_uncached(form, None).expect("single-store");
            let scattered = set.search(form, None).expect("scatter-gather");
            let a = serde_json::to_string(&single).expect("json");
            let b = serde_json::to_string(&scattered).expect("json");
            assert_eq!(a, b, "form #{i} diverged at {shards} shards");
        }
    }
}

/// Satellite 1: cross-shard merge is deterministic regardless of shard
/// assignment or shard-local doc ids.
#[test]
fn merge_is_deterministic_across_shard_layouts() {
    let hit = |key: &str, doc: usize, score: f64| Hit {
        doc,
        key: key.to_string(),
        score,
    };
    // The same six hits split three different ways (1, 2 and 4 lists),
    // with shard-local doc ids deliberately reused across lists.
    let all = vec![
        hit("alpha", 0, 1.5),
        hit("bravo", 1, 2.5),
        hit("charlie", 2, 2.5),
        hit("delta", 3, 0.5),
        hit("echo", 4, 2.5),
        hit("foxtrot", 5, 1.5),
    ];
    let one = vec![all.clone()];
    let two = vec![
        vec![all[1].clone(), hit("delta", 0, 0.5), all[4].clone()],
        vec![hit("alpha", 0, 1.5), all[2].clone(), hit("foxtrot", 1, 1.5)],
    ];
    let four = vec![
        vec![hit("charlie", 0, 2.5)],
        vec![hit("echo", 0, 2.5), hit("alpha", 1, 1.5)],
        vec![hit("bravo", 0, 2.5)],
        vec![hit("foxtrot", 0, 1.5), hit("delta", 1, 0.5)],
    ];
    let keys = |parts: Vec<Vec<Hit>>| -> Vec<String> {
        merge_hits(parts).into_iter().map(|h| h.key).collect()
    };
    let expect = vec!["bravo", "charlie", "echo", "alpha", "foxtrot", "delta"];
    assert_eq!(keys(one), expect);
    assert_eq!(keys(two), expect);
    assert_eq!(keys(four), expect);
}

fn durable_primary(dir: &std::path::Path, scale: usize, seed: u64) -> Smr {
    let store = dir.join("store.smr");
    let (mut smr, _) = Smr::open_durable(&store).expect("open durable");
    for p in generate_corpus(&CorpusConfig {
        institutions: scale,
        seed,
        ..CorpusConfig::default()
    }) {
        let mut d = PageDraft::new(p.title, p.namespace).body(p.body);
        d.annotations = p.annotations;
        d.links = p.links;
        d.tags = p.tags;
        smr.create_page(d).expect("create page");
    }
    smr
}

fn drain(replica: &Replica) {
    // Poll until two consecutive polls apply nothing (the first may land
    // mid-write; the second confirms quiescence).
    let mut idle = 0;
    for _ in 0..1000 {
        let poll = replica.poll_once().expect("poll");
        if poll.applied == 0 && !poll.resynced && poll.stalled.is_none() {
            idle += 1;
            if idle >= 2 {
                return;
            }
        } else {
            idle = 0;
        }
    }
    panic!("replica never quiesced");
}

/// Satellite 3: a replica tailing a live primary converges — logical dumps
/// are equal at quiesce.
#[test]
fn replica_tails_live_commits_to_convergence() {
    let _clock = clock_guard();
    let dir = scratch_dir("tail_converge");
    let store = dir.join("store.smr");
    let mut primary = durable_primary(&dir, 2, 7);

    let replica = Replica::open("r0", &store).expect("open replica");
    assert_eq!(replica.logical_dump(), primary.database().logical_dump());

    // Live commits after the replica opened.
    for i in 0..20 {
        let d = PageDraft::new(format!("Deployment:live_{i}"), "Deployment")
            .body(format!("live tail test page {i} temperature"));
        primary.create_page(d).expect("create");
        if i % 5 == 0 {
            // Interleave polls with writes so the tail sees the log grow.
            let _ = replica.poll_once().expect("poll");
        }
    }
    drain(&replica);
    assert_eq!(replica.logical_dump(), primary.database().logical_dump());

    // The replica's engine serves the new pages.
    let out = replica
        .snapshot()
        .search_uncached(&SearchForm::keywords("live tail test"), None)
        .expect("replica search");
    assert!(!out.items.is_empty(), "replica engine missing tailed pages");

    let _ = std::fs::remove_dir_all(&dir);
}

/// Satellite 3, hard mode: kill the replica mid-tail, restart it from the
/// same snapshot, and converge — no ops lost or double-applied.
#[test]
fn replica_kill_and_restart_mid_tail_converges() {
    let _clock = clock_guard();
    let dir = scratch_dir("tail_restart");
    let store = dir.join("store.smr");
    let mut primary = durable_primary(&dir, 2, 11);

    let replica = Replica::open("r0", &store).expect("open replica");
    for i in 0..10 {
        let d = PageDraft::new(format!("Deployment:phase1_{i}"), "Deployment")
            .body(format!("phase one page {i}"));
        primary.create_page(d).expect("create");
    }
    let _ = replica.poll_once().expect("poll");
    // Kill mid-stream: drop the replica entirely.
    drop(replica);

    for i in 0..10 {
        let d = PageDraft::new(format!("Deployment:phase2_{i}"), "Deployment")
            .body(format!("phase two page {i}"));
        primary.create_page(d).expect("create");
    }

    // Restart from the same primary path; recovery replays the log, the
    // tail resumes past it.
    let replica = Replica::open("r1", &store).expect("reopen replica");
    for i in 0..5 {
        let d = PageDraft::new(format!("Deployment:phase3_{i}"), "Deployment")
            .body(format!("phase three page {i}"));
        primary.create_page(d).expect("create");
    }
    drain(&replica);
    assert_eq!(replica.logical_dump(), primary.database().logical_dump());

    let _ = std::fs::remove_dir_all(&dir);
}

/// A primary checkpoint truncates the log; the replica detects the shrink
/// and resyncs from the snapshot.
#[test]
fn replica_survives_primary_checkpoint() {
    let _clock = clock_guard();
    let dir = scratch_dir("tail_checkpoint");
    let store = dir.join("store.smr");
    let mut primary = durable_primary(&dir, 1, 13);

    let replica = Replica::open("r0", &store).expect("open replica");
    drain(&replica);

    primary.checkpoint().expect("checkpoint");
    for i in 0..5 {
        let d = PageDraft::new(format!("Deployment:post_ckpt_{i}"), "Deployment")
            .body(format!("post checkpoint page {i}"));
        primary.create_page(d).expect("create");
    }
    drain(&replica);
    assert_eq!(replica.logical_dump(), primary.database().logical_dump());

    let _ = std::fs::remove_dir_all(&dir);
}

/// The background tail loop converges without explicit polling.
#[test]
fn background_tail_loop_converges() {
    let _clock = clock_guard();
    let dir = scratch_dir("tail_thread");
    let store = dir.join("store.smr");
    let mut primary = durable_primary(&dir, 1, 17);

    let replica = Replica::open("r0", &store).expect("open replica");
    replica.start(std::time::Duration::from_millis(5));
    for i in 0..10 {
        let d = PageDraft::new(format!("Deployment:bg_{i}"), "Deployment")
            .body(format!("background page {i}"));
        primary.create_page(d).expect("create");
    }
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    let target = primary.database().logical_dump();
    loop {
        if replica.logical_dump() == target {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "background tail did not converge"
        );
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
    replica.stop();

    let _ = std::fs::remove_dir_all(&dir);
}

/// Router: fresh replicas serve reads; a stale replica under a zero bound
/// falls back to the primary until it catches up.
#[test]
fn router_staleness_bounds_route_reads() {
    let _clock = clock_guard();
    use sensormeta_cache::Domain;
    let dir = scratch_dir("router");
    let store = dir.join("store.smr");
    let mut primary = durable_primary(&dir, 1, 19);

    let replica = Replica::open("r0", &store).expect("open replica");
    drain(&replica);
    let deps = [Domain::Relational, Domain::Triples];

    // Caught up: within any bound.
    let router = Router::new(vec![replica.clone()], 4);
    assert!(router.route_read(&deps).is_some(), "fresh replica skipped");

    // Fall behind: commits advance the clock while the replica sleeps.
    for i in 0..8 {
        let d = PageDraft::new(format!("Deployment:stale_{i}"), "Deployment")
            .body(format!("staleness page {i}"));
        primary.create_page(d).expect("create");
    }
    let strict = Router::new(vec![replica.clone()], 0);
    assert!(
        strict.route_read(&deps).is_none(),
        "stale replica served under a zero staleness bound"
    );
    assert!(replica.staleness(&deps) > 0);

    // Catching up restores routing.
    drain(&replica);
    assert!(
        strict.route_read(&deps).is_some(),
        "caught-up replica still skipped"
    );
    assert_eq!(replica.staleness(&deps), 0);

    // No replicas: always primary.
    let empty = Router::new(vec![], 4);
    assert!(empty.route_read(&deps).is_none());

    let _ = std::fs::remove_dir_all(&dir);
}

/// A sharded set over a replica-fed engine serves the same results as the
/// primary engine: shards and replication compose.
#[test]
fn shards_over_replica_match_primary() {
    let _clock = clock_guard();
    let dir = scratch_dir("shard_replica");
    let store = dir.join("store.smr");
    let primary = durable_primary(&dir, 2, 23);
    let primary_engine = QueryEngine::open(primary.clone_reader()).expect("engine");

    let replica = Replica::open("r0", &store).expect("open replica");
    drain(&replica);
    let set = ShardSet::build(&replica.snapshot(), 2).expect("build");

    let form = SearchForm::keywords("temperature sensor");
    let a = serde_json::to_string(&primary_engine.search_uncached(&form, None).expect("p"))
        .expect("json");
    let b = serde_json::to_string(&set.search(&form, None).expect("s")).expect("json");
    assert_eq!(a, b);

    let _ = std::fs::remove_dir_all(&dir);
}
