//! Directed-graph rendering of semantic associations.
//!
//! "Graph visualization represents the associations (with directed arcs) of
//! sensor metadata in the results" — pages as nodes colored by a class
//! (similarity-based classification), property references as directed arcs.

use crate::layout::{force_layout, layered_layout, Positions};
use crate::svg::{palette_color, SvgDoc};
use sensormeta_graph::CsrGraph;

/// Layout algorithm selection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GraphLayout {
    /// Force-directed (good for cyclic link structures).
    Force,
    /// Layered top-down (good for hierarchy-like structures).
    Layered,
}

/// A node for rendering.
#[derive(Debug, Clone, PartialEq)]
pub struct GraphNode {
    /// Display label.
    pub label: String,
    /// Class index → color (pages classified by metadata similarity).
    pub class: usize,
}

/// Renders a directed graph with labeled, class-colored nodes.
pub fn render_digraph(
    title: &str,
    g: &CsrGraph,
    nodes: &[GraphNode],
    layout: GraphLayout,
) -> String {
    assert_eq!(g.node_count(), nodes.len());
    let (width, height) = (760.0, 560.0);
    let pos: Positions = match layout {
        GraphLayout::Force => force_layout(g, width, height - 40.0, 150, 42),
        GraphLayout::Layered => layered_layout(g, width, height - 40.0),
    };
    let mut doc = SvgDoc::new(width, height);
    doc.text(width / 2.0, 20.0, 14.0, "middle", "#222", title);
    let dy = 36.0; // title band offset
                   // Edges first (under nodes).
    for (u, v) in g.iter_edges() {
        if u == v {
            continue;
        }
        let (x1, y1) = (pos[u].0, pos[u].1 + dy);
        let (x2, y2) = (pos[v].0, pos[v].1 + dy);
        // Shorten toward the target so the arrowhead isn't swallowed.
        let (dx, dyv) = (x2 - x1, y2 - y1);
        let len = (dx * dx + dyv * dyv).sqrt().max(0.01);
        let r = 12.0_f64.min(len / 2.0);
        doc.arrow(x1, y1, x2 - dx / len * r, y2 - dyv / len * r, "#777");
    }
    for (i, node) in nodes.iter().enumerate() {
        let (x, y) = (pos[i].0, pos[i].1 + dy);
        doc.circle(x, y, 10.0, palette_color(node.class), Some(&node.label));
        doc.text(x, y - 14.0, 10.0, "middle", "#333", &node.label);
    }
    doc.finish()
}

/// Classifies nodes by (exact) out-neighbor set equality — the demo's
/// "classification of pages based on similarities of their metadata": pages
/// referencing the same set of pages share a class/color.
pub fn classify_by_neighbors(g: &CsrGraph) -> Vec<usize> {
    use std::collections::HashMap;
    let mut classes: HashMap<Vec<usize>, usize> = HashMap::new();
    (0..g.node_count())
        .map(|v| {
            let mut key = g.neighbors(v).to_vec();
            key.sort_unstable();
            let next = classes.len();
            *classes.entry(key).or_insert(next)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fixture() -> (CsrGraph, Vec<GraphNode>) {
        let g = CsrGraph::from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)], false);
        let nodes = (0..4)
            .map(|i| GraphNode {
                label: format!("Page{i}"),
                class: i % 2,
            })
            .collect();
        (g, nodes)
    }

    #[test]
    fn renders_nodes_edges_arrows() {
        let (g, nodes) = fixture();
        for layout in [GraphLayout::Force, GraphLayout::Layered] {
            let svg = render_digraph("Associations", &g, &nodes, layout);
            assert_eq!(svg.matches("<circle").count(), 4, "{layout:?}");
            assert_eq!(svg.matches("marker-end").count(), 4, "{layout:?}");
            assert!(svg.contains("Page3"));
        }
    }

    #[test]
    fn classify_groups_equal_reference_sets() {
        // Nodes 1 and 2 both reference only node 3 → same class.
        let (g, _) = fixture();
        let classes = classify_by_neighbors(&g);
        assert_eq!(classes[1], classes[2]);
        assert_ne!(classes[0], classes[1]);
        // Node 3 (no out-links) is its own class.
        assert_ne!(classes[3], classes[0]);
    }

    #[test]
    #[should_panic]
    fn node_count_mismatch_panics() {
        let (g, mut nodes) = fixture();
        nodes.pop();
        render_digraph("x", &g, &nodes, GraphLayout::Force);
    }
}
