//! Graph layout algorithms: deterministic Fruchterman–Reingold force layout
//! and a simple layered (Sugiyama-style) layout for mostly-acyclic link
//! structures.

use sensormeta_graph::CsrGraph;

/// 2D node positions.
pub type Positions = Vec<(f64, f64)>;

/// Fruchterman–Reingold force-directed layout. Deterministic: the initial
/// placement comes from a seeded LCG, not thread-local randomness.
pub fn force_layout(
    g: &CsrGraph,
    width: f64,
    height: f64,
    iterations: usize,
    seed: u64,
) -> Positions {
    let n = g.node_count();
    if n == 0 {
        return Vec::new();
    }
    let mut state = seed
        .wrapping_mul(2862933555777941757)
        .wrapping_add(3037000493);
    let mut rand01 = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((state >> 11) as f64) / ((1u64 << 53) as f64)
    };
    let mut pos: Positions = (0..n)
        .map(|_| (rand01() * width, rand01() * height))
        .collect();
    if n == 1 {
        pos[0] = (width / 2.0, height / 2.0);
        return pos;
    }
    let area = width * height;
    let k = (area / n as f64).sqrt();
    let mut temperature = width / 10.0;
    let undirected: Vec<(usize, usize)> = g.iter_edges().collect();
    for _ in 0..iterations {
        let mut disp = vec![(0.0f64, 0.0f64); n];
        // Repulsion (O(n²); fine for the page-graph sizes the demo shows).
        for i in 0..n {
            for j in i + 1..n {
                let dx = pos[i].0 - pos[j].0;
                let dy = pos[i].1 - pos[j].1;
                let dist = (dx * dx + dy * dy).sqrt().max(0.01);
                let force = k * k / dist;
                let (fx, fy) = (dx / dist * force, dy / dist * force);
                disp[i].0 += fx;
                disp[i].1 += fy;
                disp[j].0 -= fx;
                disp[j].1 -= fy;
            }
        }
        // Attraction along edges.
        for &(u, v) in &undirected {
            if u == v {
                continue;
            }
            let dx = pos[u].0 - pos[v].0;
            let dy = pos[u].1 - pos[v].1;
            let dist = (dx * dx + dy * dy).sqrt().max(0.01);
            let force = dist * dist / k;
            let (fx, fy) = (dx / dist * force, dy / dist * force);
            disp[u].0 -= fx;
            disp[u].1 -= fy;
            disp[v].0 += fx;
            disp[v].1 += fy;
        }
        for i in 0..n {
            let (dx, dy) = disp[i];
            let len = (dx * dx + dy * dy).sqrt().max(0.01);
            let step = len.min(temperature);
            pos[i].0 = (pos[i].0 + dx / len * step).clamp(10.0, width - 10.0);
            pos[i].1 = (pos[i].1 + dy / len * step).clamp(10.0, height - 10.0);
        }
        temperature *= 0.95;
    }
    pos
}

/// Layered layout: nodes are assigned layers by longest-path from sources
/// (cycles broken by node order), then spread evenly within each layer.
pub fn layered_layout(g: &CsrGraph, width: f64, height: f64) -> Positions {
    let n = g.node_count();
    if n == 0 {
        return Vec::new();
    }
    // Longest-path layering over a DAG approximation: process nodes in a
    // topological-ish order obtained by repeatedly taking nodes whose
    // remaining in-degree is zero; cycle members get their current layer.
    let mut indeg = g.in_degrees();
    let mut layer = vec![0usize; n];
    let mut queue: Vec<usize> = (0..n).filter(|&v| indeg[v] == 0).collect();
    let mut seen = vec![false; n];
    for &v in &queue {
        seen[v] = true;
    }
    let mut head = 0;
    let mut processed = 0;
    while processed < n {
        if head >= queue.len() {
            // Cycle: seed with the smallest unseen node. An empty queue with
            // processed < n implies one exists; if not, everything reachable
            // already has a layer and we are done.
            let Some(v) = (0..n).find(|&v| !seen[v]) else {
                break;
            };
            seen[v] = true;
            queue.push(v);
        }
        let v = queue[head];
        head += 1;
        processed += 1;
        for &w in g.neighbors(v) {
            layer[w] = layer[w].max(layer[v] + 1);
            if indeg[w] > 0 {
                indeg[w] -= 1;
            }
            if indeg[w] == 0 && !seen[w] {
                seen[w] = true;
                queue.push(w);
            }
        }
    }
    let max_layer = layer.iter().copied().max().unwrap_or(0);
    // Spread nodes within each layer.
    let mut by_layer: Vec<Vec<usize>> = vec![Vec::new(); max_layer + 1];
    for v in 0..n {
        by_layer[layer[v]].push(v);
    }
    let mut pos = vec![(0.0, 0.0); n];
    for (l, nodes) in by_layer.iter().enumerate() {
        let y = if max_layer == 0 {
            height / 2.0
        } else {
            30.0 + (height - 60.0) * l as f64 / max_layer as f64
        };
        let count = nodes.len();
        for (ix, &v) in nodes.iter().enumerate() {
            let x = width * (ix as f64 + 1.0) / (count as f64 + 1.0);
            pos[v] = (x, y);
        }
    }
    pos
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path_graph() -> CsrGraph {
        CsrGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3)], false)
    }

    #[test]
    fn force_layout_deterministic_and_bounded() {
        let g = path_graph();
        let a = force_layout(&g, 400.0, 300.0, 50, 1);
        let b = force_layout(&g, 400.0, 300.0, 50, 1);
        assert_eq!(a, b);
        for (x, y) in &a {
            assert!((0.0..=400.0).contains(x));
            assert!((0.0..=300.0).contains(y));
        }
    }

    #[test]
    fn force_layout_separates_nodes() {
        let g = path_graph();
        let pos = force_layout(&g, 400.0, 300.0, 100, 3);
        for i in 0..4 {
            for j in i + 1..4 {
                let d = ((pos[i].0 - pos[j].0).powi(2) + (pos[i].1 - pos[j].1).powi(2)).sqrt();
                assert!(d > 5.0, "nodes {i},{j} overlap: {d}");
            }
        }
    }

    #[test]
    fn layered_layout_respects_edge_direction() {
        let g = path_graph();
        let pos = layered_layout(&g, 400.0, 300.0);
        // Each successor sits strictly below its predecessor.
        assert!(pos[0].1 < pos[1].1);
        assert!(pos[1].1 < pos[2].1);
        assert!(pos[2].1 < pos[3].1);
    }

    #[test]
    fn layered_layout_handles_cycles() {
        let g = CsrGraph::from_edges(3, &[(0, 1), (1, 2), (2, 0)], false);
        let pos = layered_layout(&g, 400.0, 300.0);
        assert_eq!(pos.len(), 3);
        for (x, y) in pos {
            assert!(x.is_finite() && y.is_finite());
        }
    }

    #[test]
    fn empty_and_single() {
        let g = CsrGraph::from_edges(0, &[], false);
        assert!(force_layout(&g, 100.0, 100.0, 10, 1).is_empty());
        let g = CsrGraph::from_edges(1, &[], false);
        assert_eq!(force_layout(&g, 100.0, 100.0, 10, 1), vec![(50.0, 50.0)]);
        assert_eq!(layered_layout(&g, 100.0, 100.0).len(), 1);
    }
}
