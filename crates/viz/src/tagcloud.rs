//! Tag-cloud rendering with Fig. 5 clique coloring.

use crate::svg::{palette_color, SvgDoc};
use sensormeta_tagging::TagCloud;

/// Renders a tag cloud as a flow layout. Font size comes from Eq. 6; tags in
/// a clique get that clique's color ("different colors indicate different
/// cliques"; tags in several cliques are colored by their largest one and
/// list all memberships in the tooltip).
pub fn render_tag_cloud(title: &str, cloud: &TagCloud) -> String {
    let width = 680.0;
    let base_px = 10.0;
    // Flow-layout: place tags left to right, wrapping.
    let mut x = 20.0;
    let mut y = 70.0;
    let line_height = |size_px: f64| size_px + 10.0;
    let mut max_line = 0.0f64;
    let mut placements = Vec::new();
    for entry in cloud.by_prominence() {
        let px = base_px + entry.font_size as f64 * 2.2;
        // Crude width estimate: 0.58 em per char.
        let w = entry.tag.chars().count() as f64 * px * 0.58 + 14.0;
        if x + w > width - 20.0 {
            x = 20.0;
            y += max_line;
            max_line = 0.0;
        }
        max_line = max_line.max(line_height(px));
        placements.push((entry, x, y, px));
        x += w;
    }
    let height = y + max_line + 20.0;
    let mut doc = SvgDoc::new(width, height);
    doc.text(width / 2.0, 24.0, 16.0, "middle", "#222", title);
    if cloud.entries.is_empty() {
        doc.text(width / 2.0, 50.0, 12.0, "middle", "#888", "no tags");
        return doc.finish();
    }
    for (entry, x, y, px) in placements {
        let color = match entry
            .cliques
            .iter()
            .max_by_key(|&&c| cloud.cliques[c].len())
        {
            Some(&c) => palette_color(c).to_owned(),
            None => "#888888".to_owned(),
        };
        let tooltip = format!(
            "{} — count {}, font {}, cliques {:?}",
            entry.tag, entry.count, entry.font_size, entry.cliques
        );
        doc.raw(&format!(
            r#"<text x="{x:.1}" y="{y:.1}" font-size="{px:.1}" fill="{color}" font-family="sans-serif"><title>{}</title>{}</text>"#,
            crate::svg::escape(&tooltip),
            crate::svg::escape(&entry.tag)
        ));
    }
    doc.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sensormeta_tagging::{compute_cloud, CloudParams, TagStore};

    fn cloud() -> TagCloud {
        let mut store = TagStore::new();
        for p in ["a", "b", "c"] {
            store.add(p, "snow");
            store.add(p, "avalanche");
        }
        store.add("z", "hydrology"); // isolated page: no co-occurrence
        compute_cloud(&store, &CloudParams::default())
    }

    #[test]
    fn renders_all_tags() {
        let svg = render_tag_cloud("Trends", &cloud());
        for tag in ["snow", "avalanche", "hydrology"] {
            assert!(svg.contains(tag), "missing {tag}");
        }
    }

    #[test]
    fn clique_members_share_color_loner_is_grey() {
        let svg = render_tag_cloud("Trends", &cloud());
        // snow & avalanche co-occur on all pages → one clique → same palette
        // color; hydrology is alone → grey.
        assert!(svg.contains("#888888"));
        let colored = svg.matches("#0072B2").count();
        assert_eq!(colored, 2, "two clique members in palette color 0");
    }

    #[test]
    fn empty_cloud() {
        let store = TagStore::new();
        let svg = render_tag_cloud("x", &compute_cloud(&store, &CloudParams::default()));
        assert!(svg.contains("no tags"));
    }

    #[test]
    fn bigger_count_bigger_font() {
        let svg = render_tag_cloud("Trends", &cloud());
        // snow (count 3) must be rendered with a larger font-size than
        // hydrology (count 1 → size 1).
        let font_of = |tag: &str| -> f64 {
            let ix = svg.find(&format!(">{tag}</text>")).expect("tag present");
            let upto = &svg[..ix];
            let fs = upto.rfind("font-size=\"").expect("font-size attr") + 11;
            upto[fs..].split('"').next().unwrap().parse().unwrap()
        };
        assert!(font_of("snow") > font_of("hydrology"));
    }
}
