//! Map-based browsing of metadata pages.
//!
//! Search results "that contain positional information can be presented over
//! maps while using different colors for describing the degree of matching of
//! each result". Without Google Maps we render an equirectangular plot with a
//! graticule, grid-based marker clustering (clustered pages collapse into one
//! bubble with a count), and the match-degree color ramp.

use crate::svg::{match_degree_color, SvgDoc};
use std::collections::BTreeMap;

/// One geolocated search result.
#[derive(Debug, Clone, PartialEq)]
pub struct MapMarker {
    /// Page title.
    pub title: String,
    /// WGS84 latitude.
    pub lat: f64,
    /// WGS84 longitude.
    pub lon: f64,
    /// Degree of matching in `[0, 1]` (join-predicate match quality).
    pub match_degree: f64,
}

/// Map rendering options.
#[derive(Debug, Clone, Copy)]
pub struct MapOptions {
    /// Output width in px.
    pub width: f64,
    /// Output height in px.
    pub height: f64,
    /// Cluster cell size in px; markers falling in the same cell merge.
    pub cluster_px: f64,
}

impl Default for MapOptions {
    fn default() -> Self {
        MapOptions {
            width: 720.0,
            height: 480.0,
            cluster_px: 40.0,
        }
    }
}

/// A cluster of markers after grid clustering.
#[derive(Debug, Clone, PartialEq)]
pub struct Cluster {
    /// Mean position in pixels.
    pub x: f64,
    /// Mean position in pixels.
    pub y: f64,
    /// Member titles.
    pub titles: Vec<String>,
    /// Mean match degree.
    pub match_degree: f64,
}

/// Grid-clusters projected markers. Exposed separately so tests and the
/// server's JSON API can reuse the exact clustering the SVG shows.
pub fn cluster_markers(markers: &[MapMarker], opts: &MapOptions) -> Vec<Cluster> {
    if markers.is_empty() {
        return Vec::new();
    }
    let (project, _) = projector(markers, opts);
    let mut cells: BTreeMap<(i64, i64), Vec<usize>> = BTreeMap::new();
    for (i, m) in markers.iter().enumerate() {
        let (x, y) = project(m.lat, m.lon);
        let cell = (
            (x / opts.cluster_px).floor() as i64,
            (y / opts.cluster_px).floor() as i64,
        );
        cells.entry(cell).or_default().push(i);
    }
    cells
        .into_values()
        .map(|ids| {
            let n = ids.len() as f64;
            let (mut sx, mut sy, mut sm) = (0.0, 0.0, 0.0);
            let mut titles = Vec::with_capacity(ids.len());
            for &i in &ids {
                let (x, y) = project(markers[i].lat, markers[i].lon);
                sx += x;
                sy += y;
                sm += markers[i].match_degree;
                titles.push(markers[i].title.clone());
            }
            Cluster {
                x: sx / n,
                y: sy / n,
                titles,
                match_degree: sm / n,
            }
        })
        .collect()
}

/// Builds the lat/lon → pixel projection for the markers' bounding box
/// (padded), plus the box itself as (lat_min, lat_max, lon_min, lon_max).
#[allow(clippy::type_complexity)]
fn projector(
    markers: &[MapMarker],
    opts: &MapOptions,
) -> (impl Fn(f64, f64) -> (f64, f64), (f64, f64, f64, f64)) {
    let mut lat_min = f64::INFINITY;
    let mut lat_max = f64::NEG_INFINITY;
    let mut lon_min = f64::INFINITY;
    let mut lon_max = f64::NEG_INFINITY;
    for m in markers {
        lat_min = lat_min.min(m.lat);
        lat_max = lat_max.max(m.lat);
        lon_min = lon_min.min(m.lon);
        lon_max = lon_max.max(m.lon);
    }
    // Pad by 10% (and avoid a degenerate box for a single point).
    let lat_pad = ((lat_max - lat_min) * 0.1).max(0.05);
    let lon_pad = ((lon_max - lon_min) * 0.1).max(0.05);
    lat_min -= lat_pad;
    lat_max += lat_pad;
    lon_min -= lon_pad;
    lon_max += lon_pad;
    let (w, h) = (opts.width, opts.height);
    let (la0, la1, lo0, lo1) = (lat_min, lat_max, lon_min, lon_max);
    (
        move |lat: f64, lon: f64| {
            let x = (lon - lo0) / (lo1 - lo0) * w;
            let y = (1.0 - (lat - la0) / (la1 - la0)) * h;
            (x, y)
        },
        (lat_min, lat_max, lon_min, lon_max),
    )
}

/// Picks a graticule step giving 2–10 gridlines for a span in degrees.
fn grid_step(span: f64) -> f64 {
    for step in [0.01, 0.02, 0.05, 0.1, 0.2, 0.5, 1.0, 2.0, 5.0, 10.0] {
        if span / step <= 10.0 {
            return step;
        }
    }
    20.0
}

/// Renders the clustered map as SVG.
pub fn map_plot(title: &str, markers: &[MapMarker], opts: &MapOptions) -> String {
    let mut doc = SvgDoc::new(opts.width, opts.height);
    doc.rect(0.0, 0.0, opts.width, opts.height, "#F4F8FB", None);
    doc.text(opts.width / 2.0, 20.0, 14.0, "middle", "#222", title);
    if markers.is_empty() {
        doc.text(
            opts.width / 2.0,
            opts.height / 2.0,
            12.0,
            "middle",
            "#888",
            "no geolocated results",
        );
        return doc.finish();
    }
    let (project, (lat_min, lat_max, lon_min, lon_max)) = projector(markers, opts);
    // Graticule with a step adapted to each axis span.
    let lat_step = grid_step(lat_max - lat_min);
    let mut lat = (lat_min / lat_step).ceil() * lat_step;
    while lat < lat_max {
        let (_, y) = project(lat, lon_min);
        doc.line(0.0, y, opts.width, y, "#D5E2EC", 0.5);
        doc.text(4.0, y - 2.0, 9.0, "start", "#9AB", &format!("{lat:.2}°N"));
        lat += lat_step;
    }
    let lon_step = grid_step(lon_max - lon_min);
    let mut lon = (lon_min / lon_step).ceil() * lon_step;
    while lon < lon_max {
        let (x, _) = project(lat_min, lon);
        doc.line(x, 0.0, x, opts.height, "#D5E2EC", 0.5);
        doc.text(
            x + 2.0,
            opts.height - 4.0,
            9.0,
            "start",
            "#9AB",
            &format!("{lon:.2}°E"),
        );
        lon += lon_step;
    }
    for cluster in cluster_markers(markers, opts) {
        let n = cluster.titles.len();
        let r = 6.0 + (n as f64).sqrt() * 3.0;
        let color = match_degree_color(cluster.match_degree);
        let label = if n == 1 {
            cluster.titles[0].clone()
        } else {
            format!("{} pages: {}", n, cluster.titles.join(", "))
        };
        doc.circle(cluster.x, cluster.y, r, &color, Some(&label));
        if n > 1 {
            doc.text(
                cluster.x,
                cluster.y + 3.5,
                10.0,
                "middle",
                "#fff",
                &n.to_string(),
            );
        }
    }
    doc.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn markers() -> Vec<MapMarker> {
        vec![
            MapMarker {
                title: "Fieldsite:WFJ".into(),
                lat: 46.83,
                lon: 9.81,
                match_degree: 1.0,
            },
            MapMarker {
                title: "Fieldsite:Davos".into(),
                lat: 46.826,
                lon: 9.84,
                match_degree: 0.6,
            },
            MapMarker {
                title: "Fieldsite:Payerne".into(),
                lat: 46.81,
                lon: 6.94,
                match_degree: 0.2,
            },
        ]
    }

    #[test]
    fn nearby_markers_cluster() {
        let clusters = cluster_markers(&markers(), &MapOptions::default());
        // WFJ and Davos are a couple of km apart: same cell at default
        // zoom; Payerne is ~200 km west.
        assert_eq!(clusters.len(), 2);
        let big = clusters.iter().find(|c| c.titles.len() == 2).unwrap();
        assert!((big.match_degree - 0.8).abs() < 1e-9, "mean of 1.0 and 0.6");
    }

    #[test]
    fn small_cells_do_not_cluster() {
        let opts = MapOptions {
            cluster_px: 2.0,
            ..MapOptions::default()
        };
        assert_eq!(cluster_markers(&markers(), &opts).len(), 3);
    }

    #[test]
    fn svg_contains_count_badge_and_graticule() {
        let svg = map_plot("Stations", &markers(), &MapOptions::default());
        assert!(svg.contains(">2</text>"), "cluster count badge");
        assert!(svg.contains("°N"));
        assert!(svg.contains("°E"));
    }

    #[test]
    fn empty_input_message() {
        let svg = map_plot("t", &[], &MapOptions::default());
        assert!(svg.contains("no geolocated results"));
    }

    #[test]
    fn single_marker_does_not_degenerate() {
        let svg = map_plot("one", &markers()[..1], &MapOptions::default());
        assert!(svg.contains("<circle"));
        assert!(!svg.contains("NaN"));
    }

    #[test]
    fn match_degree_drives_color() {
        let one = map_plot("t", &markers()[..1], &MapOptions::default());
        assert!(one.contains("#08519C"), "full match is darkest blue");
    }
}
