//! # sensormeta-viz
//!
//! Pure-Rust SVG visualization of search results, standing in for the
//! external services the demo wired together (Google Maps / Charts APIs,
//! GraphViz, the HyperGraph applet): bar/pie/line charts, clustered map
//! plots with match-degree coloring, force-directed and layered digraph
//! rendering, radial hypergraph browser snapshots, and tag clouds with
//! clique coloring.

#![warn(missing_docs)]

pub mod chart;
pub mod graphviz;
pub mod hypergraph;
pub mod layout;
pub mod map;
pub mod svg;
pub mod tagcloud;

pub use chart::{bar_chart, line_chart, pie_chart, Datum};
pub use graphviz::{classify_by_neighbors, render_digraph, GraphLayout, GraphNode};
pub use hypergraph::{radial_embedding, render_hypergraph, HyperNode};
pub use layout::{force_layout, layered_layout, Positions};
pub use map::{cluster_markers, map_plot, Cluster, MapMarker, MapOptions};
pub use svg::{escape, match_degree_color, palette_color, SvgDoc, PALETTE};
pub use tagcloud::render_tag_cloud;
