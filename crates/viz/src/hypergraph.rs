//! Dynamic hypergraph browser snapshots.
//!
//! "User-browsable hypergraphs are dynamically generated based on the linking
//! structure of the metadata pages … allow users to browse pages according to
//! their linking structure and help them identify popular (clustered)
//! pages." We render the HyperGraph-applet view: a focus page at the center,
//! its link neighborhood on concentric rings by BFS distance, node size
//! scaled by degree so popular pages stand out.

use crate::svg::{palette_color, SvgDoc};
use sensormeta_graph::CsrGraph;
use std::collections::VecDeque;

/// One ring-placed node of the snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct HyperNode {
    /// Node id in the underlying graph.
    pub node: usize,
    /// BFS distance from the focus (0 = focus itself).
    pub ring: usize,
    /// Position in the SVG.
    pub x: f64,
    /// Position in the SVG.
    pub y: f64,
}

/// Computes the radial embedding around `focus` up to `max_ring` (following
/// links in both directions, as the browser does).
pub fn radial_embedding(
    g: &CsrGraph,
    focus: usize,
    max_ring: usize,
    width: f64,
    height: f64,
) -> Vec<HyperNode> {
    let n = g.node_count();
    assert!(focus < n, "focus out of range");
    let transpose = g.transpose();
    let mut dist = vec![usize::MAX; n];
    dist[focus] = 0;
    let mut queue = VecDeque::from([focus]);
    while let Some(v) = queue.pop_front() {
        if dist[v] >= max_ring {
            continue;
        }
        for &w in g.neighbors(v).iter().chain(transpose.neighbors(v)) {
            if dist[w] == usize::MAX {
                dist[w] = dist[v] + 1;
                queue.push_back(w);
            }
        }
    }
    let (cx, cy) = (width / 2.0, height / 2.0);
    let max_r = width.min(height) / 2.0 - 30.0;
    let mut rings: Vec<Vec<usize>> = vec![Vec::new(); max_ring + 1];
    for v in 0..n {
        if dist[v] <= max_ring {
            rings[dist[v]].push(v);
        }
    }
    let mut out = Vec::new();
    for (ring, members) in rings.iter().enumerate() {
        let r = if max_ring == 0 {
            0.0
        } else {
            max_r * ring as f64 / max_ring as f64
        };
        let count = members.len().max(1) as f64;
        for (ix, &v) in members.iter().enumerate() {
            let angle = std::f64::consts::TAU * ix as f64 / count;
            out.push(HyperNode {
                node: v,
                ring,
                x: cx + r * angle.cos(),
                y: cy + r * angle.sin(),
            });
        }
    }
    out
}

/// Renders the hypergraph snapshot with labels and degree-scaled nodes.
pub fn render_hypergraph(
    title: &str,
    g: &CsrGraph,
    labels: &[String],
    focus: usize,
    max_ring: usize,
) -> String {
    let (width, height) = (700.0, 700.0);
    let embedding = radial_embedding(g, focus, max_ring, width, height - 40.0);
    let mut doc = SvgDoc::new(width, height);
    doc.text(width / 2.0, 20.0, 14.0, "middle", "#222", title);
    let dy = 30.0;
    let pos_of: std::collections::HashMap<usize, (f64, f64)> = embedding
        .iter()
        .map(|h| (h.node, (h.x, h.y + dy)))
        .collect();
    // Edges between embedded nodes.
    for (u, v) in g.iter_edges() {
        if let (Some(&(x1, y1)), Some(&(x2, y2))) = (pos_of.get(&u), pos_of.get(&v)) {
            doc.line(x1, y1, x2, y2, "#CCD6E0", 0.8);
        }
    }
    let in_deg = g.in_degrees();
    for h in &embedding {
        let (x, y) = pos_of[&h.node];
        let degree = in_deg[h.node] + g.out_degree(h.node);
        let r = if h.ring == 0 {
            14.0
        } else {
            4.0 + (degree as f64).sqrt() * 1.8
        };
        doc.circle(x, y, r, palette_color(h.ring), Some(&labels[h.node]));
        if h.ring <= 1 {
            doc.text(x, y - r - 3.0, 9.0, "middle", "#333", &labels[h.node]);
        }
    }
    doc.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn star_plus_chain() -> CsrGraph {
        // 0 is a hub: 0→1..4; plus chain 4→5→6.
        CsrGraph::from_edges(7, &[(0, 1), (0, 2), (0, 3), (0, 4), (4, 5), (5, 6)], false)
    }

    #[test]
    fn rings_follow_bfs_distance() {
        let g = star_plus_chain();
        let emb = radial_embedding(&g, 0, 3, 600.0, 600.0);
        let ring_of = |v: usize| emb.iter().find(|h| h.node == v).map(|h| h.ring);
        assert_eq!(ring_of(0), Some(0));
        assert_eq!(ring_of(1), Some(1));
        assert_eq!(ring_of(5), Some(2));
        assert_eq!(ring_of(6), Some(3));
    }

    #[test]
    fn max_ring_truncates() {
        let g = star_plus_chain();
        let emb = radial_embedding(&g, 0, 1, 600.0, 600.0);
        assert!(emb.iter().all(|h| h.ring <= 1));
        assert_eq!(emb.len(), 5, "focus + 4 direct neighbors");
    }

    #[test]
    fn focus_is_centered() {
        let g = star_plus_chain();
        let emb = radial_embedding(&g, 0, 2, 600.0, 400.0);
        let focus = emb.iter().find(|h| h.node == 0).unwrap();
        assert!((focus.x - 300.0).abs() < 1e-9);
        assert!((focus.y - 200.0).abs() < 1e-9);
    }

    #[test]
    fn traversal_follows_inlinks_too() {
        let g = star_plus_chain();
        // From node 6, everything is reachable via in-links.
        let emb = radial_embedding(&g, 6, 5, 600.0, 600.0);
        assert_eq!(emb.len(), 7);
    }

    #[test]
    fn svg_renders_focus_neighborhood() {
        let g = star_plus_chain();
        let labels: Vec<String> = (0..7).map(|i| format!("P{i}")).collect();
        let svg = render_hypergraph("Hypergraph", &g, &labels, 0, 2);
        assert!(svg.contains("P0"));
        assert!(svg.matches("<circle").count() >= 6);
    }
}
