//! Minimal SVG document builder.

use std::fmt::Write;

/// An SVG document under construction.
#[derive(Debug, Clone)]
pub struct SvgDoc {
    width: f64,
    height: f64,
    body: String,
}

/// Escapes text for inclusion in SVG/XML.
pub fn escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
        .replace('"', "&quot;")
}

impl SvgDoc {
    /// Creates a document with the given pixel size.
    pub fn new(width: f64, height: f64) -> SvgDoc {
        SvgDoc {
            width,
            height,
            body: String::new(),
        }
    }

    /// Document width.
    pub fn width(&self) -> f64 {
        self.width
    }

    /// Document height.
    pub fn height(&self) -> f64 {
        self.height
    }

    /// Adds a rectangle.
    pub fn rect(&mut self, x: f64, y: f64, w: f64, h: f64, fill: &str, title: Option<&str>) {
        let t = title
            .map(|t| format!("<title>{}</title>", escape(t)))
            .unwrap_or_default();
        // Writing into a String cannot fail; the fmt::Result is a formality.
        let _ = writeln!(
            self.body,
            r#"<rect x="{x:.2}" y="{y:.2}" width="{w:.2}" height="{h:.2}" fill="{fill}">{t}</rect>"#
        );
    }

    /// Adds a circle.
    pub fn circle(&mut self, cx: f64, cy: f64, r: f64, fill: &str, title: Option<&str>) {
        let t = title
            .map(|t| format!("<title>{}</title>", escape(t)))
            .unwrap_or_default();
        // Writing into a String cannot fail; the fmt::Result is a formality.
        let _ = writeln!(
            self.body,
            r#"<circle cx="{cx:.2}" cy="{cy:.2}" r="{r:.2}" fill="{fill}">{t}</circle>"#
        );
    }

    /// Adds a line.
    pub fn line(&mut self, x1: f64, y1: f64, x2: f64, y2: f64, stroke: &str, width: f64) {
        // Writing into a String cannot fail; the fmt::Result is a formality.
        let _ = writeln!(
            self.body,
            r#"<line x1="{x1:.2}" y1="{y1:.2}" x2="{x2:.2}" y2="{y2:.2}" stroke="{stroke}" stroke-width="{width:.2}"/>"#
        );
    }

    /// Adds a line with an arrowhead marker (for directed edges).
    pub fn arrow(&mut self, x1: f64, y1: f64, x2: f64, y2: f64, stroke: &str) {
        // Writing into a String cannot fail; the fmt::Result is a formality.
        let _ = writeln!(
            self.body,
            r#"<line x1="{x1:.2}" y1="{y1:.2}" x2="{x2:.2}" y2="{y2:.2}" stroke="{stroke}" stroke-width="1.2" marker-end="url(#arrow)"/>"#
        );
    }

    /// Adds text. `anchor` is `start`/`middle`/`end`.
    pub fn text(&mut self, x: f64, y: f64, size: f64, anchor: &str, fill: &str, content: &str) {
        // Writing into a String cannot fail; the fmt::Result is a formality.
        let _ = writeln!(
            self.body,
            r#"<text x="{x:.2}" y="{y:.2}" font-size="{size:.1}" text-anchor="{anchor}" fill="{fill}" font-family="sans-serif">{}</text>"#,
            escape(content)
        );
    }

    /// Adds a pie slice (SVG path) centered at (cx, cy).
    #[allow(clippy::too_many_arguments)]
    pub fn pie_slice(
        &mut self,
        cx: f64,
        cy: f64,
        r: f64,
        start_angle: f64,
        end_angle: f64,
        fill: &str,
        title: Option<&str>,
    ) {
        let (x1, y1) = (cx + r * start_angle.cos(), cy + r * start_angle.sin());
        let (x2, y2) = (cx + r * end_angle.cos(), cy + r * end_angle.sin());
        let large = if end_angle - start_angle > std::f64::consts::PI {
            1
        } else {
            0
        };
        let t = title
            .map(|t| format!("<title>{}</title>", escape(t)))
            .unwrap_or_default();
        // Writing into a String cannot fail; the fmt::Result is a formality.
        let _ = writeln!(
            self.body,
            r#"<path d="M {cx:.2} {cy:.2} L {x1:.2} {y1:.2} A {r:.2} {r:.2} 0 {large} 1 {x2:.2} {y2:.2} Z" fill="{fill}" stroke="white" stroke-width="1">{t}</path>"#
        );
    }

    /// Adds a raw SVG fragment.
    pub fn raw(&mut self, fragment: &str) {
        self.body.push_str(fragment);
        self.body.push('\n');
    }

    /// Finalizes the document.
    pub fn finish(self) -> String {
        format!(
            "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{:.0}\" height=\"{:.0}\" viewBox=\"0 0 {:.0} {:.0}\">\n\
             <defs><marker id=\"arrow\" viewBox=\"0 0 10 10\" refX=\"9\" refY=\"5\" markerWidth=\"6\" markerHeight=\"6\" orient=\"auto-start-reverse\">\
             <path d=\"M 0 0 L 10 5 L 0 10 z\" fill=\"#555\"/></marker></defs>\n{}</svg>\n",
            self.width, self.height, self.width, self.height, self.body
        )
    }
}

/// A categorical palette (colorblind-friendly Okabe–Ito).
pub const PALETTE: &[&str] = &[
    "#0072B2", "#E69F00", "#009E73", "#CC79A7", "#56B4E9", "#D55E00", "#F0E442", "#999999",
];

/// Picks the i-th palette color, cycling.
pub fn palette_color(i: usize) -> &'static str {
    PALETTE[i % PALETTE.len()]
}

/// Sequential color ramp from light to saturated blue for a value in `[0, 1]`
/// — used for the map's "degree of matching" coloring.
pub fn match_degree_color(t: f64) -> String {
    let t = t.clamp(0.0, 1.0);
    // Interpolate #DEEBF7 → #08519C.
    let lerp = |a: u8, b: u8| (f64::from(a) + t * (f64::from(b) - f64::from(a))) as u8;
    format!(
        "#{:02X}{:02X}{:02X}",
        lerp(0xDE, 0x08),
        lerp(0xEB, 0x51),
        lerp(0xF7, 0x9C)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn document_structure() {
        let mut doc = SvgDoc::new(100.0, 50.0);
        doc.rect(0.0, 0.0, 10.0, 10.0, "red", Some("a <rect>"));
        doc.circle(5.0, 5.0, 2.0, "blue", None);
        doc.text(1.0, 1.0, 10.0, "middle", "#000", "A & B");
        let svg = doc.finish();
        assert!(svg.starts_with("<svg"));
        assert!(svg.trim_end().ends_with("</svg>"));
        assert!(svg.contains("width=\"100\""));
        assert!(svg.contains("&lt;rect&gt;"), "titles escaped");
        assert!(svg.contains("A &amp; B"), "text escaped");
    }

    #[test]
    fn escape_all_specials() {
        assert_eq!(
            escape(r#"<a href="x">&"#),
            "&lt;a href=&quot;x&quot;&gt;&amp;"
        );
    }

    #[test]
    fn palette_cycles() {
        assert_eq!(palette_color(0), palette_color(PALETTE.len()));
    }

    #[test]
    fn match_color_endpoints() {
        assert_eq!(match_degree_color(0.0), "#DEEBF7");
        assert_eq!(match_degree_color(1.0), "#08519C");
        // Out-of-range clamps.
        assert_eq!(match_degree_color(2.0), "#08519C");
    }

    #[test]
    fn pie_slice_large_arc_flag() {
        let mut doc = SvgDoc::new(10.0, 10.0);
        doc.pie_slice(5.0, 5.0, 4.0, 0.0, 4.0, "red", None);
        let svg = doc.finish();
        assert!(svg.contains(" 4.00 4.00 0 1 1 "), "large-arc flag set");
    }
}
