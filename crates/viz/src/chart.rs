//! Bar and pie diagrams — the paper's "real-time bar and pie diagrams"
//! rendered over facet counts.

use crate::svg::{palette_color, SvgDoc};

/// One labeled series value.
#[derive(Debug, Clone, PartialEq)]
pub struct Datum {
    /// Category label.
    pub label: String,
    /// Value (counts are cast to f64 by the callers).
    pub value: f64,
}

impl Datum {
    /// Convenience constructor.
    pub fn new(label: impl Into<String>, value: f64) -> Datum {
        Datum {
            label: label.into(),
            value,
        }
    }
}

/// Renders a vertical bar chart.
pub fn bar_chart(title: &str, data: &[Datum]) -> String {
    let width = 640.0;
    let height = 360.0;
    let margin = 50.0;
    let mut doc = SvgDoc::new(width, height);
    doc.text(width / 2.0, 24.0, 16.0, "middle", "#222", title);
    if data.is_empty() {
        doc.text(width / 2.0, height / 2.0, 12.0, "middle", "#888", "no data");
        return doc.finish();
    }
    let maxv = data
        .iter()
        .map(|d| d.value)
        .fold(0.0f64, f64::max)
        .max(1e-9);
    let plot_w = width - 2.0 * margin;
    let plot_h = height - 2.0 * margin;
    let bar_w = (plot_w / data.len() as f64) * 0.7;
    let gap = (plot_w / data.len() as f64) * 0.3;
    // Axis.
    doc.line(
        margin,
        height - margin,
        width - margin,
        height - margin,
        "#333",
        1.0,
    );
    doc.line(margin, margin, margin, height - margin, "#333", 1.0);
    // Gridlines at quarters.
    for q in 1..=4 {
        let y = height - margin - plot_h * q as f64 / 4.0;
        doc.line(margin, y, width - margin, y, "#DDD", 0.5);
        doc.text(
            margin - 6.0,
            y + 4.0,
            10.0,
            "end",
            "#555",
            &format_number(maxv * q as f64 / 4.0),
        );
    }
    for (i, d) in data.iter().enumerate() {
        let h = plot_h * d.value / maxv;
        let x = margin + i as f64 * (bar_w + gap) + gap / 2.0;
        let y = height - margin - h;
        doc.rect(
            x,
            y,
            bar_w,
            h,
            palette_color(i),
            Some(&format!("{}: {}", d.label, format_number(d.value))),
        );
        doc.text(
            x + bar_w / 2.0,
            height - margin + 14.0,
            10.0,
            "middle",
            "#333",
            &truncate_label(&d.label, 12),
        );
        doc.text(
            x + bar_w / 2.0,
            y - 4.0,
            10.0,
            "middle",
            "#333",
            &format_number(d.value),
        );
    }
    doc.finish()
}

/// Renders a pie chart with a legend.
pub fn pie_chart(title: &str, data: &[Datum]) -> String {
    let width = 640.0;
    let height = 360.0;
    let mut doc = SvgDoc::new(width, height);
    doc.text(width / 2.0, 24.0, 16.0, "middle", "#222", title);
    let total: f64 = data.iter().map(|d| d.value.max(0.0)).sum();
    if total <= 0.0 {
        doc.text(width / 2.0, height / 2.0, 12.0, "middle", "#888", "no data");
        return doc.finish();
    }
    let (cx, cy, r) = (220.0, 200.0, 130.0);
    let mut angle = -std::f64::consts::FRAC_PI_2;
    for (i, d) in data.iter().enumerate() {
        let frac = d.value.max(0.0) / total;
        let next = angle + frac * std::f64::consts::TAU;
        if frac > 0.0 {
            if (frac - 1.0).abs() < 1e-9 {
                // A full circle cannot be drawn as a single arc path.
                doc.circle(cx, cy, r, palette_color(i), Some(&d.label));
            } else {
                doc.pie_slice(
                    cx,
                    cy,
                    r,
                    angle,
                    next,
                    palette_color(i),
                    Some(&format!("{}: {:.1}%", d.label, frac * 100.0)),
                );
            }
        }
        angle = next;
    }
    // Legend.
    for (i, d) in data.iter().enumerate() {
        let y = 60.0 + i as f64 * 22.0;
        doc.rect(400.0, y - 10.0, 14.0, 14.0, palette_color(i), None);
        doc.text(
            420.0,
            y + 2.0,
            11.0,
            "start",
            "#333",
            &format!(
                "{} ({:.1}%)",
                truncate_label(&d.label, 24),
                d.value.max(0.0) / total * 100.0
            ),
        );
    }
    doc.finish()
}

/// Renders a multi-series line chart (used by the Fig. 3 convergence plots:
/// one series per solver, y is log10 residual).
pub fn line_chart(
    title: &str,
    x_label: &str,
    y_label: &str,
    series: &[(String, Vec<(f64, f64)>)],
) -> String {
    let width = 720.0;
    let height = 420.0;
    let margin = 60.0;
    let mut doc = SvgDoc::new(width, height);
    doc.text(width / 2.0, 24.0, 16.0, "middle", "#222", title);
    let pts: Vec<(f64, f64)> = series.iter().flat_map(|(_, p)| p.iter().copied()).collect();
    if pts.is_empty() {
        doc.text(width / 2.0, height / 2.0, 12.0, "middle", "#888", "no data");
        return doc.finish();
    }
    let (xmin, xmax) = pts
        .iter()
        .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), (x, _)| {
            (lo.min(*x), hi.max(*x))
        });
    let (ymin, ymax) = pts
        .iter()
        .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), (_, y)| {
            (lo.min(*y), hi.max(*y))
        });
    let xspan = (xmax - xmin).max(1e-12);
    let yspan = (ymax - ymin).max(1e-12);
    let sx = |x: f64| margin + (x - xmin) / xspan * (width - 2.0 * margin);
    let sy = |y: f64| height - margin - (y - ymin) / yspan * (height - 2.0 * margin);
    doc.line(
        margin,
        height - margin,
        width - margin,
        height - margin,
        "#333",
        1.0,
    );
    doc.line(margin, margin, margin, height - margin, "#333", 1.0);
    doc.text(width / 2.0, height - 16.0, 12.0, "middle", "#333", x_label);
    doc.text(16.0, height / 2.0, 12.0, "middle", "#333", y_label);
    for (i, (name, points)) in series.iter().enumerate() {
        let color = palette_color(i);
        for w in points.windows(2) {
            doc.line(sx(w[0].0), sy(w[0].1), sx(w[1].0), sy(w[1].1), color, 1.5);
        }
        for (x, y) in points {
            doc.circle(sx(*x), sy(*y), 2.0, color, None);
        }
        // Legend entry.
        let ly = 44.0 + i as f64 * 18.0;
        doc.line(width - 180.0, ly, width - 150.0, ly, color, 2.0);
        doc.text(width - 144.0, ly + 4.0, 11.0, "start", "#333", name);
    }
    doc.finish()
}

fn truncate_label(s: &str, max: usize) -> String {
    if s.chars().count() <= max {
        s.to_owned()
    } else {
        let cut: String = s.chars().take(max.saturating_sub(1)).collect();
        format!("{cut}…")
    }
}

fn format_number(v: f64) -> String {
    if (v.fract()).abs() < 1e-9 && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v:.2}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data() -> Vec<Datum> {
        vec![
            Datum::new("temperature", 12.0),
            Datum::new("wind_speed", 7.0),
            Datum::new("snow_height", 3.0),
        ]
    }

    #[test]
    fn bar_chart_has_bars_and_labels() {
        let svg = bar_chart("Sensors per kind", &data());
        assert_eq!(svg.matches("<rect").count(), 3);
        assert!(svg.contains("temperature"));
        assert!(svg.contains("Sensors per kind"));
    }

    #[test]
    fn bar_chart_empty() {
        let svg = bar_chart("x", &[]);
        assert!(svg.contains("no data"));
    }

    #[test]
    fn pie_chart_slices_sum() {
        let svg = pie_chart("Share", &data());
        assert_eq!(
            svg.matches("<path").count(),
            3 + 1,
            "3 slices + arrow marker"
        );
        assert!(svg.contains("54.5%"), "12/22 share shown in legend");
    }

    #[test]
    fn pie_chart_single_full_slice() {
        let svg = pie_chart("All", &[Datum::new("only", 5.0)]);
        assert!(svg.contains("<circle"), "100% drawn as a circle");
    }

    #[test]
    fn pie_chart_zero_total() {
        let svg = pie_chart("none", &[Datum::new("a", 0.0)]);
        assert!(svg.contains("no data"));
    }

    #[test]
    fn line_chart_series_and_legend() {
        let svg = line_chart(
            "Convergence",
            "iteration",
            "log10 residual",
            &[
                ("GS".into(), vec![(0.0, 0.0), (1.0, -2.0), (2.0, -4.0)]),
                ("Jacobi".into(), vec![(0.0, 0.0), (1.0, -1.0), (2.0, -2.0)]),
            ],
        );
        assert!(svg.contains("GS"));
        assert!(svg.contains("Jacobi"));
        assert!(svg.matches("<circle").count() >= 6);
    }

    #[test]
    fn charts_are_deterministic() {
        assert_eq!(bar_chart("t", &data()), bar_chart("t", &data()));
    }
}
