//! Workspace-level semantic analysis: a cross-file symbol table and
//! approximate call graph over the items extracted by [`crate::parser`],
//! plus the five invariant rules built on it:
//!
//! - **epoch-bump-on-mutate** — every public `&mut self` method of a store
//!   type must transitively reach an `EpochClock::bump` of its domain.
//! - **epoch-bump-on-commit** — every public commit/publish entry point of
//!   the `tx` MVCC crate must transitively reach *some* `EpochClock` bump
//!   (the domains are parameters there, so any bump counts).
//! - **wal-before-write** — durable `Database`/`Smr` mutation paths must
//!   reach a WAL append, and reach it before the first applied write.
//! - **lock-order** — the cross-crate Mutex/RwLock acquisition graph must
//!   stay acyclic.
//! - **no-blocking-in-par** — no fsync/file I/O/unbounded lock waits inside
//!   `Pool::scope`/`par_*` closures.
//!
//! The call graph is approximate by design. `self.m()` resolves within the
//! caller's own type and `Type::m()` through its qualifier; other method
//! calls resolve by name only when exactly one workspace type defines that
//! name — ambiguously named methods resolve to nothing rather than to
//! everything. That keeps the deadlock-shaped rules (lock-order, blocking)
//! quiet without receiver type inference, while `self.` chains stay precise
//! for the transitive epoch/WAL walks; per-line `// xlint: allow(rule)`
//! markers document the intentional exceptions.

use crate::lexer::{Lexed, TokKind};
use crate::parser::{self, CallSite, Callee, FnItem};
use crate::rules::{self, Rule, Violation};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::ops::Range;

/// Store types whose public `&mut self` methods must bump an epoch domain:
/// (file prefix, type name, acceptable `Domain::…` variant names).
const STORE_TYPES: &[(&str, &str, &[&str])] = &[
    ("crates/relstore/src/", "Database", &["Relational"]),
    ("crates/rdf/src/", "TripleStore", &["Triples"]),
    ("crates/search/src/", "SearchIndex", &["SearchIndex"]),
    (
        "crates/smr/src/",
        "Smr",
        &["Relational", "Triples", "WebGraph", "TagIncidence"],
    ),
    ("crates/tagging/src/", "TagStore", &["TagIncidence"]),
];

/// Types whose public `&mut self` methods are durable mutation entry points
/// for the wal-before-write rule.
const DURABLE_TYPES: &[(&str, &str)] = &[
    ("crates/relstore/src/", "Database"),
    ("crates/smr/src/", "Smr"),
];

/// Method names that open a parallel closure region. `run` is included only
/// when invoked on a receiver named `pool` (plain `run(…)` is too common).
const PAR_ENTRIES: &[&str] = &["scope", "par_chunks_mut", "par_map_collect", "par_sum"];

/// Method names that block the calling thread.
const BLOCKING_METHODS: &[&str] = &[
    "lock",
    "sync_all",
    "sync_data",
    "flush",
    "recv",
    "recv_timeout",
    "wait",
    "wait_timeout",
    "wait_while",
    "park",
];

/// One direct lock acquisition with its approximate hold range.
#[derive(Debug, Clone)]
struct Acq {
    class: String,
    tok: usize,
    line: u32,
    /// Token index up to which the guard is considered held: end of the
    /// enclosing block for let-bound guards, end of the statement for
    /// temporaries. `drop(guard)` is not modelled — held ranges only
    /// over-approximate, which is the safe direction for deadlock rules.
    hold_end: usize,
}

/// One function plus the semantic facts extracted from its body.
#[derive(Debug)]
struct FnInfo {
    item: FnItem,
    calls: Vec<CallSite>,
    /// `Domain::…` variant names bumped directly; `"*"` for `bump_all`.
    bumps: BTreeSet<String>,
    acqs: Vec<Acq>,
    /// Direct blocking operations: (token index, line, description).
    blocking: Vec<(usize, u32, String)>,
    /// Parallel closure regions: (entry method name, token range of args).
    par_regions: Vec<(String, Range<usize>)>,
    /// This fn *is* a WAL append sink.
    wal_sink: bool,
    /// Direct applied-write call sites: (tok, line). Recorded only in the
    /// Database entry layer (`crates/relstore/src/db.rs`), where `insert`
    /// and `execute` calls are applied table writes — deeper relstore files
    /// use the same method names for plain map bookkeeping.
    applies: Vec<(usize, u32)>,
}

/// The assembled workspace: functions, symbol tables, call-graph edges.
struct Workspace {
    fns: Vec<FnInfo>,
    succ: Vec<Vec<usize>>,
    methods_by_name: HashMap<String, Vec<usize>>,
    free_by_name: HashMap<String, Vec<usize>>,
    by_owner_name: HashMap<(String, String), Vec<usize>>,
    /// Method names defined by more than one type. Without receiver types,
    /// resolving these to every same-named method floods the call graph
    /// with phantom edges (`.load(` on an atomic "reaching" `Database::load`),
    /// so ambiguous names resolve to nothing unless the receiver is `self`.
    ambiguous_methods: BTreeSet<String>,
}

impl Workspace {
    fn display_name(&self, i: usize) -> String {
        let it = &self.fns[i].item;
        match &it.owner {
            Some(o) => format!("{o}::{}", it.name),
            None => it.name.clone(),
        }
    }

    /// Resolves a call site made from a method of `caller_owner`:
    /// `self.m(…)` resolves within the caller's own type; other method
    /// calls resolve by name only when exactly one type defines the name;
    /// qualified `Type::f` by (owner, name); free calls by function name.
    fn resolve(&self, caller_owner: Option<&str>, callee: &Callee) -> BTreeSet<usize> {
        let mut out = BTreeSet::new();
        match callee {
            Callee::Method { name, recv } => {
                if recv.as_deref() == Some("self") {
                    if let Some(owner) = caller_owner {
                        if let Some(ids) =
                            self.by_owner_name.get(&(owner.to_string(), name.clone()))
                        {
                            out.extend(ids.iter().copied());
                            return out;
                        }
                    }
                }
                if !self.ambiguous_methods.contains(name) {
                    if let Some(ids) = self.methods_by_name.get(name) {
                        out.extend(ids.iter().copied());
                    }
                }
            }
            Callee::Free { path, name } => {
                let qualified = path
                    .last()
                    .filter(|seg| seg.chars().next().is_some_and(char::is_uppercase));
                if let Some(ty) = qualified {
                    if let Some(ids) = self.by_owner_name.get(&(ty.clone(), name.clone())) {
                        out.extend(ids.iter().copied());
                    }
                } else if let Some(ids) = self.free_by_name.get(name) {
                    out.extend(ids.iter().copied());
                }
            }
        }
        out
    }

    /// Convenience: resolves a call site within function `i`.
    fn resolve_in(&self, i: usize, callee: &Callee) -> BTreeSet<usize> {
        self.resolve(self.fns[i].item.owner.as_deref(), callee)
    }
}

fn ident_at(lexed: &Lexed, i: usize) -> Option<&str> {
    lexed.tokens.get(i).and_then(|t| {
        if t.kind == TokKind::Ident {
            Some(t.text.as_str())
        } else {
            None
        }
    })
}

fn punct_at(lexed: &Lexed, i: usize, c: char) -> bool {
    lexed
        .tokens
        .get(i)
        .is_some_and(|t| t.kind == TokKind::Punct(c))
}

/// Scans every file for lock *classes*: struct fields and statics of type
/// `Mutex<…>` / `RwLock<…>` (optionally behind a path or a wrapper such as
/// `Vec<…>`/`Arc<…>`). The field/static name is the class. Single-letter
/// names are skipped — they are generic helper parameters
/// (`fn lock<T>(m: &Mutex<T>)`), not shared workspace state.
fn discover_lock_classes(files: &[(String, Lexed)]) -> BTreeSet<String> {
    let mut classes = BTreeSet::new();
    for (_, lexed) in files {
        let mask = rules::test_region_mask(&lexed.tokens);
        for (i, in_test) in mask.iter().enumerate() {
            if *in_test {
                continue;
            }
            let Some(name) = ident_at(lexed, i) else {
                continue;
            };
            if (name != "Mutex" && name != "RwLock") || !punct_at(lexed, i + 1, '<') {
                continue;
            }
            let mut j = i;
            loop {
                // `std::sync::Mutex` → walk back over the path.
                while j >= 3
                    && punct_at(lexed, j - 1, ':')
                    && punct_at(lexed, j - 2, ':')
                    && ident_at(lexed, j - 3).is_some()
                {
                    j -= 3;
                }
                // `Vec<Mutex<…>>`, `Arc<RwLock<…>>` → walk out of wrappers.
                if j >= 2 && punct_at(lexed, j - 1, '<') && ident_at(lexed, j - 2).is_some() {
                    j -= 2;
                } else {
                    break;
                }
            }
            if j >= 2 && punct_at(lexed, j - 1, ':') && !punct_at(lexed, j - 2, ':') {
                if let Some(class) = ident_at(lexed, j - 2) {
                    if class.len() > 1 {
                        classes.insert(class.to_string());
                    }
                }
            }
        }
    }
    classes
}

/// For each token, the index of the closing `}` of its innermost block
/// (`tokens.len()` at top level).
fn enclosing_close(lexed: &Lexed) -> Vec<usize> {
    let tokens = &lexed.tokens;
    let closes = parser::brace_matches(tokens);
    let mut out = vec![tokens.len(); tokens.len()];
    let mut stack: Vec<usize> = Vec::new();
    for i in 0..tokens.len() {
        while stack.last().is_some_and(|&open| i > closes[open]) {
            stack.pop();
        }
        if let Some(&open) = stack.last() {
            out[i] = closes[open];
        }
        if tokens[i].kind == TokKind::Punct('{') {
            stack.push(i);
        }
    }
    out
}

/// Is the expression whose call chain starts at token `chain_start` bound by
/// a `let`? (`let [mut] guard = self.engine.write();`)
fn is_let_bound(lexed: &Lexed, chain_start: usize) -> bool {
    if chain_start == 0 || !punct_at(lexed, chain_start - 1, '=') {
        return false;
    }
    // `==`, `!=`, `<=`, `>=`, `+=`, … are not bindings.
    if chain_start >= 2
        && matches!(
            lexed.tokens[chain_start - 2].kind,
            TokKind::Punct('=' | '!' | '<' | '>' | '+' | '-' | '*' | '/')
        )
    {
        return false;
    }
    let mut j = chain_start - 1;
    for _ in 0..6 {
        if j == 0 {
            return false;
        }
        j -= 1;
        match &lexed.tokens[j].kind {
            TokKind::Ident if lexed.tokens[j].text == "let" => return true,
            TokKind::Ident => continue,
            TokKind::Punct(':' | '<' | '>') => continue, // `let g: Guard<'_> =`
            _ => return false,
        }
    }
    false
}

/// Start of the receiver chain for the call whose name ident is at `i`:
/// walks `self.db.execute` back to the `self` token.
fn chain_start(lexed: &Lexed, i: usize) -> usize {
    let mut j = i;
    while j >= 2 && punct_at(lexed, j - 1, '.') && ident_at(lexed, j - 2).is_some() {
        j -= 2;
    }
    j
}

/// Hold range end for an acquisition at call-name token `i` with args
/// ending at `args_end`.
fn hold_end(lexed: &Lexed, encl: &[usize], i: usize, args_end: usize) -> usize {
    let start = chain_start(lexed, i);
    if is_let_bound(lexed, start) {
        return encl.get(i).copied().unwrap_or(lexed.tokens.len());
    }
    // Temporary: the guard drops at the end of the statement.
    let mut j = args_end;
    let stop = encl.get(i).copied().unwrap_or(lexed.tokens.len());
    while j < lexed.tokens.len() && j < stop {
        if lexed.tokens[j].kind == TokKind::Punct(';') {
            return j;
        }
        j += 1;
    }
    stop
}

/// Extracts the `Domain::X` variant names mentioned in a token range.
fn domains_in_args(lexed: &Lexed, args: &Range<usize>) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    for i in args.clone() {
        if ident_at(lexed, i) == Some("Domain")
            && punct_at(lexed, i + 1, ':')
            && punct_at(lexed, i + 2, ':')
        {
            if let Some(v) = ident_at(lexed, i + 3) {
                out.insert(v.to_string());
            }
        }
    }
    out
}

/// Builds the workspace model from the lexed files.
fn build(files: &[(String, Lexed)]) -> Workspace {
    let classes = discover_lock_classes(files);
    let mut fns: Vec<FnInfo> = Vec::new();

    for (rel, lexed) in files {
        let mask = rules::test_region_mask(&lexed.tokens);
        let encl = enclosing_close(lexed);
        let is_db_layer = rel == "crates/relstore/src/db.rs";
        for item in parser::parse_items(rel, &lexed.tokens, &mask) {
            if item.in_test {
                continue;
            }
            let calls = parser::call_sites(&lexed.tokens, item.body.clone());
            let wal_sink = item.name == "wal_commit"
                || (item.owner.as_deref() == Some("Wal")
                    && matches!(item.name.as_str(), "commit" | "append"));
            let mut info = FnInfo {
                item,
                calls,
                bumps: BTreeSet::new(),
                acqs: Vec::new(),
                blocking: Vec::new(),
                par_regions: Vec::new(),
                wal_sink,
                applies: Vec::new(),
            };
            extract_facts(lexed, &encl, &classes, is_db_layer, &mut info);
            fns.push(info);
        }
    }

    // Symbol tables.
    let mut methods_by_name: HashMap<String, Vec<usize>> = HashMap::new();
    let mut free_by_name: HashMap<String, Vec<usize>> = HashMap::new();
    let mut by_owner_name: HashMap<(String, String), Vec<usize>> = HashMap::new();
    for (i, f) in fns.iter().enumerate() {
        match &f.item.owner {
            Some(owner) => {
                methods_by_name
                    .entry(f.item.name.clone())
                    .or_default()
                    .push(i);
                by_owner_name
                    .entry((owner.clone(), f.item.name.clone()))
                    .or_default()
                    .push(i);
            }
            None => free_by_name.entry(f.item.name.clone()).or_default().push(i),
        }
    }

    let mut ambiguous_methods = BTreeSet::new();
    {
        let mut owners_of: HashMap<&str, BTreeSet<&str>> = HashMap::new();
        for (owner, name) in by_owner_name.keys() {
            owners_of.entry(name).or_default().insert(owner);
        }
        for (name, owners) in owners_of {
            if owners.len() > 1 {
                ambiguous_methods.insert(name.to_string());
            }
        }
    }

    let mut ws = Workspace {
        fns,
        succ: Vec::new(),
        methods_by_name,
        free_by_name,
        by_owner_name,
        ambiguous_methods,
    };
    // Call-graph edges.
    let mut succ: Vec<Vec<usize>> = Vec::with_capacity(ws.fns.len());
    for (i, f) in ws.fns.iter().enumerate() {
        let mut out = BTreeSet::new();
        for c in &f.calls {
            out.extend(ws.resolve_in(i, &c.callee));
        }
        succ.push(out.into_iter().collect());
    }
    ws.succ = succ;
    ws
}

/// Populates the direct semantic facts of one function from its call sites.
fn extract_facts(
    lexed: &Lexed,
    encl: &[usize],
    classes: &BTreeSet<String>,
    is_db_layer: bool,
    info: &mut FnInfo,
) {
    for c in info.calls.clone() {
        match &c.callee {
            Callee::Method { name, recv } => {
                match name.as_str() {
                    "bump" => {
                        let ds = domains_in_args(lexed, &c.args);
                        if ds.is_empty() {
                            // `clk.bump(d)` with a domain *variable* (the tx
                            // commit path iterates a `&[Domain]` parameter):
                            // an unknown-domain bump, recorded as `"?"` so
                            // epoch-bump-on-commit sees that *a* bump happens.
                            info.bumps.insert("?".to_string());
                        } else {
                            info.bumps.extend(ds);
                        }
                    }
                    "bump_all" => {
                        info.bumps.insert("*".to_string());
                    }
                    _ => {}
                }
                // Lock acquisitions on known classes.
                if matches!(name.as_str(), "lock" | "read" | "write") {
                    if let Some(r) = recv {
                        if classes.contains(r) {
                            info.acqs.push(Acq {
                                class: r.clone(),
                                tok: c.tok,
                                line: c.line,
                                hold_end: hold_end(lexed, encl, c.tok, c.args.end),
                            });
                        }
                    }
                }
                // Blocking operations. `.read(`/`.write(` only count via the
                // class check above — bare io reads are not lock waits.
                if BLOCKING_METHODS.contains(&name.as_str()) {
                    info.blocking
                        .push((c.tok, c.line, format!(".{name}() wait")));
                }
                // Parallel closure regions.
                if PAR_ENTRIES.contains(&name.as_str())
                    || (name == "run" && recv.as_deref() == Some("pool"))
                {
                    info.par_regions.push((name.clone(), c.args.clone()));
                }
                if is_db_layer && name == "insert" {
                    info.applies.push((c.tok, c.line));
                }
            }
            Callee::Free { path, name } => {
                if name == "bump" {
                    let ds = domains_in_args(lexed, &c.args);
                    if ds.is_empty() {
                        info.bumps.insert("?".to_string());
                    } else {
                        info.bumps.extend(ds);
                    }
                }
                if name == "bump_all" {
                    info.bumps.insert("*".to_string());
                }
                // The `lock(&self.state)` / `read_lock(&self.current)` /
                // `write_lock(&self.current)` poison-proof helpers: an
                // acquisition of any class named in their arguments.
                if matches!(name.as_str(), "lock" | "read_lock" | "write_lock") {
                    for i in c.args.clone() {
                        if let Some(id) = ident_at(lexed, i) {
                            if classes.contains(id) {
                                info.acqs.push(Acq {
                                    class: id.to_string(),
                                    tok: c.tok,
                                    line: c.line,
                                    hold_end: hold_end(lexed, encl, c.tok, c.args.end),
                                });
                            }
                        }
                    }
                }
                let last = path.last().map(String::as_str);
                let blocking = match (last, name.as_str()) {
                    (Some("File"), "open" | "create") => Some("File open/create".to_string()),
                    (Some("fs"), op) => Some(format!("fs::{op}")),
                    (Some("thread") | None, "sleep" | "park") => Some(format!("{name}()")),
                    _ => None,
                };
                if let Some(desc) = blocking {
                    info.blocking.push((c.tok, c.line, desc));
                }
                if is_db_layer && name == "execute" {
                    info.applies.push((c.tok, c.line));
                }
            }
        }
    }
    info.acqs.sort_by_key(|a| a.tok);
    info.blocking.sort_by_key(|b| b.0);
}

/// Boolean reachability fixpoint: `out[i]` is true when `init(fns[i])` or
/// some successor is reachable-true.
fn fixpoint_reach(
    fns: &[FnInfo],
    succ: &[Vec<usize>],
    init: impl Fn(&FnInfo) -> bool,
) -> Vec<bool> {
    let mut r: Vec<bool> = fns.iter().map(&init).collect();
    loop {
        let mut changed = false;
        for i in 0..fns.len() {
            if !r[i] && succ[i].iter().any(|&j| r[j]) {
                r[i] = true;
                changed = true;
            }
        }
        if !changed {
            return r;
        }
    }
}

/// BFS from `start` for any function satisfying `hit`; `true` if reachable.
fn reaches(ws: &Workspace, start: usize, hit: impl Fn(&FnInfo) -> bool) -> bool {
    let mut seen = vec![false; ws.fns.len()];
    let mut queue = vec![start];
    seen[start] = true;
    while let Some(i) = queue.pop() {
        if hit(&ws.fns[i]) {
            return true;
        }
        for &j in &ws.succ[i] {
            if !seen[j] {
                seen[j] = true;
                queue.push(j);
            }
        }
    }
    false
}

// ---------------------------------------------------------------------------
// Rule 1: epoch-bump-on-mutate
// ---------------------------------------------------------------------------

fn lint_epoch(ws: &Workspace) -> Vec<Violation> {
    let mut out = Vec::new();
    for (prefix, ty, domains) in STORE_TYPES {
        for i in 0..ws.fns.len() {
            let it = &ws.fns[i].item;
            if !it.file.starts_with(prefix)
                || it.owner.as_deref() != Some(*ty)
                || !it.is_pub
                || !it.takes_mut_self
            {
                continue;
            }
            let bumped = reaches(ws, i, |f| {
                f.bumps.contains("*") || domains.iter().any(|d| f.bumps.contains(*d))
            });
            if !bumped {
                out.push(Violation {
                    file: it.file.clone(),
                    line: it.line,
                    rule: Rule::EpochBumpOnMutate,
                    message: format!(
                        "`{ty}::{}` takes `&mut self` but no call path from it reaches \
                         `EpochClock::bump` for domain(s) {}; cached results keyed on those \
                         domains will be served stale after this mutation",
                        it.name,
                        domains.join("/"),
                    ),
                });
            }
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Rule 1b: epoch-bump-on-commit
// ---------------------------------------------------------------------------

fn lint_epoch_on_commit(ws: &Workspace) -> Vec<Violation> {
    let in_tx: Vec<usize> = (0..ws.fns.len())
        .filter(|&i| ws.fns[i].item.file.starts_with("crates/tx/"))
        .collect();
    if in_tx.is_empty() {
        return Vec::new();
    }
    // Crate-local method table: inside crates/tx a method call resolves by
    // name even when the name is globally ambiguous (`publish` also exists
    // on the cache's single-flight type) — a commit path never leaves the
    // crate before it bumps.
    let mut local: HashMap<&str, Vec<usize>> = HashMap::new();
    for &i in &in_tx {
        local
            .entry(ws.fns[i].item.name.as_str())
            .or_default()
            .push(i);
    }
    let mut out = Vec::new();
    for &i in &in_tx {
        let it = &ws.fns[i].item;
        if !it.is_pub || it.owner.is_none() || !(it.name.contains("commit") || it.name == "publish")
        {
            continue;
        }
        // BFS over the global call graph plus the crate-local name edges.
        let mut seen = vec![false; ws.fns.len()];
        let mut queue = vec![i];
        seen[i] = true;
        let mut bumped = false;
        while let Some(v) = queue.pop() {
            if !ws.fns[v].bumps.is_empty() {
                bumped = true;
                break;
            }
            let mut next: BTreeSet<usize> = ws.succ[v].iter().copied().collect();
            if ws.fns[v].item.file.starts_with("crates/tx/") {
                for c in &ws.fns[v].calls {
                    if let Callee::Method { name, .. } = &c.callee {
                        if let Some(ids) = local.get(name.as_str()) {
                            next.extend(ids.iter().copied());
                        }
                    }
                }
            }
            for j in next {
                if !seen[j] {
                    seen[j] = true;
                    queue.push(j);
                }
            }
        }
        if !bumped {
            out.push(Violation {
                file: it.file.clone(),
                line: it.line,
                rule: Rule::EpochBumpOnCommit,
                message: format!(
                    "`{}::{}` publishes a new version but no call path from it reaches an \
                     `EpochClock` bump; snapshot validation and cache invalidation are \
                     epoch-driven, so the commit is invisible to every reader",
                    it.owner.as_deref().unwrap_or("?"),
                    it.name,
                ),
            });
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Rule 2: wal-before-write
// ---------------------------------------------------------------------------

fn lint_wal(ws: &Workspace) -> Vec<Violation> {
    let reaches_apply = fixpoint_reach(&ws.fns, &ws.succ, |f| !f.applies.is_empty());
    let reaches_wal = fixpoint_reach(&ws.fns, &ws.succ, |f| f.wal_sink);
    let mut out = Vec::new();
    for (prefix, ty) in DURABLE_TYPES {
        for i in 0..ws.fns.len() {
            let f = &ws.fns[i];
            let it = &f.item;
            if !it.file.starts_with(prefix)
                || it.owner.as_deref() != Some(*ty)
                || !it.is_pub
                || !it.takes_mut_self
            {
                continue;
            }
            if !reaches_apply[i] {
                continue; // not a durable write path
            }
            if !reaches_wal[i] {
                out.push(Violation {
                    file: it.file.clone(),
                    line: it.line,
                    rule: Rule::WalBeforeWrite,
                    message: format!(
                        "`{ty}::{}` reaches an applied write but no call path from it \
                         reaches a WAL append (`wal_commit`); the mutation is not \
                         crash-recoverable",
                        it.name
                    ),
                });
                continue;
            }
            // Both reachable: the first applied write in this body must not
            // strictly precede the first WAL append.
            let site_reaches = |c: &CallSite, set: &[bool]| -> bool {
                ws.resolve_in(i, &c.callee).iter().any(|&g| set[g])
            };
            let first_apply = f
                .applies
                .iter()
                .map(|&(tok, _)| tok)
                .chain(
                    f.calls
                        .iter()
                        .filter(|c| site_reaches(c, &reaches_apply))
                        .map(|c| c.tok),
                )
                .min();
            let first_wal = f
                .calls
                .iter()
                .filter(|c| site_reaches(c, &reaches_wal))
                .map(|c| c.tok)
                .min();
            if let (Some(a), Some(w)) = (first_apply, first_wal) {
                if a < w {
                    let line = f
                        .applies
                        .iter()
                        .find(|&&(tok, _)| tok == a)
                        .map(|&(_, l)| l)
                        .or_else(|| f.calls.iter().find(|c| c.tok == a).map(|c| c.line))
                        .unwrap_or(it.line);
                    out.push(Violation {
                        file: it.file.clone(),
                        line,
                        rule: Rule::WalBeforeWrite,
                        message: format!(
                            "`{ty}::{}` applies a write before its WAL append; log the \
                             operation first so recovery can replay it",
                            it.name
                        ),
                    });
                }
            }
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Rule 3: lock-order
// ---------------------------------------------------------------------------

/// A directed "class B acquired while class A held" pair.
type LockEdge = (String, String);
/// First witness (file, line) recorded for a lock edge.
type WitnessSite = (String, u32);

fn lint_lock_order(ws: &Workspace) -> Vec<Violation> {
    // Transitive acquisition sets per fn.
    let n = ws.fns.len();
    let mut trans: Vec<BTreeSet<String>> = ws
        .fns
        .iter()
        .map(|f| f.acqs.iter().map(|a| a.class.clone()).collect())
        .collect();
    loop {
        let mut changed = false;
        for i in 0..n {
            for s in 0..ws.succ[i].len() {
                let j = ws.succ[i][s];
                if j == i {
                    continue;
                }
                let extra: Vec<String> = trans[j].difference(&trans[i]).cloned().collect();
                if !extra.is_empty() {
                    trans[i].extend(extra);
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }

    // Directed edges class A → class B ("B acquired while A held"), with the
    // first witness site per edge.
    let mut edges: BTreeMap<LockEdge, WitnessSite> = BTreeMap::new();
    let mut add_edge = |a: &str, b: &str, file: &str, line: u32| {
        if a != b {
            edges
                .entry((a.to_string(), b.to_string()))
                .or_insert_with(|| (file.to_string(), line));
        }
    };
    for (i, f) in ws.fns.iter().enumerate() {
        for a in &f.acqs {
            // Intra-fn: later acquisitions inside the hold range.
            for b in &f.acqs {
                if b.tok > a.tok && b.tok < a.hold_end {
                    add_edge(&a.class, &b.class, &f.item.file, b.line);
                }
            }
            // Interprocedural: calls made while the guard is held acquire
            // the callee's transitive lock set.
            for c in &f.calls {
                if c.tok <= a.tok || c.tok >= a.hold_end {
                    continue;
                }
                for g in ws.resolve_in(i, &c.callee) {
                    for l in &trans[g] {
                        add_edge(&a.class, l, &f.item.file, c.line);
                    }
                }
            }
        }
    }

    // Cycle detection: strongly-connected components of ≥2 classes.
    let nodes: Vec<String> = edges
        .keys()
        .flat_map(|(a, b)| [a.clone(), b.clone()])
        .collect::<BTreeSet<_>>()
        .into_iter()
        .collect();
    let index: BTreeMap<&str, usize> = nodes
        .iter()
        .map(|s| s.as_str())
        .enumerate()
        .map(|(i, s)| (s, i))
        .collect();
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); nodes.len()];
    for (a, b) in edges.keys() {
        adj[index[a.as_str()]].push(index[b.as_str()]);
    }
    let sccs = kosaraju(&adj);
    let mut out = Vec::new();
    for scc in sccs {
        if scc.len() < 2 {
            continue;
        }
        let names: Vec<&str> = scc.iter().map(|&i| nodes[i].as_str()).collect();
        // Witness: the two lexicographically-smallest in-SCC edges in
        // opposite "directions" (any two suffice to show the cycle).
        let in_scc: Vec<(&LockEdge, &WitnessSite)> = edges
            .iter()
            .filter(|((a, b), _)| names.contains(&a.as_str()) && names.contains(&b.as_str()))
            .collect();
        let mut detail = String::new();
        for ((a, b), (file, line)) in in_scc.iter().take(3) {
            if !detail.is_empty() {
                detail.push_str(", ");
            }
            detail.push_str(&format!("`{a}` then `{b}` at {file}:{line}"));
        }
        let ((_, _), (file, line)) = in_scc[0];
        out.push(Violation {
            file: file.clone(),
            line: *line,
            rule: Rule::LockOrder,
            message: format!(
                "lock classes {{{}}} are acquired in inconsistent orders ({detail}); \
                 pick one global order and stick to it or the paths can deadlock",
                names.join(", ")
            ),
        });
    }
    out
}

/// Kosaraju SCC over a small adjacency list; returns components with nodes
/// sorted, components ordered by smallest member.
fn kosaraju(adj: &[Vec<usize>]) -> Vec<Vec<usize>> {
    let n = adj.len();
    let mut order = Vec::with_capacity(n);
    let mut seen = vec![false; n];
    for s in 0..n {
        if seen[s] {
            continue;
        }
        // Iterative post-order DFS.
        let mut stack = vec![(s, 0usize)];
        seen[s] = true;
        while let Some(&mut (v, ref mut ei)) = stack.last_mut() {
            if *ei < adj[v].len() {
                let w = adj[v][*ei];
                *ei += 1;
                if !seen[w] {
                    seen[w] = true;
                    stack.push((w, 0));
                }
            } else {
                order.push(v);
                stack.pop();
            }
        }
    }
    let mut radj: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (v, ws) in adj.iter().enumerate() {
        for &w in ws {
            radj[w].push(v);
        }
    }
    let mut comp = vec![usize::MAX; n];
    let mut comps: Vec<Vec<usize>> = Vec::new();
    for &s in order.iter().rev() {
        if comp[s] != usize::MAX {
            continue;
        }
        let id = comps.len();
        let mut members = vec![s];
        comp[s] = id;
        let mut stack = vec![s];
        while let Some(v) = stack.pop() {
            for &w in &radj[v] {
                if comp[w] == usize::MAX {
                    comp[w] = id;
                    members.push(w);
                    stack.push(w);
                }
            }
        }
        members.sort_unstable();
        comps.push(members);
    }
    comps.sort();
    comps
}

// ---------------------------------------------------------------------------
// Rule 4: no-blocking-in-par
// ---------------------------------------------------------------------------

fn par_exempt(file: &str) -> bool {
    // The pool's own machinery blocks by design (worker parking, result
    // collection); the rule polices the closures handed *to* it.
    file.starts_with("crates/par/")
}

fn lint_no_blocking_in_par(ws: &Workspace) -> Vec<Violation> {
    let n = ws.fns.len();
    // Multi-source BFS on the reverse graph from every blocking fn, giving
    // each fn its next hop toward the nearest blocking target.
    let mut pred: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (i, succs) in ws.succ.iter().enumerate() {
        for &j in succs {
            pred[j].push(i);
        }
    }
    let is_source =
        |f: &FnInfo| !par_exempt(&f.item.file) && (!f.blocking.is_empty() || !f.acqs.is_empty());
    let mut next: Vec<Option<usize>> = vec![None; n];
    let mut target: Vec<Option<usize>> = vec![None; n];
    let mut queue: Vec<usize> = Vec::new();
    for (i, f) in ws.fns.iter().enumerate() {
        if is_source(f) {
            target[i] = Some(i);
            queue.push(i);
        }
    }
    let mut qi = 0;
    while qi < queue.len() {
        let j = queue[qi];
        qi += 1;
        for &i in &pred[j] {
            if target[i].is_none() && !par_exempt(&ws.fns[i].item.file) {
                target[i] = target[j];
                next[i] = Some(j);
                queue.push(i);
            }
        }
    }

    let mut out = Vec::new();
    for (fi, f) in ws.fns.iter().enumerate() {
        if par_exempt(&f.item.file) || f.par_regions.is_empty() {
            continue;
        }
        for (entry, region) in &f.par_regions {
            // Direct blocking facts inside the closure region.
            for (tok, line, desc) in &f.blocking {
                if region.contains(tok) {
                    out.push(Violation {
                        file: f.item.file.clone(),
                        line: *line,
                        rule: Rule::NoBlockingInPar,
                        message: format!(
                            "blocking operation ({desc}) inside a `{entry}` closure; \
                             pool workers must never block or the whole batch stalls"
                        ),
                    });
                }
            }
            for a in &f.acqs {
                if region.contains(&a.tok) {
                    out.push(Violation {
                        file: f.item.file.clone(),
                        line: a.line,
                        rule: Rule::NoBlockingInPar,
                        message: format!(
                            "lock `{}` acquired inside a `{entry}` closure; \
                             lock waits are unbounded and stall the pool",
                            a.class
                        ),
                    });
                }
            }
            // Calls that transitively reach a blocking fn.
            let mut reported: BTreeSet<usize> = BTreeSet::new();
            for c in &f.calls {
                if !region.contains(&c.tok) || !reported.insert(c.tok) {
                    continue;
                }
                let ids = ws.resolve_in(fi, &c.callee);
                let Some(&g0) = ids.iter().find(|&&g| target[g].is_some()) else {
                    continue;
                };
                // Render the path g0 → … → blocking target.
                let mut path = vec![ws.display_name(g0)];
                let mut cur = g0;
                while let Some(nx) = next[cur] {
                    path.push(ws.display_name(nx));
                    cur = nx;
                }
                let t = target[g0].unwrap_or(g0);
                let tf = &ws.fns[t];
                let what = tf
                    .blocking
                    .first()
                    .map(|(_, _, d)| d.clone())
                    .or_else(|| tf.acqs.first().map(|a| format!("lock `{}` wait", a.class)))
                    .unwrap_or_else(|| "blocking operation".to_string());
                out.push(Violation {
                    file: f.item.file.clone(),
                    line: c.line,
                    rule: Rule::NoBlockingInPar,
                    message: format!(
                        "call inside a `{entry}` closure reaches a blocking operation \
                         ({what} in `{}` at {}:{}) via {}",
                        ws.display_name(t),
                        tf.item.file,
                        tf.item.line,
                        path.join(" → "),
                    ),
                });
            }
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Entry point
// ---------------------------------------------------------------------------

/// Runs the four workspace semantic rules over the lexed files
/// (`(workspace-relative path, lexed)` pairs), honouring per-line
/// `// xlint: allow(rule)` markers.
pub(crate) fn lint_semantic(files: &[(String, Lexed)]) -> Vec<Violation> {
    let ws = build(files);
    let mut out = Vec::new();
    out.extend(lint_epoch(&ws));
    out.extend(lint_epoch_on_commit(&ws));
    out.extend(lint_wal(&ws));
    out.extend(lint_lock_order(&ws));
    out.extend(lint_no_blocking_in_par(&ws));
    let by_file: BTreeMap<&str, &Lexed> = files
        .iter()
        .map(|(rel, lexed)| (rel.as_str(), lexed))
        .collect();
    out.retain(|v| {
        by_file
            .get(v.file.as_str())
            .is_none_or(|lexed| !rules::allowed(lexed, v.line, v.rule))
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn run(files: &[(&str, &str)]) -> Vec<Violation> {
        let lexed: Vec<(String, Lexed)> =
            files.iter().map(|(p, s)| (p.to_string(), lex(s))).collect();
        lint_semantic(&lexed)
    }

    #[test]
    fn epoch_bump_direct_and_transitive() {
        let missing = run(&[(
            "crates/rdf/src/store.rs",
            "pub struct TripleStore;\n\
             impl TripleStore {\n\
                 pub fn insert(&mut self, t: u64) { self.raw_insert(t); }\n\
                 fn raw_insert(&mut self, t: u64) {}\n\
             }",
        )]);
        assert_eq!(missing.len(), 1);
        assert_eq!(missing[0].rule, Rule::EpochBumpOnMutate);
        assert_eq!(missing[0].line, 3);

        // A transitive caller → helper → bump path satisfies the rule.
        let ok = run(&[(
            "crates/rdf/src/store.rs",
            "pub struct TripleStore;\n\
             impl TripleStore {\n\
                 pub fn insert(&mut self, t: u64) { self.raw_insert(t); }\n\
                 fn raw_insert(&mut self, t: u64) { self.touch(); }\n\
                 fn touch(&mut self) { clock().bump(Domain::Triples); }\n\
             }",
        )]);
        assert!(ok.is_empty(), "{ok:?}");
    }

    #[test]
    fn epoch_bump_all_counts_and_allow_suppresses() {
        let ok = run(&[(
            "crates/tagging/src/store.rs",
            "pub struct TagStore;\n\
             impl TagStore {\n\
                 pub fn add(&mut self) { clock().bump_all(); }\n\
             }",
        )]);
        assert!(ok.is_empty());
        let allowed = run(&[(
            "crates/tagging/src/store.rs",
            "pub struct TagStore;\n\
             impl TagStore {\n\
                 // dictionary-only; no observable state change -- xlint: allow(epoch-bump-on-mutate)\n\
                 pub fn intern(&mut self) {}\n\
             }",
        )]);
        assert!(allowed.is_empty(), "{allowed:?}");
    }

    #[test]
    fn tx_commit_must_reach_a_bump() {
        // `publish` iterates a `&[Domain]` parameter — the domain-variable
        // `clk.bump(d)` counts, and `commit` reaches it through the
        // crate-local `committer.publish(…)` edge.
        let ok = run(&[(
            "crates/tx/src/lib.rs",
            "pub struct Mvcc;\npub struct Committer;\n\
             impl Mvcc {\n\
                 pub fn commit(&self, domains: &[Domain]) { let committer = self.begin(); committer.publish(domains); }\n\
                 pub fn begin(&self) -> Committer { Committer }\n\
             }\n\
             impl Committer {\n\
                 pub fn publish(self, domains: &[Domain]) { for d in domains { clk.bump(d); } }\n\
             }",
        )]);
        assert!(
            ok.iter().all(|v| v.rule != Rule::EpochBumpOnCommit),
            "{ok:?}"
        );

        let bad = run(&[(
            "crates/tx/src/lib.rs",
            "pub struct Mvcc;\n\
             impl Mvcc {\n\
                 pub fn commit(&self, domains: &[Domain]) { self.swap(); }\n\
                 fn swap(&self) {}\n\
             }",
        )]);
        let hits: Vec<&Violation> = bad
            .iter()
            .filter(|v| v.rule == Rule::EpochBumpOnCommit)
            .collect();
        assert_eq!(hits.len(), 1, "{bad:?}");
        assert_eq!(hits[0].line, 3);
        assert!(hits[0].message.contains("Mvcc::commit"));
    }

    #[test]
    fn tx_lock_fields_join_the_lock_order_graph() {
        // The tx cell's fields are ordinary lock classes: an inconsistent
        // order against another class is a cycle like any other, including
        // through the `read_lock`/`write_lock` poison-proof helpers.
        let v = run(&[(
            "crates/tx/src/lib.rs",
            "pub struct Mvcc { current: RwLock<V>, writer: Mutex<u64> }\n\
             impl Mvcc {\n\
                 pub fn a(&self) { let w = lock(&self.writer); let c = write_lock(&self.current); }\n\
                 pub fn b(&self) { let c = read_lock(&self.current); let w = lock(&self.writer); }\n\
             }",
        )]);
        let lo: Vec<&Violation> = v.iter().filter(|v| v.rule == Rule::LockOrder).collect();
        assert_eq!(lo.len(), 1, "{v:?}");
        assert!(lo[0].message.contains("current"));
        assert!(lo[0].message.contains("writer"));
    }

    #[test]
    fn wal_missing_and_misordered() {
        let base = "pub struct Database;\n\
                    impl Database {\n\
                        fn wal_commit(&mut self) {}\n\
                        pub fn good(&mut self) { self.wal_commit(); self.rows.insert(1); clock().bump(Domain::Relational); }\n";
        let missing = run(&[(
            "crates/relstore/src/db.rs",
            &format!(
                "{base}    pub fn bad(&mut self) {{ self.rows.insert(2); clock().bump(Domain::Relational); }}\n}}"
            ),
        )]);
        let wal: Vec<&Violation> = missing
            .iter()
            .filter(|v| v.rule == Rule::WalBeforeWrite)
            .collect();
        assert_eq!(wal.len(), 1, "{missing:?}");
        assert_eq!(wal[0].line, 5);

        let misordered = run(&[(
            "crates/relstore/src/db.rs",
            &format!(
                "{base}    pub fn late(&mut self) {{ self.rows.insert(2); self.wal_commit(); clock().bump(Domain::Relational); }}\n}}"
            ),
        )]);
        let wal: Vec<&Violation> = misordered
            .iter()
            .filter(|v| v.rule == Rule::WalBeforeWrite)
            .collect();
        assert_eq!(wal.len(), 1, "{misordered:?}");
        assert!(wal[0].message.contains("before its WAL append"));
    }

    #[test]
    fn lock_order_cycle_detected() {
        let v = run(&[(
            "crates/server/src/app.rs",
            "pub struct App { engine: RwLock<E>, tags: RwLock<T> }\n\
             impl App {\n\
                 fn a(&self) { let e = self.engine.write(); let t = self.tags.write(); }\n\
                 fn b(&self) { let t = self.tags.read(); let e = self.engine.read(); }\n\
             }",
        )]);
        let lo: Vec<&Violation> = v.iter().filter(|v| v.rule == Rule::LockOrder).collect();
        assert_eq!(lo.len(), 1, "{v:?}");
        assert!(lo[0].message.contains("engine"));
        assert!(lo[0].message.contains("tags"));
    }

    #[test]
    fn lock_order_consistent_is_clean_and_interprocedural_cycle_fires() {
        let clean = run(&[(
            "crates/server/src/app.rs",
            "pub struct App { engine: RwLock<E>, tags: RwLock<T> }\n\
             impl App {\n\
                 fn a(&self) { let e = self.engine.write(); let t = self.tags.write(); }\n\
                 fn b(&self) { let e = self.engine.read(); let t = self.tags.read(); }\n\
             }",
        )]);
        assert!(clean.iter().all(|v| v.rule != Rule::LockOrder), "{clean:?}");

        // b holds tags and calls helper() which takes engine → cycle with a.
        let v = run(&[(
            "crates/server/src/app.rs",
            "pub struct App { engine: RwLock<E>, tags: RwLock<T> }\n\
             impl App {\n\
                 fn a(&self) { let e = self.engine.write(); let t = self.tags.write(); }\n\
                 fn b(&self) { let t = self.tags.read(); self.helper(); }\n\
                 fn helper(&self) { let e = self.engine.read(); }\n\
             }",
        )]);
        assert!(v.iter().any(|v| v.rule == Rule::LockOrder), "{v:?}");
    }

    #[test]
    fn blocking_in_par_direct_and_transitive() {
        let v = run(&[(
            "crates/rank/src/solve.rs",
            "fn f(pool: &Pool, data: &mut [f64]) {\n\
                 pool.par_chunks_mut(data, 64, |chunk| {\n\
                     file.sync_all();\n\
                 });\n\
             }",
        )]);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, Rule::NoBlockingInPar);
        assert_eq!(v[0].line, 3);

        let transitive = run(&[(
            "crates/rank/src/solve.rs",
            "fn f(pool: &Pool, data: &mut [f64]) {\n\
                 pool.par_chunks_mut(data, 64, |chunk| { persist(chunk); });\n\
             }\n\
             fn persist(c: &mut [f64]) { std::fs::write(\"x\", b\"y\"); }",
        )]);
        assert_eq!(transitive.len(), 1, "{transitive:?}");
        assert!(transitive[0].message.contains("persist"));

        // Pure closures are clean.
        let clean = run(&[(
            "crates/rank/src/solve.rs",
            "fn f(pool: &Pool, data: &mut [f64]) {\n\
                 pool.par_chunks_mut(data, 64, |chunk| { for x in chunk { *x += 1.0; } });\n\
             }",
        )]);
        assert!(clean.is_empty(), "{clean:?}");
    }

    #[test]
    fn par_crate_itself_is_exempt() {
        let v = run(&[(
            "crates/par/src/lib.rs",
            "impl Pool {\n\
                 pub fn scope(&self, f: F) { let s = lock(&self.state); s.wait(); }\n\
             }",
        )]);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn lock_classes_discovered_through_wrappers() {
        let classes = discover_lock_classes(&[(
            "a.rs".to_string(),
            lex(
                "struct S { shards: Vec<Mutex<Shard>>, tables: std::sync::RwLock<T> }\n\
                 static REGISTRY: Mutex<Reg> = Mutex::new(Reg);\n\
                 fn lock<T>(m: &Mutex<T>) {}",
            ),
        )]);
        let names: Vec<&str> = classes.iter().map(String::as_str).collect();
        assert_eq!(names, vec!["REGISTRY", "shards", "tables"]);
    }
}
