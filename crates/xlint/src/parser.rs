//! Item-level parsing on top of the token stream: just enough structure to
//! build a workspace symbol table and an approximate call graph.
//!
//! The parser extracts `fn` items (free functions and `impl` methods, with
//! receiver and visibility), their body token ranges, and — from any body
//! range — the call sites within it. It is resolutely approximate: no type
//! inference, no name resolution beyond textual paths. The semantic rules
//! built on it (see [`crate::semantic`]) are designed so that this
//! approximation errs toward silence for ambiguous method names and toward
//! noise only where a per-line `// xlint: allow(...)` marker can document
//! the exception.

use crate::lexer::{Tok, TokKind};
use std::ops::Range;

/// One `fn` item found in a file.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// Workspace-relative path of the defining file.
    pub file: String,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Function name.
    pub name: String,
    /// Enclosing `impl` type name, if any (`impl Database { fn f … }` →
    /// `Some("Database")`; trait impls record the *type*, not the trait).
    pub owner: Option<String>,
    /// True for unrestricted `pub` (not `pub(crate)` / `pub(super)`).
    pub is_pub: bool,
    /// True when the receiver is `&mut self` (the only receiver shape the
    /// mutation rules care about).
    pub takes_mut_self: bool,
    /// Token index range of the body (between the braces). Empty for
    /// bodyless declarations (trait methods, extern fns).
    pub body: Range<usize>,
    /// True when the item sits inside a `#[cfg(test)]` region.
    pub in_test: bool,
}

/// What a call site invokes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Callee {
    /// `recv.name(…)` — `recv` is the identifier directly before the final
    /// `.`, when there is one (`self.db.execute(…)` → `Some("db")`;
    /// chained `a().b(…)` → `None`).
    Method {
        /// Method name.
        name: String,
        /// Identifier immediately preceding the last `.`, if any.
        recv: Option<String>,
    },
    /// `path::name(…)` or bare `name(…)`.
    Free {
        /// Leading path segments (`a::b::f(…)` → `["a", "b"]`).
        path: Vec<String>,
        /// Final segment (the function name).
        name: String,
    },
}

/// One call site inside a body range.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// What is being called.
    pub callee: Callee,
    /// Token index of the callee name.
    pub tok: usize,
    /// 1-based source line.
    pub line: u32,
    /// Token index range of the argument list (between the parens).
    pub args: Range<usize>,
}

/// Keywords that look like `name(` but are not calls.
const NON_CALL_KEYWORDS: &[&str] = &[
    "if", "while", "for", "match", "loop", "return", "fn", "move", "unsafe", "as", "in", "let",
    "else", "where", "impl", "dyn", "ref", "mut", "pub", "use", "box",
];

fn is_ident(tokens: &[Tok], i: usize, s: &str) -> bool {
    tokens
        .get(i)
        .is_some_and(|t| t.kind == TokKind::Ident && t.text == s)
}

fn is_punct(tokens: &[Tok], i: usize, c: char) -> bool {
    tokens.get(i).is_some_and(|t| t.kind == TokKind::Punct(c))
}

fn ident_text(tokens: &[Tok], i: usize) -> Option<&str> {
    tokens.get(i).and_then(|t| {
        if t.kind == TokKind::Ident {
            Some(t.text.as_str())
        } else {
            None
        }
    })
}

/// Next token index at or after `i` that is not a doc comment.
fn skip_docs(tokens: &[Tok], mut i: usize) -> usize {
    while matches!(
        tokens.get(i).map(|t| &t.kind),
        Some(TokKind::DocOuter | TokKind::DocInner)
    ) {
        i += 1;
    }
    i
}

/// For every `{` token, the index of its matching `}` (or `tokens.len()`
/// when unbalanced — degrade, don't panic).
pub(crate) fn brace_matches(tokens: &[Tok]) -> Vec<usize> {
    let mut out = vec![usize::MAX; tokens.len()];
    let mut stack = Vec::new();
    for (i, t) in tokens.iter().enumerate() {
        match t.kind {
            TokKind::Punct('{') => stack.push(i),
            TokKind::Punct('}') => {
                if let Some(open) = stack.pop() {
                    out[open] = i;
                }
            }
            _ => {}
        }
    }
    for open in stack {
        out[open] = tokens.len();
    }
    out
}

/// Walks back from the token before `fn_ix` over modifier keywords to decide
/// whether the item is unrestricted-`pub`.
fn is_pub_at(tokens: &[Tok], fn_ix: usize) -> bool {
    let mut j = fn_ix;
    while j > 0 {
        j -= 1;
        match &tokens[j].kind {
            TokKind::Ident => match tokens[j].text.as_str() {
                "unsafe" | "async" | "const" | "extern" => continue,
                "pub" => return !is_punct(tokens, j + 1, '('),
                _ => return false,
            },
            // `extern "C" fn` carries a Str between extern and fn.
            TokKind::Str => continue,
            // `pub(crate) fn` walks back over the `(crate)` group.
            TokKind::Punct(')') => {
                let mut depth = 1;
                while j > 0 && depth > 0 {
                    j -= 1;
                    match tokens[j].kind {
                        TokKind::Punct(')') => depth += 1,
                        TokKind::Punct('(') => depth -= 1,
                        _ => {}
                    }
                }
                // Restricted visibility (or a stray paren): not plain pub.
                return false;
            }
            _ => return false,
        }
    }
    false
}

/// Parses the `impl` header starting at `impl_ix`, returning the
/// self-type name and the index of the opening `{` (None for `impl … ;`
/// or an unterminated header).
fn parse_impl_header(tokens: &[Tok], impl_ix: usize) -> Option<(String, usize)> {
    let mut j = impl_ix + 1;
    let mut angle = 0i32;
    let mut last: Option<String> = None;
    let mut frozen = false; // stop collecting once `where` is seen
    while j < tokens.len() {
        match &tokens[j].kind {
            TokKind::Punct('<') => angle += 1,
            TokKind::Punct('>') => angle -= 1,
            TokKind::Punct('{') if angle <= 0 => {
                return last.map(|name| (name, j));
            }
            TokKind::Punct(';') if angle <= 0 => return None,
            TokKind::Ident if angle <= 0 && !frozen => match tokens[j].text.as_str() {
                // `impl Trait for Type`: the type comes after `for`.
                "for" => last = None,
                "where" => frozen = true,
                "dyn" | "mut" | "const" => {}
                other => last = Some(other.to_string()),
            },
            _ => {}
        }
        j += 1;
    }
    None
}

/// Extracts every `fn` item from a lexed file. `mask[i]` marks tokens in
/// `#[cfg(test)]` regions (see `rules::test_region_mask`).
pub fn parse_items(file: &str, tokens: &[Tok], mask: &[bool]) -> Vec<FnItem> {
    let closes = brace_matches(tokens);
    let mut items = Vec::new();
    // Stack of (impl type name, index of the impl block's closing brace).
    let mut impls: Vec<(String, usize)> = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        while impls.last().is_some_and(|(_, close)| i > *close) {
            impls.pop();
        }
        if is_ident(tokens, i, "impl") {
            if let Some((name, open)) = parse_impl_header(tokens, i) {
                impls.push((name, closes[open]));
                i = open + 1;
                continue;
            }
        }
        if is_ident(tokens, i, "fn") {
            let name_ix = skip_docs(tokens, i + 1);
            if let Some(name) = ident_text(tokens, name_ix) {
                let item = parse_fn(tokens, &closes, i, name_ix, name, file, mask, &impls);
                items.push(item);
                // Keep scanning from just past the name: nested `fn` items
                // inside this body are their own (reachable-by-name) items.
                i = name_ix + 1;
                continue;
            }
        }
        i += 1;
    }
    items
}

#[allow(clippy::too_many_arguments)]
fn parse_fn(
    tokens: &[Tok],
    closes: &[usize],
    fn_ix: usize,
    name_ix: usize,
    name: &str,
    file: &str,
    mask: &[bool],
    impls: &[(String, usize)],
) -> FnItem {
    // Scan the signature: find the parameter list, inspect the receiver,
    // then find the body `{` (or a `;` for bodyless declarations).
    let mut j = name_ix + 1;
    let mut angle = 0i32;
    // Skip generics to the opening paren.
    while j < tokens.len() {
        match tokens[j].kind {
            TokKind::Punct('<') => angle += 1,
            TokKind::Punct('>') => angle -= 1,
            TokKind::Punct('(') if angle <= 0 => break,
            TokKind::Punct('{' | ';') if angle <= 0 => break,
            _ => {}
        }
        j += 1;
    }
    let mut takes_mut_self = false;
    let mut params_end = j;
    if is_punct(tokens, j, '(') {
        // Match the parens.
        let mut depth = 0i32;
        let mut k = j;
        while k < tokens.len() {
            match tokens[k].kind {
                TokKind::Punct('(') => depth += 1,
                TokKind::Punct(')') => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            k += 1;
        }
        params_end = k;
        // Receiver: `&self`, `&'a self`, `&mut self`, `self`, `mut self`.
        let mut r = j + 1;
        let mut saw_amp = false;
        let mut saw_mut = false;
        while r < tokens.len() && r <= j + 4 {
            match &tokens[r].kind {
                TokKind::Punct('&') => saw_amp = true,
                TokKind::Lifetime => {}
                TokKind::Ident if tokens[r].text == "mut" => saw_mut = true,
                TokKind::Ident if tokens[r].text == "self" => {
                    takes_mut_self = saw_amp && saw_mut;
                    break;
                }
                _ => break,
            }
            r += 1;
        }
    }
    // Find the body opener (skip return type / where clause).
    let mut b = params_end;
    let mut body = 0..0;
    while b < tokens.len() {
        match tokens[b].kind {
            TokKind::Punct('{') => {
                body = (b + 1)..closes[b].min(tokens.len());
                break;
            }
            TokKind::Punct(';') => break,
            _ => {}
        }
        b += 1;
    }
    let owner = impls.last().map(|(n, _)| n.clone());
    FnItem {
        file: file.to_string(),
        line: tokens[fn_ix].line,
        name: name.to_string(),
        owner,
        is_pub: is_pub_at(tokens, fn_ix),
        takes_mut_self,
        body,
        in_test: mask.get(fn_ix).copied().unwrap_or(false),
    }
}

/// Extracts call sites from a token range. Macro invocations (`name!(…)`)
/// are not calls; keywords followed by parens are excluded.
pub fn call_sites(tokens: &[Tok], range: Range<usize>) -> Vec<CallSite> {
    let mut out = Vec::new();
    for i in range.clone() {
        let Some(name) = ident_text(tokens, i) else {
            continue;
        };
        if !is_punct(tokens, i + 1, '(') || NON_CALL_KEYWORDS.contains(&name) {
            continue;
        }
        // Argument extent.
        let mut depth = 0i32;
        let mut k = i + 1;
        let mut args_end = range.end;
        while k < range.end {
            match tokens[k].kind {
                TokKind::Punct('(') => depth += 1,
                TokKind::Punct(')') => {
                    depth -= 1;
                    if depth == 0 {
                        args_end = k;
                        break;
                    }
                }
                _ => {}
            }
            k += 1;
        }
        let args = (i + 2)..args_end;
        let callee = if i > 0 && is_punct(tokens, i - 1, '.') {
            let recv = if i >= 2 {
                ident_text(tokens, i - 2).map(str::to_string)
            } else {
                None
            };
            Callee::Method {
                name: name.to_string(),
                recv,
            }
        } else if i >= 2 && is_punct(tokens, i - 1, ':') && is_punct(tokens, i - 2, ':') {
            // Walk the `a::b::name` path backwards.
            let mut path = Vec::new();
            let mut p = i;
            while p >= 2 && is_punct(tokens, p - 1, ':') && is_punct(tokens, p - 2, ':') {
                if let Some(seg) = ident_text(tokens, p.wrapping_sub(3)) {
                    path.push(seg.to_string());
                    p -= 3;
                } else {
                    break;
                }
            }
            path.reverse();
            Callee::Free {
                path,
                name: name.to_string(),
            }
        } else {
            Callee::Free {
                path: Vec::new(),
                name: name.to_string(),
            }
        };
        out.push(CallSite {
            callee,
            tok: i,
            line: tokens[i].line,
            args,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::rules::test_region_mask;

    fn items(src: &str) -> Vec<FnItem> {
        let lexed = lex(src);
        let mask = test_region_mask(&lexed.tokens);
        parse_items("t.rs", &lexed.tokens, &mask)
    }

    #[test]
    fn free_and_method_items() {
        let src = "pub fn free() {}\n\
                   struct S;\n\
                   impl S {\n\
                       pub fn m(&mut self, x: u32) -> u32 { x }\n\
                       fn private(&self) {}\n\
                       pub(crate) fn scoped(&mut self) {}\n\
                   }\n\
                   impl std::fmt::Display for S {\n\
                       fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result { Ok(()) }\n\
                   }\n";
        let its = items(src);
        let by_name: Vec<(&str, Option<&str>, bool, bool)> = its
            .iter()
            .map(|i| {
                (
                    i.name.as_str(),
                    i.owner.as_deref(),
                    i.is_pub,
                    i.takes_mut_self,
                )
            })
            .collect();
        assert_eq!(
            by_name,
            vec![
                ("free", None, true, false),
                ("m", Some("S"), true, true),
                ("private", Some("S"), false, false),
                ("scoped", Some("S"), false, true),
                ("fmt", Some("S"), false, false),
            ]
        );
    }

    #[test]
    fn impl_for_records_the_type_not_the_trait() {
        let its = items("impl Clone for Widget { fn clone(&self) -> Widget { todo!() } }");
        assert_eq!(its[0].owner.as_deref(), Some("Widget"));
    }

    #[test]
    fn generic_impl_and_where_clause() {
        let src = "impl<T: Ord> Store<T> where T: Clone {\n\
                       pub fn push(&mut self, t: T) {}\n\
                   }";
        let its = items(src);
        assert_eq!(its[0].owner.as_deref(), Some("Store"));
        assert!(its[0].takes_mut_self);
    }

    #[test]
    fn bodies_and_test_regions() {
        let src = "fn a() { inner(); }\n\
                   #[cfg(test)]\nmod tests {\n    fn t() {}\n}";
        let its = items(src);
        assert!(!its[0].in_test);
        assert!(its[1].in_test);
        assert!(!its[0].body.is_empty());
    }

    #[test]
    fn call_site_shapes() {
        let src = "fn f() { g(); a::b::h(1); self.db.execute(q); x.lock(); chain().next(); }";
        let lexed = lex(src);
        let mask = test_region_mask(&lexed.tokens);
        let its = parse_items("t.rs", &lexed.tokens, &mask);
        let calls = call_sites(&lexed.tokens, its[0].body.clone());
        let shapes: Vec<String> = calls
            .iter()
            .map(|c| match &c.callee {
                Callee::Free { path, name } => format!("free:{}:{name}", path.join("::")),
                Callee::Method { name, recv } => {
                    format!("method:{}:{name}", recv.as_deref().unwrap_or("?"))
                }
            })
            .collect();
        assert_eq!(
            shapes,
            vec![
                "free::g",
                "free:a::b:h",
                "method:db:execute",
                "method:x:lock",
                "free::chain",
                "method:?:next",
            ]
        );
    }

    #[test]
    fn nested_fn_inside_body_is_its_own_item() {
        let its = items("fn outer() { fn inner() {} inner(); }");
        let names: Vec<&str> = its.iter().map(|i| i.name.as_str()).collect();
        assert_eq!(names, vec!["outer", "inner"]);
    }

    #[test]
    fn fn_pointer_types_are_not_items() {
        let its = items("fn f(cb: fn(u32) -> u32) -> u32 { cb(1) }");
        assert_eq!(its.len(), 1);
        assert_eq!(its[0].name, "f");
    }
}
