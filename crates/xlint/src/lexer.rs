//! A minimal Rust lexer: just enough token structure for line-accurate
//! static checks. No external crates are available in the build environment
//! (no `syn`, no `proc-macro2`), so this hand-rolls the subset of Rust's
//! lexical grammar the linter needs: comments (line, nested block, doc),
//! string/char/byte/raw-string literals, numeric literals with float
//! detection, identifiers (including raw `r#` idents), lifetimes, and
//! single-character punctuation.

use std::collections::HashMap;

/// Token classification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword.
    Ident,
    /// One punctuation character (multi-char operators appear as runs).
    Punct(char),
    /// Numeric literal; `float` is true for `1.0`, `1e3`, `2f64`, …
    Num {
        /// Whether the literal is a floating-point literal.
        float: bool,
    },
    /// String, char, or byte literal (contents not retained).
    Str,
    /// Outer doc comment (`///` or `/** */`).
    DocOuter,
    /// Inner doc comment (`//!` or `/*! */`).
    DocInner,
    /// Lifetime such as `'a` (label or lifetime position).
    Lifetime,
}

/// One lexed token with its 1-based source line.
#[derive(Debug, Clone)]
pub struct Tok {
    /// What kind of token this is.
    pub kind: TokKind,
    /// Source text for idents and numeric literals; empty for the rest.
    pub text: String,
    /// 1-based line number where the token starts.
    pub line: u32,
}

/// Lexer output: the token stream plus the per-line lint suppressions found
/// in ordinary comments (`// xlint: allow(rule-name)`).
#[derive(Debug, Default)]
pub struct Lexed {
    /// Tokens in source order.
    pub tokens: Vec<Tok>,
    /// line number → rule names allowed on that line.
    pub allows: HashMap<u32, Vec<String>>,
}

/// Lexes `source`. Unterminated constructs end the token stream early
/// rather than erroring: the linter should degrade, not crash, on files
/// that `rustc` itself would reject.
pub fn lex(source: &str) -> Lexed {
    let mut out = Lexed::default();
    let chars: Vec<char> = source.chars().collect();
    let mut i = 0usize;
    let mut line: u32 = 1;

    macro_rules! bump_line {
        ($c:expr) => {
            if $c == '\n' {
                line += 1;
            }
        };
    }

    while i < chars.len() {
        let c = chars[i];
        // Whitespace.
        if c.is_whitespace() {
            bump_line!(c);
            i += 1;
            continue;
        }
        // Comments.
        if c == '/' && i + 1 < chars.len() {
            match chars[i + 1] {
                '/' => {
                    let start_line = line;
                    let is_inner = chars.get(i + 2) == Some(&'!');
                    // `////…` is an ordinary comment, `///x` is outer doc.
                    let is_outer = chars.get(i + 2) == Some(&'/') && chars.get(i + 3) != Some(&'/');
                    let mut text = String::new();
                    while i < chars.len() && chars[i] != '\n' {
                        text.push(chars[i]);
                        i += 1;
                    }
                    if is_inner {
                        out.tokens.push(tok(TokKind::DocInner, start_line));
                    } else if is_outer {
                        out.tokens.push(tok(TokKind::DocOuter, start_line));
                    } else {
                        record_allows(&mut out, start_line, &text);
                    }
                    continue;
                }
                '*' => {
                    let start_line = line;
                    let is_inner = chars.get(i + 2) == Some(&'!');
                    // `/** x */` is outer doc; `/**/` (empty) and `/***/`
                    // (three or more stars) are ordinary comments.
                    let is_outer = chars.get(i + 2) == Some(&'*')
                        && chars.get(i + 3) != Some(&'*')
                        && chars.get(i + 3) != Some(&'/');
                    i += 2;
                    let mut depth = 1;
                    while i < chars.len() && depth > 0 {
                        if chars[i] == '/' && chars.get(i + 1) == Some(&'*') {
                            depth += 1;
                            i += 2;
                        } else if chars[i] == '*' && chars.get(i + 1) == Some(&'/') {
                            depth -= 1;
                            i += 2;
                        } else {
                            bump_line!(chars[i]);
                            i += 1;
                        }
                    }
                    if is_inner {
                        out.tokens.push(tok(TokKind::DocInner, start_line));
                    } else if is_outer {
                        out.tokens.push(tok(TokKind::DocOuter, start_line));
                    }
                    continue;
                }
                _ => {}
            }
        }
        // Raw strings and byte strings: r"…", r#"…"#, br"…", b"…".
        if c == 'r' || c == 'b' {
            let mut j = i;
            let mut prefix_ok = false;
            if c == 'b' && chars.get(j + 1) == Some(&'r') {
                j += 2;
                prefix_ok = true;
            } else if c == 'r' {
                j += 1;
                prefix_ok = true;
            } else if c == 'b' && chars.get(j + 1) == Some(&'"') {
                // b"…" is an ordinary (escaped) byte string; skip past the
                // opening quote before scanning for the closing one.
                let start_line = line;
                i = j + 2;
                i = skip_quoted(&chars, i, &mut line);
                out.tokens.push(tok(TokKind::Str, start_line));
                continue;
            }
            if prefix_ok {
                let mut hashes = 0;
                while chars.get(j + hashes) == Some(&'#') {
                    hashes += 1;
                }
                if chars.get(j + hashes) == Some(&'"') {
                    let start_line = line;
                    i = j + hashes + 1;
                    // Scan to `"` followed by `hashes` hashes.
                    'raw: while i < chars.len() {
                        if chars[i] == '"' {
                            let mut k = 0;
                            while k < hashes && chars.get(i + 1 + k) == Some(&'#') {
                                k += 1;
                            }
                            if k == hashes {
                                i += 1 + hashes;
                                break 'raw;
                            }
                        }
                        bump_line!(chars[i]);
                        i += 1;
                    }
                    out.tokens.push(tok(TokKind::Str, start_line));
                    continue;
                }
            }
        }
        // Ordinary strings.
        if c == '"' {
            let start_line = line;
            i += 1;
            i = skip_quoted(&chars, i, &mut line);
            out.tokens.push(tok(TokKind::Str, start_line));
            continue;
        }
        // Char literal vs lifetime.
        if c == '\'' {
            let next = chars.get(i + 1).copied().unwrap_or(' ');
            let after = chars.get(i + 2).copied().unwrap_or(' ');
            if (next.is_alphanumeric() || next == '_') && after != '\'' {
                // Lifetime / loop label.
                i += 1;
                while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
                out.tokens.push(tok(TokKind::Lifetime, line));
                continue;
            }
            // Char literal: 'x', '\n', '\u{1F600}'.
            let start_line = line;
            i += 1;
            if chars.get(i) == Some(&'\\') {
                i += 2;
                // \u{…}
                while i < chars.len() && chars[i] != '\'' {
                    i += 1;
                }
            } else if i < chars.len() {
                bump_line!(chars[i]);
                i += 1;
            }
            if chars.get(i) == Some(&'\'') {
                i += 1;
            }
            out.tokens.push(tok(TokKind::Str, start_line));
            continue;
        }
        // Numbers.
        if c.is_ascii_digit() {
            let start_line = line;
            let start = i;
            let hex = c == '0' && matches!(chars.get(i + 1), Some('x' | 'X' | 'b' | 'o'));
            i += 1;
            if hex {
                i += 1;
                while i < chars.len() && (chars[i].is_ascii_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
            } else {
                let mut float = false;
                while i < chars.len() {
                    let d = chars[i];
                    if d.is_ascii_digit() || d == '_' {
                        i += 1;
                    } else if d == '.'
                        && chars
                            .get(i + 1)
                            .map(|n| n.is_ascii_digit())
                            .unwrap_or(false)
                    {
                        float = true;
                        i += 1;
                    } else if (d == 'e' || d == 'E')
                        && chars
                            .get(i + 1)
                            .map(|n| n.is_ascii_digit() || *n == '+' || *n == '-')
                            .unwrap_or(false)
                    {
                        float = true;
                        i += 2;
                    } else if d.is_ascii_alphabetic() {
                        // Suffix: f32/f64 mark floats, u8 etc. stay ints.
                        let suffix_start = i;
                        while i < chars.len()
                            && (chars[i].is_ascii_alphanumeric() || chars[i] == '_')
                        {
                            i += 1;
                        }
                        let suffix: String = chars[suffix_start..i].iter().collect();
                        if suffix == "f32" || suffix == "f64" {
                            float = true;
                        }
                        break;
                    } else {
                        break;
                    }
                }
                let text: String = chars[start..i].iter().collect();
                out.tokens.push(Tok {
                    kind: TokKind::Num { float },
                    text,
                    line: start_line,
                });
                continue;
            }
            let text: String = chars[start..i].iter().collect();
            out.tokens.push(Tok {
                kind: TokKind::Num { float: false },
                text,
                line: start_line,
            });
            continue;
        }
        // Identifiers (and raw idents).
        if c.is_alphabetic() || c == '_' {
            let start_line = line;
            let mut start = i;
            if c == 'r' && chars.get(i + 1) == Some(&'#') {
                // Raw ident r#type — strip the prefix.
                start = i + 2;
                i += 2;
            }
            while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                i += 1;
            }
            let text: String = chars[start..i].iter().collect();
            out.tokens.push(Tok {
                kind: TokKind::Ident,
                text,
                line: start_line,
            });
            continue;
        }
        // Everything else: one punct per character.
        out.tokens.push(Tok {
            kind: TokKind::Punct(c),
            text: String::new(),
            line,
        });
        i += 1;
    }
    out
}

fn tok(kind: TokKind, line: u32) -> Tok {
    Tok {
        kind,
        text: String::new(),
        line,
    }
}

/// Skips past the closing `"` of an escaped string starting just after the
/// opening quote; returns the new index.
fn skip_quoted(chars: &[char], mut i: usize, line: &mut u32) -> usize {
    while i < chars.len() {
        match chars[i] {
            '\\' => {
                // A line continuation (`\` before a newline) still advances
                // the source line, or every diagnostic after the string
                // points one line too early.
                if chars.get(i + 1) == Some(&'\n') {
                    *line += 1;
                }
                i += 2;
            }
            '"' => return i + 1,
            c => {
                if c == '\n' {
                    *line += 1;
                }
                i += 1;
            }
        }
    }
    i
}

fn record_allows(out: &mut Lexed, line: u32, comment: &str) {
    // `// xlint: allow(rule-a, rule-b)` suppresses those rules on this line
    // and the next (so a marker can sit above the offending statement).
    let Some(pos) = comment.find("xlint: allow(") else {
        return;
    };
    let rest = &comment[pos + "xlint: allow(".len()..];
    let Some(end) = rest.find(')') else {
        return;
    };
    for rule in rest[..end].split(',') {
        let rule = rule.trim().to_string();
        if !rule.is_empty() {
            out.allows.entry(line).or_default().push(rule.clone());
            out.allows.entry(line + 1).or_default().push(rule);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn strings_and_comments_hide_tokens() {
        let src = r##"
            // not.unwrap() here
            let s = "call .unwrap() inside";
            let r = r#"raw .unwrap()"#;
            /* block .unwrap() /* nested */ still comment */
            real_ident
        "##;
        let ids = idents(src);
        assert!(ids.contains(&"real_ident".to_string()));
        assert!(!ids.contains(&"unwrap".to_string()));
    }

    #[test]
    fn byte_strings_consume_their_whole_body() {
        // A `b"…"` literal must be one Str token: an early return at the
        // opening quote would spill the body into the token stream (and any
        // brace inside it would desync the cfg(test) region tracker).
        let src = r#"let a = b"GET / {oops} \r\n.unwrap()"; done"#;
        let ids = idents(src);
        assert!(!ids.contains(&"unwrap".to_string()));
        assert!(!ids.contains(&"oops".to_string()));
        assert!(ids.contains(&"done".to_string()));
        let toks = lex(src).tokens;
        assert!(!toks.iter().any(|t| t.kind == TokKind::Punct('{')));
    }

    #[test]
    fn float_literals_detected() {
        let toks = lex("let x = 1.5 + 2 + 3e4 + 5f64 + 6u32 + 0x1E;").tokens;
        let floats: Vec<&str> = toks
            .iter()
            .filter(|t| matches!(t.kind, TokKind::Num { float: true }))
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(floats, vec!["1.5", "3e4", "5f64"]);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let toks = lex("fn f<'a>(x: &'a str) -> char { 'x' }").tokens;
        let lifetimes = toks.iter().filter(|t| t.kind == TokKind::Lifetime).count();
        let chars = toks.iter().filter(|t| t.kind == TokKind::Str).count();
        assert_eq!(lifetimes, 2);
        assert_eq!(chars, 1);
    }

    #[test]
    fn line_numbers_track_newlines() {
        let toks = lex("a\nb\n  c").tokens;
        let lines: Vec<u32> = toks.iter().map(|t| t.line).collect();
        assert_eq!(lines, vec![1, 2, 3]);
    }

    #[test]
    fn allow_markers_recorded() {
        let lexed = lex("x // xlint: allow(no-unwrap)\ny");
        assert!(lexed.allows[&1].contains(&"no-unwrap".to_string()));
        assert!(lexed.allows[&2].contains(&"no-unwrap".to_string()));
    }

    #[test]
    fn doc_comments_classified() {
        let lexed = lex("//! inner\n/// outer\nfn f() {}");
        assert_eq!(lexed.tokens[0].kind, TokKind::DocInner);
        assert_eq!(lexed.tokens[1].kind, TokKind::DocOuter);
    }

    #[test]
    fn empty_and_star_only_block_comments_are_not_doc() {
        // `/**/` and `/***/` are ordinary comments in Rust; only `/** x */`
        // opens an outer block doc. Misclassifying the empty form used to
        // make `/**/` count as documentation for the item below it.
        for src in ["/**/\npub fn f() {}", "/***/\npub fn f() {}"] {
            let toks = lex(src).tokens;
            assert!(
                !toks
                    .iter()
                    .any(|t| t.kind == TokKind::DocOuter || t.kind == TokKind::DocInner),
                "{src:?} produced a doc token"
            );
        }
        let toks = lex("/** real doc */\npub fn f() {}").tokens;
        assert_eq!(toks[0].kind, TokKind::DocOuter);
        let toks = lex("/*! crate doc */\npub fn f() {}").tokens;
        assert_eq!(toks[0].kind, TokKind::DocInner);
    }

    #[test]
    fn string_line_continuations_keep_line_numbers() {
        // `\` before a newline continues the string onto the next source
        // line; the newline is inside the literal but still a real line.
        let src = "let s = \"a\\\n   b\\\n   c\";\nmarker";
        let toks = lex(src).tokens;
        let marker = toks.iter().find(|t| t.text == "marker").unwrap();
        assert_eq!(marker.line, 4);
    }

    #[test]
    fn raw_strings_respect_hash_counts() {
        // With two hashes, an embedded `"#` must not terminate the literal.
        let src = "let s = r##\"has \"# inside\"##; after";
        let ids = idents(src);
        assert!(ids.contains(&"after".to_string()));
        assert!(!ids.contains(&"inside".to_string()));
        // Zero-hash raw string whose body is a lone `#`.
        let toks = lex("let s = r\"#\"; tail").tokens;
        assert!(toks.iter().any(|t| t.text == "tail"));
        assert_eq!(toks.iter().filter(|t| t.kind == TokKind::Str).count(), 1);
        // `r#ident` is a raw identifier, not the start of a raw string.
        let ids = idents("let r#type = r#match; done");
        assert!(ids.contains(&"done".to_string()));
    }

    #[test]
    fn multiline_raw_strings_and_block_comments_count_lines() {
        let src = "let s = r#\"one\ntwo\nthree\"#;\n/* a\nb */ marker";
        let toks = lex(src).tokens;
        let marker = toks.iter().find(|t| t.text == "marker").unwrap();
        assert_eq!(marker.line, 5);
    }

    #[test]
    fn tightly_nested_block_comments_close_correctly() {
        // `/*/**/*/` is a fully balanced two-deep comment; nothing inside
        // it (or of it) should leak into the token stream.
        let toks = lex("/*/**/*/ after").tokens;
        assert_eq!(toks.len(), 1);
        assert_eq!(toks[0].text, "after");
        // `/*/` opens one level without closing it: the rest is comment.
        let toks = lex("/*/ not_a_token */ visible").tokens;
        assert_eq!(toks.len(), 1);
        assert_eq!(toks[0].text, "visible");
    }
}
