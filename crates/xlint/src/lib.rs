//! `xlint` — workspace-aware static analysis for the sensormeta codebase.
//!
//! Rules (token-level; see [`rules::Rule`]):
//!
//! - **no-unwrap** — no `.unwrap()` / `.expect()` / `panic!` / `todo!` /
//!   `unimplemented!` in non-test library code.
//! - **error-impl** — every `pub enum *Error` implements `Display` and
//!   `std::error::Error`.
//! - **float-eq** — no `==`/`!=` against float literals.
//! - **as-truncation** — no narrowing `as` casts in the relstore/rdf
//!   encoding paths.
//! - **missing-docs** — public items in crate roots carry doc comments.
//! - **no-println-in-lib** — no `println!`/`print!`/`eprintln!`/`eprint!`/
//!   `dbg!` in non-test library code (`main.rs` and `src/bin/` are exempt).
//! - **no-raw-thread-spawn** — no `thread::spawn` outside `crates/par` (the
//!   worker pool) and `crates/server` (the accept loop); everything else
//!   parallelizes through the `sensormeta-par` pool.
//!
//! Semantic rules (workspace-level; item parser + cross-file call graph,
//! see the `semantic` module):
//!
//! - **epoch-bump-on-mutate** — public `&mut self` methods of the store
//!   types must transitively reach `EpochClock::bump` for their domain.
//! - **wal-before-write** — durable `Database`/`Smr` mutation paths must
//!   reach a WAL append, and reach it before the first applied write.
//! - **lock-order** — the cross-crate Mutex/RwLock acquisition graph must
//!   stay acyclic and pairwise-consistent.
//! - **no-blocking-in-par** — no fsync/file I/O/unbounded lock waits inside
//!   `Pool::scope`/`par_*` closures.
//!
//! Violations are reported rustc-style (`file:line: rule: message`).
//! A committed `xlint-baseline.toml` grandfathers pre-existing debt; the
//! baseline is a one-way ratchet (counts may only go down). Per-line
//! escapes: `// xlint: allow(rule-name)` on or directly above the line.

#![warn(missing_docs)]

pub mod baseline;
pub mod lexer;
mod parser;
pub mod rules;
mod semantic;

pub use baseline::{check, Baseline, Verdict};
pub use rules::{Rule, Violation};

use rules::FileFacts;
use std::collections::BTreeMap;
use std::fmt;
use std::path::{Path, PathBuf};

/// Lint driver failure (I/O, missing workspace, bad baseline).
#[derive(Debug)]
pub enum XlintError {
    /// Filesystem error with the path that caused it.
    Io(String, std::io::Error),
    /// No workspace root found upward from the start directory.
    NoWorkspace(PathBuf),
    /// Baseline file did not parse.
    Baseline(baseline::BaselineParseError),
}

impl fmt::Display for XlintError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            XlintError::Io(path, e) => write!(f, "{path}: {e}"),
            XlintError::NoWorkspace(start) => write!(
                f,
                "no workspace root (Cargo.toml with [workspace]) found above {}",
                start.display()
            ),
            XlintError::Baseline(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for XlintError {}

impl From<baseline::BaselineParseError> for XlintError {
    fn from(e: baseline::BaselineParseError) -> Self {
        XlintError::Baseline(e)
    }
}

/// Finds the workspace root: the nearest ancestor (including `start`)
/// whose `Cargo.toml` contains a `[workspace]` table.
pub fn find_workspace_root(start: &Path) -> Result<PathBuf, XlintError> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if manifest.is_file() {
            let text = std::fs::read_to_string(&manifest)
                .map_err(|e| XlintError::Io(manifest.display().to_string(), e))?;
            if text.contains("[workspace]") {
                return Ok(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    Err(XlintError::NoWorkspace(start.to_path_buf()))
}

/// Directory names never descended into.
const SKIP_DIRS: &[&str] = &["target", ".git", "tests", "benches", "examples", "shims"];

/// Collects the library `.rs` files to lint: `src/**` of the root package
/// and of every `crates/*` member. Integration tests, benches, and the
/// offline dependency shims are out of scope — the panic-freedom rules
/// apply to library code.
pub fn workspace_files(root: &Path) -> Result<Vec<PathBuf>, XlintError> {
    let mut files = Vec::new();
    let root_src = root.join("src");
    if root_src.is_dir() {
        collect_rs(&root_src, &mut files)?;
    }
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        let entries = std::fs::read_dir(&crates_dir)
            .map_err(|e| XlintError::Io(crates_dir.display().to_string(), e))?;
        let mut members: Vec<PathBuf> = Vec::new();
        for entry in entries {
            let entry = entry.map_err(|e| XlintError::Io(crates_dir.display().to_string(), e))?;
            let src = entry.path().join("src");
            if src.is_dir() {
                members.push(src);
            }
        }
        members.sort();
        for src in members {
            collect_rs(&src, &mut files)?;
        }
    }
    files.sort();
    Ok(files)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), XlintError> {
    let entries =
        std::fs::read_dir(dir).map_err(|e| XlintError::Io(dir.display().to_string(), e))?;
    for entry in entries {
        let entry = entry.map_err(|e| XlintError::Io(dir.display().to_string(), e))?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if !SKIP_DIRS.contains(&name.as_ref()) {
                collect_rs(&path, out)?;
            }
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// The outcome of linting a file set.
#[derive(Debug, Default)]
pub struct LintReport {
    /// All violations, sorted by file then line.
    pub violations: Vec<Violation>,
    /// Number of files scanned.
    pub files_scanned: usize,
}

/// Lints the given files. `root` anchors the workspace-relative paths used
/// in diagnostics and baseline keys.
pub fn lint_files(root: &Path, files: &[PathBuf]) -> Result<LintReport, XlintError> {
    // The error-impl rule is crate-scoped: an error enum's Display/Error
    // impls may live in a sibling module.
    let mut per_crate: BTreeMap<String, FileFacts> = BTreeMap::new();
    let mut report = LintReport::default();
    // Lexed files are kept for the workspace semantic pass, which needs the
    // whole file set to build its symbol table and call graph.
    let mut lexed_files: Vec<(String, lexer::Lexed)> = Vec::with_capacity(files.len());

    for path in files {
        let source = std::fs::read_to_string(path)
            .map_err(|e| XlintError::Io(path.display().to_string(), e))?;
        let rel = path
            .strip_prefix(root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        let crate_key = crate_of(&rel);
        let is_lib_root = rel.ends_with("src/lib.rs");
        let encoding_path =
            rel.starts_with("crates/relstore/src/") || rel.starts_with("crates/rdf/src/");
        let is_bin = rel.ends_with("src/main.rs") || rel.contains("src/bin/");
        let lexed = lexer::lex(&source);
        let facts = per_crate.entry(crate_key).or_default();
        report.violations.extend(rules::lint_tokens(
            &rel,
            &lexed,
            is_lib_root,
            encoding_path,
            is_bin,
            facts,
        ));
        report.files_scanned += 1;
        lexed_files.push((rel, lexed));
    }

    for facts in per_crate.values() {
        report.violations.extend(rules::lint_error_contracts(facts));
    }
    report
        .violations
        .extend(semantic::lint_semantic(&lexed_files));
    report
        .violations
        .sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    Ok(report)
}

/// `crates/foo/src/bar.rs` → `crates/foo`; root `src/…` → `.`.
fn crate_of(rel: &str) -> String {
    if let Some(rest) = rel.strip_prefix("crates/") {
        if let Some((name, _)) = rest.split_once('/') {
            return format!("crates/{name}");
        }
    }
    ".".to_string()
}

/// Convenience: lint the whole workspace found at or above `start`.
pub fn lint_workspace(start: &Path) -> Result<(PathBuf, LintReport), XlintError> {
    let root = find_workspace_root(start)?;
    let files = workspace_files(&root)?;
    let report = lint_files(&root, &files)?;
    Ok((root, report))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crate_of_maps_paths() {
        assert_eq!(crate_of("crates/rdf/src/store.rs"), "crates/rdf");
        assert_eq!(crate_of("src/main.rs"), ".");
    }
}
