//! The lint rules, run over the token stream of one file (plus a
//! crate-level pass for the error-type contract rule).

use crate::lexer::{Lexed, Tok, TokKind};

/// Identifies one lint rule. Rule names are stable: they appear in
/// diagnostics, in `xlint-baseline.toml` keys, and in
/// `// xlint: allow(...)` markers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Rule {
    /// `.unwrap()` / `.expect(…)` / `panic!` / `todo!` / `unimplemented!`
    /// in non-test library code.
    NoUnwrap,
    /// `==` / `!=` against a float literal.
    FloatEq,
    /// Narrowing `as` cast in the relstore/rdf encoding paths.
    AsTruncation,
    /// `pub enum *Error` without `Display` + `std::error::Error` impls.
    ErrorImpl,
    /// Undocumented `pub` item in a crate root (`lib.rs`).
    MissingDocs,
    /// `println!` / `print!` / `eprintln!` / `eprint!` / `dbg!` in non-test
    /// library code (binaries and test code may print; libraries report
    /// through return values or the obs registry).
    NoPrintlnInLib,
    /// `thread::spawn` outside the sanctioned crates (`crates/par`, which
    /// owns the worker pool, and `crates/server`, which owns the accept
    /// loop). Everything else must go through the `sensormeta-par` pool so
    /// parallelism stays bounded, instrumented and deterministic.
    NoRawThreadSpawn,
    /// Semantic: a public `&mut self` method of a store type must
    /// transitively reach an `EpochClock::bump` of its domain(s), or stale
    /// cached results will be served after the mutation.
    EpochBumpOnMutate,
    /// Semantic: every public commit/publish path of the `tx` MVCC crate
    /// must transitively reach an `EpochClock` bump — a published version
    /// that bumps nothing leaves every cache serving the previous one.
    EpochBumpOnCommit,
    /// Semantic: durable `Database`/`Smr` mutation paths must reach a WAL
    /// append (`wal_commit`) before — and not after — applying writes.
    WalBeforeWrite,
    /// Semantic: the cross-crate Mutex/RwLock acquisition graph must stay
    /// acyclic; inconsistent pairwise orderings are deadlocks in waiting.
    LockOrder,
    /// Semantic: no fsync/file I/O/unbounded lock waits inside
    /// `Pool::scope`/`par_*` closures — blocking stalls the whole pool.
    NoBlockingInPar,
}

impl Rule {
    /// Stable kebab-case name used in baselines and allow markers.
    pub fn name(self) -> &'static str {
        match self {
            Rule::NoUnwrap => "no-unwrap",
            Rule::FloatEq => "float-eq",
            Rule::AsTruncation => "as-truncation",
            Rule::ErrorImpl => "error-impl",
            Rule::MissingDocs => "missing-docs",
            Rule::NoPrintlnInLib => "no-println-in-lib",
            Rule::NoRawThreadSpawn => "no-raw-thread-spawn",
            Rule::EpochBumpOnMutate => "epoch-bump-on-mutate",
            Rule::EpochBumpOnCommit => "epoch-bump-on-commit",
            Rule::WalBeforeWrite => "wal-before-write",
            Rule::LockOrder => "lock-order",
            Rule::NoBlockingInPar => "no-blocking-in-par",
        }
    }

    /// Parses a stable rule name.
    pub fn from_name(name: &str) -> Option<Rule> {
        match name {
            "no-unwrap" => Some(Rule::NoUnwrap),
            "float-eq" => Some(Rule::FloatEq),
            "as-truncation" => Some(Rule::AsTruncation),
            "error-impl" => Some(Rule::ErrorImpl),
            "missing-docs" => Some(Rule::MissingDocs),
            "no-println-in-lib" => Some(Rule::NoPrintlnInLib),
            "no-raw-thread-spawn" => Some(Rule::NoRawThreadSpawn),
            "epoch-bump-on-mutate" => Some(Rule::EpochBumpOnMutate),
            "epoch-bump-on-commit" => Some(Rule::EpochBumpOnCommit),
            "wal-before-write" => Some(Rule::WalBeforeWrite),
            "lock-order" => Some(Rule::LockOrder),
            "no-blocking-in-par" => Some(Rule::NoBlockingInPar),
            _ => None,
        }
    }

    /// All rules, in a stable order (for `--explain` listings).
    pub fn all() -> &'static [Rule] {
        &[
            Rule::NoUnwrap,
            Rule::FloatEq,
            Rule::AsTruncation,
            Rule::ErrorImpl,
            Rule::MissingDocs,
            Rule::NoPrintlnInLib,
            Rule::NoRawThreadSpawn,
            Rule::EpochBumpOnMutate,
            Rule::EpochBumpOnCommit,
            Rule::WalBeforeWrite,
            Rule::LockOrder,
            Rule::NoBlockingInPar,
        ]
    }

    /// Longer-form rationale shown by `xlint --explain <rule>`.
    pub fn explain(self) -> &'static str {
        match self {
            Rule::NoUnwrap => {
                "Library code must not `.unwrap()`, `.expect()`, `panic!`, `todo!` or \
                 `unimplemented!` outside tests. A panic in a store or query path takes the \
                 whole server down; return a Result (or handle the None/Err case) instead. \
                 Invariants that genuinely cannot fail may be documented with \
                 `// xlint: allow(no-unwrap)` on or above the line."
            }
            Rule::FloatEq => {
                "Floats must not be compared with `==`/`!=` against literals: ranking scores \
                 and solver residuals accumulate rounding error, so exact comparison is \
                 either vacuous or flaky. Compare with an epsilon: `(x - y).abs() < 1e-9`."
            }
            Rule::AsTruncation => {
                "In the relstore/rdf encoding paths a narrowing `as` cast (`as u16`, \
                 `as u32`, …) silently truncates on-disk values. Use `try_from` and surface \
                 the error, or document the proven bound with \
                 `// xlint: allow(as-truncation)`."
            }
            Rule::ErrorImpl => {
                "Every `pub enum *Error` must implement `Display` and `std::error::Error` \
                 (in the same crate) so errors compose with `?`, `Box<dyn Error>` and log \
                 formatting at the server boundary."
            }
            Rule::MissingDocs => {
                "Public items in a crate root (`lib.rs`) need doc comments: crate roots are \
                 the workspace's API surface and `#![warn(missing_docs)]` only covers crates \
                 that opt in."
            }
            Rule::NoPrintlnInLib => {
                "Library crates must not print to stdout/stderr (`println!`, `eprintln!`, \
                 `dbg!`, …). Binaries own the terminal; libraries return data or record it \
                 in the obs metrics registry."
            }
            Rule::NoRawThreadSpawn => {
                "`thread::spawn` is sanctioned only in crates/par (the worker pool) and \
                 crates/server (the accept loop). Everything else parallelizes through the \
                 sensormeta-par pool so thread counts stay bounded and execution stays \
                 deterministic."
            }
            Rule::EpochBumpOnMutate => {
                "Workspace semantic rule. Every public `&mut self` method of a store type \
                 (relstore::Database, rdf::TripleStore, search::SearchIndex, smr::Smr, \
                 tagging::TagStore) must reach — directly or through any chain of calls — an \
                 `EpochClock::bump(Domain::…)` for that store's domain (or `bump_all`). The \
                 shared result cache is invalidated purely by epoch comparison, so a \
                 mutating path that never bumps serves stale query/search/tag results \
                 forever. The checker walks the approximate call graph, so bumping in a \
                 private helper is fine. Mutators that provably change no observable state \
                 (e.g. dictionary interning) may carry \
                 `// xlint: allow(epoch-bump-on-mutate)` with a justification."
            }
            Rule::EpochBumpOnCommit => {
                "Workspace semantic rule. Every public commit/publish entry point of the \
                 `sensormeta-tx` MVCC crate (`Mvcc::commit`, `Committer::publish`, and any \
                 future `*commit*` method) must reach — directly or through any chain of \
                 calls — an `EpochClock` bump. Snapshot validation and cache invalidation \
                 are driven purely by epoch comparison, so publishing a new version without \
                 bumping leaves every cache and live reader convinced nothing changed. \
                 Unlike epoch-bump-on-mutate, the bumped domains are usually parameters \
                 here, so any bump (named, `bump_all`, or a domain-variable `bump(d)`) \
                 satisfies the rule."
            }
            Rule::WalBeforeWrite => {
                "Workspace semantic rule. Public `&mut self` methods of `Database` and \
                 `Smr` that reach an applied write (relstore `insert`/`execute` paths) must \
                 also reach a WAL append (`wal_commit`), and within the entry method the \
                 first applied write must not precede the first WAL append. Writing pages \
                 before logging the operation makes the mutation unrecoverable after a \
                 crash. Paths that only flush already-logged state (checkpoints) may carry \
                 `// xlint: allow(wal-before-write)`."
            }
            Rule::LockOrder => {
                "Workspace semantic rule. xlint discovers lock classes (struct fields and \
                 statics of Mutex/RwLock type), tracks which locks are held across which \
                 calls, and builds the directed acquired-while-holding graph. Any cycle — \
                 including an inconsistent pairwise order like `engine then tags` in one \
                 path and `tags then engine` in another — is a deadlock in waiting once the \
                 server goes concurrent. Fix by acquiring locks in one global order."
            }
            Rule::NoBlockingInPar => {
                "Workspace semantic rule. Closures handed to the sensormeta-par pool \
                 (`scope`, `par_chunks_mut`, `par_map_collect`, `par_sum`, `pool.run`) must \
                 not block: no fsync/file I/O, no channel/condvar waits, no lock \
                 acquisitions — directly or through any call chain. A blocked worker stalls \
                 the whole deterministic batch. Hoist I/O out of the closure and keep \
                 shared state out of the hot path; crates/par itself (which implements the \
                 blocking machinery) is exempt."
            }
        }
    }
}

/// One diagnostic, formatted rustc-style by the binary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Which rule fired.
    pub rule: Rule,
    /// Human-readable reason.
    pub message: String,
}

/// A `pub enum FooError` found while linting — input to the crate-level
/// error-contract pass.
#[derive(Debug, Clone)]
pub struct ErrorEnum {
    /// Workspace-relative path of the defining file.
    pub file: String,
    /// Definition line.
    pub line: u32,
    /// Enum name.
    pub name: String,
}

/// Trait impls found in a file that matter for [`Rule::ErrorImpl`]:
/// (`trait_last_segment`, `type_name`).
pub type ImplFact = (String, String);

/// Per-file scan results feeding crate-level passes.
#[derive(Debug, Default)]
pub struct FileFacts {
    /// Public `*Error` enums defined here.
    pub error_enums: Vec<ErrorEnum>,
    /// `impl Trait for Type` facts (`Display`, `Error` traits only).
    pub impls: Vec<ImplFact>,
}

/// Computes, for each token index, whether it belongs to test-only code:
/// an item annotated `#[cfg(test)]` (typically `mod tests { … }`).
pub(crate) fn test_region_mask(tokens: &[Tok]) -> Vec<bool> {
    let mut mask = vec![false; tokens.len()];
    let mut i = 0;
    while i < tokens.len() {
        if tokens[i].kind == TokKind::Punct('#')
            && matches!(tokens.get(i + 1), Some(t) if t.kind == TokKind::Punct('['))
        {
            // Scan the attribute body for `cfg ( test`.
            let mut j = i + 2;
            let mut depth = 1;
            let mut saw_cfg = false;
            let mut saw_test = false;
            while j < tokens.len() && depth > 0 {
                match &tokens[j].kind {
                    TokKind::Punct('[') => depth += 1,
                    TokKind::Punct(']') => depth -= 1,
                    TokKind::Ident => {
                        if tokens[j].text == "cfg" {
                            saw_cfg = true;
                        } else if tokens[j].text == "test" {
                            saw_test = true;
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
            if saw_cfg && saw_test {
                // Skip any further attributes, then mask the item: either to
                // the `;` before any brace, or through the matching `}` of
                // the item's first top-level brace group.
                let item_start = i;
                let mut k = j;
                while k < tokens.len()
                    && tokens[k].kind == TokKind::Punct('#')
                    && matches!(tokens.get(k + 1), Some(t) if t.kind == TokKind::Punct('['))
                {
                    let mut depth = 1;
                    let mut m = k + 2;
                    while m < tokens.len() && depth > 0 {
                        match tokens[m].kind {
                            TokKind::Punct('[') => depth += 1,
                            TokKind::Punct(']') => depth -= 1,
                            _ => {}
                        }
                        m += 1;
                    }
                    k = m;
                }
                let mut brace_depth = 0i32;
                let mut end = k;
                while end < tokens.len() {
                    match tokens[end].kind {
                        TokKind::Punct('{') => brace_depth += 1,
                        TokKind::Punct('}') => {
                            brace_depth -= 1;
                            if brace_depth == 0 {
                                end += 1;
                                break;
                            }
                        }
                        TokKind::Punct(';') if brace_depth == 0 => {
                            end += 1;
                            break;
                        }
                        _ => {}
                    }
                    end += 1;
                }
                for m in mask.iter_mut().take(end.min(tokens.len())).skip(item_start) {
                    *m = true;
                }
                i = end;
                continue;
            }
        }
        i += 1;
    }
    mask
}

pub(crate) fn allowed(lexed: &Lexed, line: u32, rule: Rule) -> bool {
    lexed
        .allows
        .get(&line)
        .is_some_and(|rules| rules.iter().any(|r| r == rule.name()))
}

/// Runs the per-file token rules. `is_lib_root` enables [`Rule::MissingDocs`];
/// `encoding_path` enables [`Rule::AsTruncation`]; `is_bin` (a `main.rs` or
/// `src/bin/` file) exempts [`Rule::NoPrintlnInLib`].
pub fn lint_tokens(
    file: &str,
    lexed: &Lexed,
    is_lib_root: bool,
    encoding_path: bool,
    is_bin: bool,
    facts: &mut FileFacts,
) -> Vec<Violation> {
    let tokens = &lexed.tokens;
    let mask = test_region_mask(tokens);
    let mut out = Vec::new();
    // Raw thread spawning is sanctioned only where a worker/accept loop
    // legitimately lives; everywhere else must use the sensormeta-par pool.
    let thread_spawn_exempt = file.starts_with("crates/par/") || file.starts_with("crates/server/");

    let ident = |i: usize, s: &str| -> bool {
        tokens
            .get(i)
            .is_some_and(|t| t.kind == TokKind::Ident && t.text == s)
    };
    let punct =
        |i: usize, c: char| -> bool { tokens.get(i).is_some_and(|t| t.kind == TokKind::Punct(c)) };
    let is_float = |i: usize| -> bool {
        tokens
            .get(i)
            .is_some_and(|t| matches!(t.kind, TokKind::Num { float: true }))
    };

    let mut depth = 0i32;
    for i in 0..tokens.len() {
        match tokens[i].kind {
            TokKind::Punct('{') => depth += 1,
            TokKind::Punct('}') => depth -= 1,
            _ => {}
        }
        if mask[i] {
            continue;
        }
        let line = tokens[i].line;

        // -- no-unwrap ----------------------------------------------------
        if tokens[i].kind == TokKind::Ident {
            let name = tokens[i].text.as_str();
            let panic_like =
                (name == "panic" || name == "todo" || name == "unimplemented") && punct(i + 1, '!');
            let method_like = (name == "unwrap" || name == "expect")
                && punct(i + 1, '(')
                && i > 0
                && punct(i - 1, '.');
            if (panic_like || method_like) && !allowed(lexed, line, Rule::NoUnwrap) {
                let what = if panic_like {
                    format!("`{name}!` in library code")
                } else {
                    format!("`.{name}()` in library code")
                };
                out.push(Violation {
                    file: file.to_string(),
                    line,
                    rule: Rule::NoUnwrap,
                    message: format!("{what}; return a Result or handle the None/Err case"),
                });
            }
        }

        // -- no-println-in-lib --------------------------------------------
        if !is_bin && tokens[i].kind == TokKind::Ident {
            let name = tokens[i].text.as_str();
            if matches!(name, "println" | "print" | "eprintln" | "eprint" | "dbg")
                && punct(i + 1, '!')
                && !(i > 0 && punct(i - 1, '.'))
                && !allowed(lexed, line, Rule::NoPrintlnInLib)
            {
                out.push(Violation {
                    file: file.to_string(),
                    line,
                    rule: Rule::NoPrintlnInLib,
                    message: format!(
                        "`{name}!` in library code; return the data or record it in the \
                         obs registry"
                    ),
                });
            }
        }

        // -- no-raw-thread-spawn ------------------------------------------
        if !thread_spawn_exempt
            && ident(i, "thread")
            && punct(i + 1, ':')
            && punct(i + 2, ':')
            && ident(i + 3, "spawn")
            && !allowed(lexed, line, Rule::NoRawThreadSpawn)
        {
            out.push(Violation {
                file: file.to_string(),
                line,
                rule: Rule::NoRawThreadSpawn,
                message: "`thread::spawn` outside crates/par and crates/server; use the \
                          sensormeta-par pool so parallelism stays bounded and deterministic"
                    .to_string(),
            });
        }

        // -- float-eq -----------------------------------------------------
        if punct(i, '=') && punct(i + 1, '=') && !punct(i + 2, '=') {
            let prev_rel = if i > 0 {
                matches!(
                    tokens[i - 1].kind,
                    TokKind::Punct('=' | '!' | '<' | '>' | '+' | '-' | '*' | '/')
                )
            } else {
                false
            };
            if !prev_rel
                && ((i > 0 && is_float(i - 1)) || is_float(i + 2))
                && !allowed(lexed, line, Rule::FloatEq)
            {
                out.push(Violation {
                    file: file.to_string(),
                    line,
                    rule: Rule::FloatEq,
                    message: "float compared with `==`; use an epsilon comparison".to_string(),
                });
            }
        }
        if punct(i, '!')
            && punct(i + 1, '=')
            && !punct(i + 2, '=')
            && ((i > 0 && is_float(i - 1)) || is_float(i + 2))
            && !allowed(lexed, line, Rule::FloatEq)
        {
            out.push(Violation {
                file: file.to_string(),
                line,
                rule: Rule::FloatEq,
                message: "float compared with `!=`; use an epsilon comparison".to_string(),
            });
        }

        // -- as-truncation ------------------------------------------------
        if encoding_path && ident(i, "as") {
            if let Some(t) = tokens.get(i + 1) {
                if t.kind == TokKind::Ident
                    && matches!(t.text.as_str(), "u8" | "u16" | "u32" | "i8" | "i16" | "i32")
                    && !allowed(lexed, line, Rule::AsTruncation)
                {
                    out.push(Violation {
                        file: file.to_string(),
                        line,
                        rule: Rule::AsTruncation,
                        message: format!(
                            "narrowing `as {}` cast in an encoding path; use try_from or \
                             mark the bound with `// xlint: allow(as-truncation)`",
                            t.text
                        ),
                    });
                }
            }
        }

        // -- facts: pub enum *Error / impl Display|Error for T ------------
        if ident(i, "enum") && i > 0 && ident(i - 1, "pub") {
            if let Some(t) = tokens.get(i + 1) {
                if t.kind == TokKind::Ident && t.text.ends_with("Error") {
                    facts.error_enums.push(ErrorEnum {
                        file: file.to_string(),
                        line: t.line,
                        name: t.text.clone(),
                    });
                }
            }
        }
        if ident(i, "impl") {
            // Look ahead for `for` within a short window; the last path
            // segment before it names the trait, the ident after it names
            // the type.
            let mut trait_seg = None;
            let mut j = i + 1;
            let mut steps = 0;
            while j < tokens.len() && steps < 16 {
                if ident(j, "for") {
                    break;
                }
                if tokens[j].kind == TokKind::Ident {
                    trait_seg = Some(tokens[j].text.clone());
                }
                if matches!(tokens[j].kind, TokKind::Punct('{' | ';')) {
                    trait_seg = None; // inherent impl, no `for`
                    break;
                }
                j += 1;
                steps += 1;
            }
            if let (Some(trait_name), true) = (trait_seg, ident(j, "for")) {
                if trait_name == "Display" || trait_name == "Error" {
                    // Type name: last ident of the path after `for`.
                    let mut k = j + 1;
                    let mut ty = None;
                    while k < tokens.len() {
                        match &tokens[k].kind {
                            TokKind::Ident => ty = Some(tokens[k].text.clone()),
                            TokKind::Punct(':') => {}
                            _ => break,
                        }
                        k += 1;
                    }
                    if let Some(ty) = ty {
                        facts.impls.push((trait_name, ty));
                    }
                }
            }
        }

        // -- missing-docs (crate roots only) ------------------------------
        if is_lib_root
            && depth == 0
            && ident(i, "pub")
            && !punct(i + 1, '(') // pub(crate)/pub(super) is not public API
            && is_doc_item_keyword(tokens, i + 1)
            && !has_preceding_doc(tokens, i)
            && !allowed(lexed, line, Rule::MissingDocs)
        {
            let item = tokens
                .get(i + 1)
                .map(|t| t.text.clone())
                .unwrap_or_default();
            out.push(Violation {
                file: file.to_string(),
                line,
                rule: Rule::MissingDocs,
                message: format!("undocumented public `{item}` in crate root"),
            });
        }
    }
    out
}

/// Keywords whose `pub` form warrants a doc comment at the crate root.
fn is_doc_item_keyword(tokens: &[Tok], i: usize) -> bool {
    let Some(t) = tokens.get(i) else {
        return false;
    };
    if t.kind != TokKind::Ident {
        return false;
    }
    // `pub mod foo;` is exempt: its documentation lives as `//!` inner docs
    // in the module file, which `#![warn(missing_docs)]` already polices.
    matches!(
        t.text.as_str(),
        "fn" | "struct" | "enum" | "trait" | "const" | "static" | "type"
    ) || (t.text == "unsafe" || t.text == "async") && is_doc_item_keyword(tokens, i + 1)
}

/// Walks backwards from the `pub` at `i`, skipping attribute spans
/// (`#[ … ]`), to see whether an outer doc comment immediately precedes
/// the item.
fn has_preceding_doc(tokens: &[Tok], i: usize) -> bool {
    let mut j = i;
    while j > 0 {
        j -= 1;
        match tokens[j].kind {
            TokKind::DocOuter => return true,
            TokKind::Punct(']') => {
                // Skip back over the attribute to its `#`.
                let mut depth = 1;
                while j > 0 && depth > 0 {
                    j -= 1;
                    match tokens[j].kind {
                        TokKind::Punct(']') => depth += 1,
                        TokKind::Punct('[') => depth -= 1,
                        _ => {}
                    }
                }
                if j > 0 && tokens[j - 1].kind == TokKind::Punct('#') {
                    j -= 1;
                } else {
                    return false;
                }
            }
            _ => return false,
        }
    }
    false
}

/// Crate-level pass: every `pub enum *Error` needs both a `Display` and an
/// `Error` impl somewhere in the same crate.
pub fn lint_error_contracts(facts: &FileFacts) -> Vec<Violation> {
    let mut out = Vec::new();
    for e in &facts.error_enums {
        let has_display = facts
            .impls
            .iter()
            .any(|(t, ty)| t == "Display" && *ty == e.name);
        let has_error = facts
            .impls
            .iter()
            .any(|(t, ty)| t == "Error" && *ty == e.name);
        if !(has_display && has_error) {
            let missing = match (has_display, has_error) {
                (false, false) => "Display and std::error::Error impls",
                (false, true) => "a Display impl",
                (true, false) => "a std::error::Error impl",
                _ => continue,
            };
            out.push(Violation {
                file: e.file.clone(),
                line: e.line,
                rule: Rule::ErrorImpl,
                message: format!("public error enum `{}` is missing {missing}", e.name),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn lint(src: &str) -> Vec<Violation> {
        let lexed = lex(src);
        let mut facts = FileFacts::default();
        let mut v = lint_tokens("t.rs", &lexed, false, false, false, &mut facts);
        v.extend(lint_error_contracts(&facts));
        v
    }

    #[test]
    fn println_in_lib_flagged_but_bins_and_tests_exempt() {
        let v = lint("fn f() { println!(\"x\"); eprint!(\"y\"); dbg!(z); }");
        let names: Vec<_> = v.iter().map(|v| v.rule).collect();
        assert_eq!(names, vec![Rule::NoPrintlnInLib; 3]);
        // Binaries may print.
        let lexed = lex("fn main() { println!(\"x\"); }");
        let mut facts = FileFacts::default();
        assert!(lint_tokens("src/main.rs", &lexed, false, false, true, &mut facts).is_empty());
        // Test regions may print.
        let src = "fn lib() {}\n#[cfg(test)]\nmod tests {\n fn t() { println!(\"x\"); }\n}";
        assert!(lint(src).is_empty());
        // Allow marker suppresses.
        assert!(lint("fn f() { println!(\"x\"); } // xlint: allow(no-println-in-lib)").is_empty());
        // A method named like the macro is not a macro call.
        assert!(lint("fn f() { w.print(); }").is_empty());
    }

    #[test]
    fn unwrap_and_panics_flagged() {
        let v = lint("fn f() { x.unwrap(); y.expect(\"m\"); panic!(\"b\"); todo!(); }");
        let names: Vec<_> = v.iter().map(|v| v.rule).collect();
        assert_eq!(names, vec![Rule::NoUnwrap; 4]);
    }

    #[test]
    fn unwrap_or_variants_not_flagged() {
        assert!(lint("fn f() { x.unwrap_or(0); x.unwrap_or_default(); }").is_empty());
    }

    #[test]
    fn cfg_test_regions_exempt() {
        let src = "fn lib() {}\n#[cfg(test)]\nmod tests {\n fn t() { x.unwrap(); panic!(); }\n}";
        assert!(lint(src).is_empty());
    }

    #[test]
    fn allow_marker_suppresses() {
        let src = "fn f() { x.unwrap(); } // xlint: allow(no-unwrap)";
        assert!(lint(src).is_empty());
        let above = "fn f() {\n // xlint: allow(no-unwrap)\n x.unwrap();\n}";
        assert!(lint(above).is_empty());
    }

    #[test]
    fn float_eq_flagged_but_epsilon_ok() {
        let v = lint("fn f(x: f64) -> bool { x == 1.0 }");
        assert_eq!(v[0].rule, Rule::FloatEq);
        assert!(lint("fn f(x: f64) -> bool { (x - 1.0).abs() < 1e-9 }").is_empty());
        assert!(lint("fn f(x: i64) -> bool { x == 1 }").is_empty());
        assert!(lint("fn f(x: f64) -> bool { x <= 1.0 }").is_empty());
    }

    #[test]
    fn narrowing_casts_only_in_encoding_paths() {
        let src = "fn f(x: u64) -> u16 { x as u16 }";
        let lexed = lex(src);
        let mut facts = FileFacts::default();
        assert!(lint_tokens("t.rs", &lexed, false, false, false, &mut facts).is_empty());
        let v = lint_tokens("t.rs", &lexed, false, true, false, &mut facts);
        assert_eq!(v[0].rule, Rule::AsTruncation);
        // Widening casts stay legal.
        let lexed2 = lex("fn f(x: u16) -> u64 { x as u64 }");
        assert!(lint_tokens("t.rs", &lexed2, false, true, false, &mut facts).is_empty());
    }

    #[test]
    fn error_enum_contract() {
        let bad = "pub enum ParseError { Bad }";
        let v = lint(bad);
        assert_eq!(v[0].rule, Rule::ErrorImpl);
        let good = "pub enum ParseError { Bad }\n\
                    impl std::fmt::Display for ParseError { }\n\
                    impl std::error::Error for ParseError { }";
        assert!(lint(good).is_empty());
        // Non-error enums are not held to the contract.
        assert!(lint("pub enum Color { Red }").is_empty());
    }

    #[test]
    fn raw_thread_spawn_flagged_outside_sanctioned_crates() {
        let src = "fn f() { std::thread::spawn(|| {}); }";
        let v = lint(src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, Rule::NoRawThreadSpawn);
        // Bare `thread::spawn` (imported module) is also caught.
        let v = lint("use std::thread;\nfn f() { thread::spawn(|| {}); }");
        assert_eq!(v.len(), 1);
        // The pool and server crates are sanctioned.
        for exempt in ["crates/par/src/lib.rs", "crates/server/src/http.rs"] {
            let lexed = lex(src);
            let mut facts = FileFacts::default();
            assert!(
                lint_tokens(exempt, &lexed, false, false, false, &mut facts).is_empty(),
                "{exempt}"
            );
        }
        // Test regions and allow markers suppress.
        let t = "fn lib() {}\n#[cfg(test)]\nmod tests {\n fn t() { std::thread::spawn(|| {}); }\n}";
        assert!(lint(t).is_empty());
        let marked = "fn f() { std::thread::spawn(|| {}); } // xlint: allow(no-raw-thread-spawn)";
        assert!(lint(marked).is_empty());
        // `thread.spawn()` on a variable or other paths are not the std call.
        assert!(lint("fn f(thread: P) { thread.spawn(); }").is_empty());
    }

    #[test]
    fn missing_docs_on_lib_roots() {
        let src = "/// documented\npub fn a() {}\npub fn b() {}\npub(crate) fn c() {}\npub mod m;";
        let lexed = lex(src);
        let mut facts = FileFacts::default();
        let v = lint_tokens("lib.rs", &lexed, true, false, false, &mut facts);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, Rule::MissingDocs);
        assert_eq!(v[0].line, 3);
        // Attributes between doc and item are fine.
        let src2 = "/// doc\n#[derive(Debug)]\npub struct S;";
        let lexed2 = lex(src2);
        let v2 = lint_tokens("lib.rs", &lexed2, true, false, false, &mut facts);
        assert!(v2.is_empty());
    }
}
