//! CLI for the workspace linter.
//!
//! ```text
//! cargo run -p xlint -- --workspace                  # lint against baseline
//! cargo run -p xlint -- --workspace --write-baseline # tighten the ratchet
//! cargo run -p xlint -- --explain <rule>             # rule rationale
//! cargo run -p xlint -- path/to/file.rs …            # lint specific files
//! ```
//!
//! Exit codes: 0 clean, 1 new violations, 2 usage/configuration error.

use std::path::PathBuf;
use std::process::ExitCode;
use xlint::{baseline, lint_files, lint_workspace, Baseline, Rule};

const BASELINE_FILE: &str = "xlint-baseline.toml";

struct Opts {
    workspace: bool,
    write_baseline: bool,
    baseline_path: Option<PathBuf>,
    explain: Option<String>,
    files: Vec<PathBuf>,
}

fn usage() -> &'static str {
    "usage: xlint [--workspace] [--write-baseline] [--baseline PATH] [--explain RULE] [files…]\n\
     \n\
     --workspace        lint all library sources of the enclosing workspace\n\
     --write-baseline   rewrite the baseline, tightened to current counts\n\
     --baseline PATH    baseline file (default: <root>/xlint-baseline.toml)\n\
     --explain RULE     print the rationale for a rule (or `all`)\n\
     files…             lint specific files (no baseline applied)"
}

fn parse_args(args: &[String]) -> Result<Opts, String> {
    let mut opts = Opts {
        workspace: false,
        write_baseline: false,
        baseline_path: None,
        explain: None,
        files: Vec::new(),
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--workspace" => opts.workspace = true,
            "--write-baseline" => opts.write_baseline = true,
            "--baseline" => {
                let path = it.next().ok_or("--baseline needs a path")?;
                opts.baseline_path = Some(PathBuf::from(path));
            }
            "--explain" => {
                let rule = it.next().ok_or("--explain needs a rule name (or `all`)")?;
                opts.explain = Some(rule.clone());
            }
            "-h" | "--help" => return Err(usage().to_string()),
            other if other.starts_with('-') => {
                return Err(format!("unknown flag `{other}`\n{}", usage()));
            }
            file => opts.files.push(PathBuf::from(file)),
        }
    }
    if !opts.workspace && opts.files.is_empty() && opts.explain.is_none() {
        return Err(format!("nothing to lint\n{}", usage()));
    }
    Ok(opts)
}

/// Prints the rationale for one rule name, or all of them for `all`.
fn explain(name: &str) -> Result<(), String> {
    if name == "all" {
        for (i, rule) in Rule::all().iter().enumerate() {
            if i > 0 {
                println!();
            }
            println!("{}\n  {}", rule.name(), rule.explain());
        }
        return Ok(());
    }
    let rule = Rule::from_name(name).ok_or_else(|| {
        let known: Vec<&str> = Rule::all().iter().map(|r| r.name()).collect();
        format!("unknown rule `{name}`; known rules: {}", known.join(", "))
    })?;
    println!("{}\n  {}", rule.name(), rule.explain());
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    match run(&opts) {
        Ok(clean) => {
            if clean {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(1)
            }
        }
        Err(e) => {
            eprintln!("xlint: {e}");
            ExitCode::from(2)
        }
    }
}

fn run(opts: &Opts) -> Result<bool, Box<dyn std::error::Error>> {
    if let Some(name) = &opts.explain {
        explain(name)?;
        if !opts.workspace && opts.files.is_empty() {
            return Ok(true);
        }
    }
    if !opts.workspace {
        // Explicit file mode: no baseline, every violation is reported.
        let cwd = std::env::current_dir()?;
        let report = lint_files(&cwd, &opts.files)?;
        for v in &report.violations {
            println!("{}:{}: {}: {}", v.file, v.line, v.rule.name(), v.message);
        }
        println!(
            "xlint: {} file(s), {} violation(s)",
            report.files_scanned,
            report.violations.len()
        );
        return Ok(report.violations.is_empty());
    }

    let cwd = std::env::current_dir()?;
    let (root, report) = lint_workspace(&cwd)?;
    let baseline_path = opts
        .baseline_path
        .clone()
        .unwrap_or_else(|| root.join(BASELINE_FILE));

    let old = if baseline_path.is_file() {
        Baseline::parse(&std::fs::read_to_string(&baseline_path)?)?
    } else {
        Baseline::default()
    };

    if opts.write_baseline {
        // First generation accepts current debt; later runs only tighten.
        let allow_new = !baseline_path.is_file();
        let next = old.tightened(&report.violations, allow_new);
        std::fs::write(&baseline_path, next.render())?;
        println!(
            "xlint: wrote {} ({} grandfathered file:rule pair(s), {} file(s) scanned)",
            baseline_path.display(),
            next.len(),
            report.files_scanned
        );
        // Check against what was just written so dodged ratchets still fail.
        let verdict = baseline::check(&report.violations, &next);
        for v in &verdict.new_violations {
            println!("{}:{}: {}: {}", v.file, v.line, v.rule.name(), v.message);
        }
        return Ok(verdict.passed());
    }

    let verdict = baseline::check(&report.violations, &old);
    for v in &verdict.new_violations {
        println!("{}:{}: {}: {}", v.file, v.line, v.rule.name(), v.message);
    }
    for (file, rule, now, allowed) in &verdict.improvements {
        println!(
            "xlint: note: {file}: {} debt is {now}, baseline allows {allowed} — \
             run with --write-baseline to ratchet down",
            rule.name()
        );
    }
    for (file, rule, allowed) in &verdict.stale {
        println!(
            "xlint: note: {file}: {} baseline entry ({allowed}) is fully paid off — \
             run with --write-baseline to drop it",
            rule.name()
        );
    }
    println!(
        "xlint: {} file(s) scanned, {} violation(s) total, {} over baseline",
        report.files_scanned,
        report.violations.len(),
        verdict.new_violations.len()
    );
    Ok(verdict.passed())
}
