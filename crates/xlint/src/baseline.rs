//! The ratcheting baseline: grandfathered violation counts, keyed by
//! `file:rule`, stored in `xlint-baseline.toml` at the workspace root.
//!
//! Semantics: a (file, rule) pair may have at most its baselined count of
//! violations. New violations (count above baseline, or any violation in an
//! unlisted pair) fail the lint. Counts below baseline are reported as
//! ratchet opportunities; `--write-baseline` tightens the file to current
//! reality (it never raises an existing entry above its recorded count —
//! the ratchet only turns one way).

use crate::rules::{Rule, Violation};
use std::collections::BTreeMap;
use std::fmt;

/// Parsed baseline: `(file, rule) → allowed count`.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct Baseline {
    entries: BTreeMap<(String, Rule), usize>,
}

/// Baseline file syntax error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BaselineParseError {
    /// 1-based line in the baseline file.
    pub line: usize,
    /// What went wrong.
    pub reason: String,
}

impl fmt::Display for BaselineParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "baseline line {}: {}", self.line, self.reason)
    }
}

impl std::error::Error for BaselineParseError {}

impl Baseline {
    /// Parses the `xlint-baseline.toml` format: comments, a `[violations]`
    /// section header, and `"file:rule" = count` entries.
    pub fn parse(text: &str) -> Result<Baseline, BaselineParseError> {
        let mut entries = BTreeMap::new();
        for (ix, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') || line == "[violations]" {
                continue;
            }
            let err = |reason: &str| BaselineParseError {
                line: ix + 1,
                reason: reason.to_string(),
            };
            let (key, value) = line.split_once('=').ok_or_else(|| err("expected `=`"))?;
            let key = key.trim().trim_matches('"');
            let (file, rule_name) = key
                .rsplit_once(':')
                .ok_or_else(|| err("key must be \"file:rule\""))?;
            let rule = Rule::from_name(rule_name)
                .ok_or_else(|| err(&format!("unknown rule `{rule_name}`")))?;
            let count: usize = value
                .trim()
                .parse()
                .map_err(|_| err("count must be a non-negative integer"))?;
            entries.insert((file.to_string(), rule), count);
        }
        Ok(Baseline { entries })
    }

    /// Renders the baseline file.
    pub fn render(&self) -> String {
        let mut out = String::from(
            "# xlint baseline — grandfathered violation counts, keyed by file:rule.\n\
             # The ratchet only turns one way: counts may decrease (run\n\
             # `cargo run -p xlint -- --workspace --write-baseline` after paying\n\
             # down debt) but any count above its baseline fails the lint.\n\
             \n[violations]\n",
        );
        for ((file, rule), count) in &self.entries {
            if *count > 0 {
                out.push_str(&format!("\"{file}:{}\" = {count}\n", rule.name()));
            }
        }
        out
    }

    /// Allowed count for a (file, rule) pair.
    pub fn allowed(&self, file: &str, rule: Rule) -> usize {
        self.entries
            .get(&(file.to_string(), rule))
            .copied()
            .unwrap_or(0)
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no violations are grandfathered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Builds the tightened baseline from current violations: per-pair
    /// counts capped at the existing baseline (ratchet never loosens) unless
    /// the pair is new, which requires `allow_new`.
    pub fn tightened(&self, current: &[Violation], allow_new: bool) -> Baseline {
        let mut counts: BTreeMap<(String, Rule), usize> = BTreeMap::new();
        for v in current {
            *counts.entry((v.file.clone(), v.rule)).or_insert(0) += 1;
        }
        let mut entries = BTreeMap::new();
        for (key, n) in counts {
            let cap = match self.entries.get(&key) {
                Some(&old) => old,
                None if allow_new => n,
                None => 0,
            };
            let kept = n.min(cap.max(if allow_new { n } else { 0 }));
            if kept > 0 {
                entries.insert(key, kept.min(n));
            }
        }
        Baseline { entries }
    }
}

/// Outcome of checking current violations against the baseline.
#[derive(Debug, Default)]
pub struct Verdict {
    /// Violations in excess of the baseline — these fail the build. When a
    /// pair exceeds its allowance all of its violations are listed, since
    /// line-level identity is not tracked.
    pub new_violations: Vec<Violation>,
    /// (file, rule, current, baseline) pairs where debt went down.
    pub improvements: Vec<(String, Rule, usize, usize)>,
    /// Baseline entries whose file no longer has any violations at all.
    pub stale: Vec<(String, Rule, usize)>,
}

impl Verdict {
    /// True when nothing exceeds the baseline.
    pub fn passed(&self) -> bool {
        self.new_violations.is_empty()
    }
}

/// Compares current violations to the baseline.
pub fn check(current: &[Violation], baseline: &Baseline) -> Verdict {
    let mut by_key: BTreeMap<(String, Rule), Vec<&Violation>> = BTreeMap::new();
    for v in current {
        by_key.entry((v.file.clone(), v.rule)).or_default().push(v);
    }
    let mut verdict = Verdict::default();
    for ((file, rule), vs) in &by_key {
        let allowed = baseline.allowed(file, *rule);
        if vs.len() > allowed {
            verdict
                .new_violations
                .extend(vs.iter().map(|v| (*v).clone()));
        } else if vs.len() < allowed {
            verdict
                .improvements
                .push((file.clone(), *rule, vs.len(), allowed));
        }
    }
    for ((file, rule), &allowed) in &baseline.entries {
        if allowed > 0 && !by_key.contains_key(&(file.clone(), *rule)) {
            verdict.stale.push((file.clone(), *rule, allowed));
        }
    }
    verdict
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(file: &str, rule: Rule, line: u32) -> Violation {
        Violation {
            file: file.to_string(),
            line,
            rule,
            message: String::new(),
        }
    }

    #[test]
    fn parse_render_roundtrip() {
        let text = "# comment\n[violations]\n\"crates/a/src/lib.rs:no-unwrap\" = 3\n";
        let b = Baseline::parse(text).unwrap();
        assert_eq!(b.allowed("crates/a/src/lib.rs", Rule::NoUnwrap), 3);
        let again = Baseline::parse(&b.render()).unwrap();
        assert_eq!(b, again);
    }

    #[test]
    fn parse_rejects_bad_rule() {
        assert!(Baseline::parse("\"f.rs:bogus-rule\" = 1\n").is_err());
        assert!(Baseline::parse("\"f.rs:no-unwrap\" = x\n").is_err());
        assert!(Baseline::parse("no equals sign\n").is_err());
    }

    #[test]
    fn within_baseline_passes_above_fails() {
        let mut b = Baseline::default();
        b.entries.insert(("f.rs".into(), Rule::NoUnwrap), 2);
        let two = vec![v("f.rs", Rule::NoUnwrap, 1), v("f.rs", Rule::NoUnwrap, 9)];
        assert!(check(&two, &b).passed());
        let mut three = two.clone();
        three.push(v("f.rs", Rule::NoUnwrap, 12));
        let verdict = check(&three, &b);
        assert!(!verdict.passed());
        assert_eq!(verdict.new_violations.len(), 3);
    }

    #[test]
    fn unlisted_pair_fails_immediately() {
        let verdict = check(&[v("g.rs", Rule::FloatEq, 4)], &Baseline::default());
        assert!(!verdict.passed());
    }

    #[test]
    fn improvements_and_stale_reported() {
        let mut b = Baseline::default();
        b.entries.insert(("f.rs".into(), Rule::NoUnwrap), 5);
        b.entries.insert(("gone.rs".into(), Rule::FloatEq), 2);
        let verdict = check(&[v("f.rs", Rule::NoUnwrap, 1)], &b);
        assert!(verdict.passed());
        assert_eq!(
            verdict.improvements,
            vec![("f.rs".into(), Rule::NoUnwrap, 1, 5)]
        );
        assert_eq!(verdict.stale, vec![("gone.rs".into(), Rule::FloatEq, 2)]);
    }

    #[test]
    fn ratchet_never_loosens() {
        let mut b = Baseline::default();
        b.entries.insert(("f.rs".into(), Rule::NoUnwrap), 1);
        let three = vec![
            v("f.rs", Rule::NoUnwrap, 1),
            v("f.rs", Rule::NoUnwrap, 2),
            v("f.rs", Rule::NoUnwrap, 3),
        ];
        let tightened = b.tightened(&three, false);
        assert_eq!(tightened.allowed("f.rs", Rule::NoUnwrap), 1);
        let fresh = Baseline::default().tightened(&three, true);
        assert_eq!(fresh.allowed("f.rs", Rule::NoUnwrap), 3);
    }
}
