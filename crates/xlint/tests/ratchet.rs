//! End-to-end tests for the lint driver and the baseline ratchet,
//! including the acceptance criteria: the real workspace lints clean
//! against the committed `xlint-baseline.toml`, and introducing a new
//! `.unwrap()` into a library source fails the lint.

use std::fs;
use std::path::{Path, PathBuf};
use xlint::{baseline, lint_files, lint_workspace, Baseline, Rule};

/// A scratch workspace under the target-adjacent temp dir, removed on drop.
struct Scratch {
    root: PathBuf,
}

impl Scratch {
    fn new(tag: &str) -> Scratch {
        let root = std::env::temp_dir().join(format!("xlint-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&root);
        fs::create_dir_all(root.join("crates/demo/src")).unwrap();
        fs::write(
            root.join("Cargo.toml"),
            "[workspace]\nmembers = [\"crates/*\"]\n",
        )
        .unwrap();
        Scratch { root }
    }

    fn write(&self, rel: &str, contents: &str) -> PathBuf {
        let path = self.root.join(rel);
        fs::create_dir_all(path.parent().unwrap()).unwrap();
        fs::write(&path, contents).unwrap();
        path
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.root);
    }
}

const CLEAN_LIB: &str = "//! Demo crate.\n\n\
    /// Adds.\n\
    pub fn add(a: u64, b: u64) -> u64 {\n    a + b\n}\n";

#[test]
fn clean_workspace_passes_with_empty_baseline() {
    let ws = Scratch::new("clean");
    ws.write("crates/demo/src/lib.rs", CLEAN_LIB);
    let (_, report) = lint_workspace(&ws.root).unwrap();
    assert!(report.violations.is_empty(), "{:?}", report.violations);
    assert!(baseline::check(&report.violations, &Baseline::default()).passed());
}

#[test]
fn new_unwrap_fails_the_lint() {
    let ws = Scratch::new("unwrap");
    ws.write("crates/demo/src/lib.rs", CLEAN_LIB);
    let (_, before) = lint_workspace(&ws.root).unwrap();
    let committed = Baseline::default().tightened(&before.violations, true);
    assert!(baseline::check(&before.violations, &committed).passed());

    // A developer introduces a fresh `.unwrap()` in library code.
    ws.write(
        "crates/demo/src/lib.rs",
        "//! Demo crate.\n\n\
         /// Parses.\n\
         pub fn parse(s: &str) -> u64 {\n    s.parse().unwrap()\n}\n",
    );
    let (_, after) = lint_workspace(&ws.root).unwrap();
    let verdict = baseline::check(&after.violations, &committed);
    assert!(!verdict.passed(), "new unwrap must fail the ratchet");
    assert!(verdict
        .new_violations
        .iter()
        .any(|v| v.rule == Rule::NoUnwrap && v.file.ends_with("lib.rs")));
}

#[test]
fn grandfathered_debt_passes_but_growth_fails() {
    let ws = Scratch::new("ratchet");
    let dirty = "//! Demo crate.\n\n\
        /// One.\n\
        pub fn one(s: &str) -> u64 {\n    s.parse().unwrap()\n}\n";
    ws.write("crates/demo/src/lib.rs", dirty);
    let (_, before) = lint_workspace(&ws.root).unwrap();
    assert_eq!(before.violations.len(), 1);
    let committed = Baseline::default().tightened(&before.violations, true);
    assert!(baseline::check(&before.violations, &committed).passed());

    // Same debt: still passes. One more unwrap: fails.
    let grown =
        format!("{dirty}\n/// Two.\npub fn two(s: &str) -> u64 {{\n    s.parse().unwrap()\n}}\n");
    ws.write("crates/demo/src/lib.rs", &grown);
    let (_, after) = lint_workspace(&ws.root).unwrap();
    assert!(!baseline::check(&after.violations, &committed).passed());
}

#[test]
fn test_modules_and_allow_markers_are_exempt() {
    let ws = Scratch::new("exempt");
    ws.write(
        "crates/demo/src/lib.rs",
        "//! Demo crate.\n\n\
         /// Checked divide.\n\
         pub fn div(a: u64, b: u64) -> u64 {\n\
         \x20   // xlint: allow(no-unwrap)\n\
         \x20   a.checked_div(b).unwrap()\n\
         }\n\n\
         #[cfg(test)]\n\
         mod tests {\n\
         \x20   #[test]\n\
         \x20   fn t() {\n\
         \x20       \"3\".parse::<u64>().unwrap();\n\
         \x20   }\n\
         }\n",
    );
    let (_, report) = lint_workspace(&ws.root).unwrap();
    assert!(report.violations.is_empty(), "{:?}", report.violations);
}

#[test]
fn explicit_file_mode_reports_all_rules() {
    let ws = Scratch::new("files");
    let path = ws.write(
        "crates/demo/src/lib.rs",
        "//! Demo crate.\n\n\
         pub fn undocumented() {}\n\
         /// Close enough?\n\
         pub fn float_eq(x: f64) -> bool {\n    x == 0.5\n}\n",
    );
    let report = lint_files(&ws.root, &[path]).unwrap();
    let rules: Vec<Rule> = report.violations.iter().map(|v| v.rule).collect();
    assert!(rules.contains(&Rule::MissingDocs), "{rules:?}");
    assert!(rules.contains(&Rule::FloatEq), "{rules:?}");
}

#[test]
fn error_enum_without_impls_is_flagged() {
    let ws = Scratch::new("errimpl");
    ws.write(
        "crates/demo/src/lib.rs",
        "//! Demo crate.\n\n\
         /// Failure modes.\n\
         pub enum DemoError {\n    /// Boom.\n    Boom,\n}\n",
    );
    let (_, report) = lint_workspace(&ws.root).unwrap();
    assert!(report.violations.iter().any(|v| v.rule == Rule::ErrorImpl));

    // With both impls the contract is satisfied.
    ws.write(
        "crates/demo/src/lib.rs",
        "//! Demo crate.\n\n\
         /// Failure modes.\n\
         pub enum DemoError {\n    /// Boom.\n    Boom,\n}\n\n\
         impl std::fmt::Display for DemoError {\n\
         \x20   fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {\n\
         \x20       write!(f, \"boom\")\n\
         \x20   }\n\
         }\n\n\
         impl std::error::Error for DemoError {}\n",
    );
    let (_, report) = lint_workspace(&ws.root).unwrap();
    assert!(
        !report.violations.iter().any(|v| v.rule == Rule::ErrorImpl),
        "{:?}",
        report.violations
    );
}

/// The repository's own workspace must lint clean against the committed
/// baseline — this is the CI gate, run as a plain test.
#[test]
fn real_workspace_is_clean_against_committed_baseline() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root")
        .to_path_buf();
    let (found_root, report) = lint_workspace(&root).unwrap();
    assert_eq!(found_root, root);
    let text = fs::read_to_string(root.join("xlint-baseline.toml"))
        .expect("committed xlint-baseline.toml");
    let committed = Baseline::parse(&text).unwrap();
    let verdict = baseline::check(&report.violations, &committed);
    assert!(
        verdict.passed(),
        "workspace lint debt grew past the baseline:\n{}",
        verdict
            .new_violations
            .iter()
            .map(|v| format!("{}:{}: {}: {}", v.file, v.line, v.rule.name(), v.message))
            .collect::<Vec<_>>()
            .join("\n")
    );
}
