//! Fixture tests for the workspace semantic rules. Each fixture under
//! `tests/fixtures/` is a plain Rust source installed into a scratch
//! workspace at a path mirroring the real crate it stands in for (the
//! rule configs key on `crates/<name>/src/` prefixes), then linted with
//! the full driver. The seeded-violation variants assert the exact rule,
//! file and line; the known-good variants assert silence.

use std::fs;
use std::path::PathBuf;
use xlint::{lint_workspace, Rule, Violation};

/// A scratch workspace under the temp dir, removed on drop.
struct Scratch {
    root: PathBuf,
}

impl Scratch {
    fn new(tag: &str) -> Scratch {
        let root = std::env::temp_dir().join(format!("xlint-fix-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&root);
        fs::create_dir_all(&root).unwrap();
        fs::write(
            root.join("Cargo.toml"),
            "[workspace]\nmembers = [\"crates/*\"]\n",
        )
        .unwrap();
        Scratch { root }
    }

    fn install(&self, rel: &str, contents: &str) -> &Scratch {
        let path = self.root.join(rel);
        fs::create_dir_all(path.parent().unwrap()).unwrap();
        fs::write(&path, contents).unwrap();
        self
    }

    /// Lints the workspace and keeps only the four semantic rules.
    fn semantic(&self) -> Vec<Violation> {
        let (_, report) = lint_workspace(&self.root).unwrap();
        report
            .violations
            .into_iter()
            .filter(|v| {
                matches!(
                    v.rule,
                    Rule::EpochBumpOnMutate
                        | Rule::WalBeforeWrite
                        | Rule::LockOrder
                        | Rule::NoBlockingInPar
                )
            })
            .collect()
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.root);
    }
}

fn assert_only(vs: &[Violation], rule: Rule, file: &str, line: u32) {
    assert_eq!(
        vs.len(),
        1,
        "expected exactly one {} violation, got {vs:?}",
        rule.name()
    );
    assert_eq!(vs[0].rule, rule, "{vs:?}");
    assert_eq!(vs[0].file, file, "{vs:?}");
    assert_eq!(vs[0].line, line, "{vs:?}");
}

// ---------------------------------------------------------------------------
// epoch-bump-on-mutate
// ---------------------------------------------------------------------------

#[test]
fn epoch_fixture_good_is_silent() {
    let ws = Scratch::new("epoch-ok");
    ws.install(
        "crates/rdf/src/store.rs",
        include_str!("fixtures/epoch_ok.rs"),
    );
    assert!(ws.semantic().is_empty(), "{:?}", ws.semantic());
}

#[test]
fn epoch_fixture_transitive_mutation_without_bump_fires() {
    // The pub mutator writes the store through `write_triple`, a private
    // helper — the rule must walk the caller → helper → store-write chain
    // and anchor the finding on the public entry point.
    let ws = Scratch::new("epoch-bad");
    ws.install(
        "crates/rdf/src/store.rs",
        include_str!("fixtures/epoch_bad.rs"),
    );
    let vs = ws.semantic();
    assert_only(&vs, Rule::EpochBumpOnMutate, "crates/rdf/src/store.rs", 10);
    assert!(vs[0].message.contains("TripleStore::insert"), "{vs:?}");
}

// ---------------------------------------------------------------------------
// wal-before-write
// ---------------------------------------------------------------------------

#[test]
fn wal_fixture_good_is_silent() {
    let ws = Scratch::new("wal-ok");
    ws.install(
        "crates/relstore/src/db.rs",
        include_str!("fixtures/wal_ok.rs"),
    );
    assert!(ws.semantic().is_empty(), "{:?}", ws.semantic());
}

#[test]
fn wal_fixture_missing_append_fires_on_the_entry_point() {
    let ws = Scratch::new("wal-missing");
    ws.install(
        "crates/relstore/src/db.rs",
        include_str!("fixtures/wal_missing.rs"),
    );
    let vs = ws.semantic();
    assert_only(&vs, Rule::WalBeforeWrite, "crates/relstore/src/db.rs", 11);
    assert!(vs[0].message.contains("not"), "{vs:?}");
}

#[test]
fn wal_fixture_apply_before_log_fires_on_the_apply_site() {
    let ws = Scratch::new("wal-order");
    ws.install(
        "crates/relstore/src/db.rs",
        include_str!("fixtures/wal_misordered.rs"),
    );
    let vs = ws.semantic();
    assert_only(&vs, Rule::WalBeforeWrite, "crates/relstore/src/db.rs", 12);
    assert!(vs[0].message.contains("before its WAL append"), "{vs:?}");
}

// ---------------------------------------------------------------------------
// lock-order
// ---------------------------------------------------------------------------

#[test]
fn lock_fixture_consistent_order_is_silent() {
    let ws = Scratch::new("lock-ok");
    ws.install(
        "crates/cache/src/shared.rs",
        include_str!("fixtures/lock_ok.rs"),
    );
    assert!(ws.semantic().is_empty(), "{:?}", ws.semantic());
}

#[test]
fn lock_fixture_opposite_orders_fire() {
    // `forward` takes engine→tags, `backward` takes tags→engine; the
    // witness is the lexicographically-first in-cycle edge (engine then
    // tags, second acquisition in `forward`).
    let ws = Scratch::new("lock-bad");
    ws.install(
        "crates/cache/src/shared.rs",
        include_str!("fixtures/lock_bad.rs"),
    );
    let vs = ws.semantic();
    assert_only(&vs, Rule::LockOrder, "crates/cache/src/shared.rs", 14);
    assert!(vs[0].message.contains("engine"), "{vs:?}");
    assert!(vs[0].message.contains("tags"), "{vs:?}");
}

// ---------------------------------------------------------------------------
// no-blocking-in-par
// ---------------------------------------------------------------------------

#[test]
fn par_fixture_pure_compute_is_silent() {
    let ws = Scratch::new("par-ok");
    ws.install(
        "crates/rank/src/batch.rs",
        include_str!("fixtures/par_ok.rs"),
    );
    assert!(ws.semantic().is_empty(), "{:?}", ws.semantic());
}

#[test]
fn par_fixture_blocking_fires_directly_and_transitively() {
    let ws = Scratch::new("par-bad");
    ws.install(
        "crates/rank/src/batch.rs",
        include_str!("fixtures/par_bad.rs"),
    );
    let mut vs = ws.semantic();
    vs.sort_by_key(|v| v.line);
    assert_eq!(vs.len(), 2, "{vs:?}");
    // Direct: fs::read inside the scope closure.
    assert_eq!(vs[0].rule, Rule::NoBlockingInPar);
    assert_eq!(vs[0].file, "crates/rank/src/batch.rs");
    assert_eq!(vs[0].line, 9, "{vs:?}");
    assert!(vs[0].message.contains("fs::read"), "{vs:?}");
    // Transitive: the closure calls `sync_to_disk`, which hits the disk.
    assert_eq!(vs[1].rule, Rule::NoBlockingInPar);
    assert_eq!(vs[1].line, 10, "{vs:?}");
    assert!(vs[1].message.contains("sync_to_disk"), "{vs:?}");
}

// ---------------------------------------------------------------------------
// Everything-good composition
// ---------------------------------------------------------------------------

#[test]
fn all_good_fixtures_compose_into_a_silent_workspace() {
    // The four clean fixtures coexist in one workspace: cross-file symbol
    // resolution must not manufacture violations out of their interplay.
    let ws = Scratch::new("all-ok");
    ws.install(
        "crates/rdf/src/store.rs",
        include_str!("fixtures/epoch_ok.rs"),
    )
    .install(
        "crates/relstore/src/db.rs",
        include_str!("fixtures/wal_ok.rs"),
    )
    .install(
        "crates/cache/src/shared.rs",
        include_str!("fixtures/lock_ok.rs"),
    )
    .install(
        "crates/rank/src/batch.rs",
        include_str!("fixtures/par_ok.rs"),
    );
    assert!(ws.semantic().is_empty(), "{:?}", ws.semantic());
}
