//! Epoch fixture: the public mutator reaches the bump through helpers.

pub struct TripleStore {
    n: usize,
}

impl TripleStore {
    /// Inserts a triple; the helper chain ends in the required bump.
    pub fn insert(&mut self, s: u64) {
        self.write_triple(s);
    }

    fn write_triple(&mut self, s: u64) {
        self.n += s as usize;
        self.touch();
    }

    fn touch(&mut self) {
        clock().bump(Domain::Triples);
    }
}
