//! Epoch fixture: a transitive caller mutates the store through a helper
//! and no function on the path ever bumps the Triples epoch.

pub struct TripleStore {
    n: usize,
}

impl TripleStore {
    /// Inserts a triple but forgets the epoch bump (seeded violation).
    pub fn insert(&mut self, s: u64) {
        self.write_triple(s);
    }

    fn write_triple(&mut self, s: u64) {
        self.n += s as usize;
    }
}
