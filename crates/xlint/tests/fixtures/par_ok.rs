//! Par fixture: the scoped closure does pure compute only.

pub fn total(pool: &Pool, xs: &[u64]) -> u64 {
    let mut sum = 0;
    pool.scope(|s| {
        for x in xs {
            sum += add_one(*x);
        }
    });
    sum
}

fn add_one(x: u64) -> u64 {
    x + 1
}
