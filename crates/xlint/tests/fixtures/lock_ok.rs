//! Lock fixture: every path takes `engine` before `tags`.

use std::sync::Mutex;

pub struct Shared {
    engine: Mutex<u64>,
    tags: Mutex<u64>,
}

impl Shared {
    /// Reads both counters under the global order.
    pub fn both(&self) -> u64 {
        let e = self.engine.lock();
        let t = self.tags.lock();
        drop(t);
        drop(e);
        0
    }

    /// Another path in the same order.
    pub fn again(&self) -> u64 {
        let e = self.engine.lock();
        let t = self.tags.lock();
        drop(t);
        drop(e);
        1
    }
}
