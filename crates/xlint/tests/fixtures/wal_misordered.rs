//! WAL fixture: the write is applied before it is logged (seeded violation).

use std::collections::BTreeMap;

pub struct Database {
    tables: BTreeMap<u64, u64>,
}

impl Database {
    /// Applies the write first and logs it after — recovery would miss it.
    pub fn execute(&mut self, k: u64, v: u64) {
        self.tables.insert(k, v);
        self.wal_commit(k, v);
        clock().bump(Domain::Relational);
    }

    fn wal_commit(&mut self, _k: u64, _v: u64) {}
}
