//! Lock fixture: two paths take the same two locks in opposite orders.

use std::sync::Mutex;

pub struct Shared {
    engine: Mutex<u64>,
    tags: Mutex<u64>,
}

impl Shared {
    /// Takes `engine` then `tags`.
    pub fn forward(&self) -> u64 {
        let e = self.engine.lock();
        let t = self.tags.lock();
        drop(t);
        drop(e);
        0
    }

    /// Takes `tags` then `engine` (seeded violation: opposite order).
    pub fn backward(&self) -> u64 {
        let t = self.tags.lock();
        let e = self.engine.lock();
        drop(e);
        drop(t);
        1
    }
}
