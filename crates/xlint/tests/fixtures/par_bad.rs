//! Par fixture: the scoped closure blocks directly and through a helper.

pub fn flush_all(pool: &Pool, xs: &[u64]) -> u64 {
    let mut sum = 0;
    pool.scope(|s| {
        for x in xs {
            sum += *x;
        }
        let _ = std::fs::read("direct.bin");
        sync_to_disk();
    });
    sum
}

fn sync_to_disk() {
    let _ = std::fs::write("state.bin", b"x");
}
