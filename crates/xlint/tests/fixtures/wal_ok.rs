//! WAL fixture: log first, apply second, bump last.

use std::collections::BTreeMap;

pub struct Database {
    tables: BTreeMap<u64, u64>,
}

impl Database {
    /// Applies one write, WAL first.
    pub fn execute(&mut self, k: u64, v: u64) {
        self.wal_commit(k, v);
        self.tables.insert(k, v);
        clock().bump(Domain::Relational);
    }

    fn wal_commit(&mut self, _k: u64, _v: u64) {}
}
