//! WAL fixture: the write path never touches the log (seeded violation).

use std::collections::BTreeMap;

pub struct Database {
    tables: BTreeMap<u64, u64>,
}

impl Database {
    /// Applies a write with no WAL append anywhere on the path.
    pub fn execute(&mut self, k: u64, v: u64) {
        self.tables.insert(k, v);
        clock().bump(Domain::Relational);
    }
}
