//! SPARQL aggregate tests: the "trends" queries the demo's tag clouds and
//! bar charts imply ("which institutions participate mostly…").

use sensormeta_rdf::{evaluate, load_turtle, parse_sparql, Term, TripleStore};

fn store() -> TripleStore {
    let mut st = TripleStore::new();
    load_turtle(
        &mut st,
        r#"
        @prefix ex: <http://e/> .
        ex:d1 ex:at ex:wfj ; ex:kind "temperature" ; ex:interval 10 .
        ex:d2 ex:at ex:wfj ; ex:kind "wind" ; ex:interval 5 .
        ex:d3 ex:at ex:wfj ; ex:kind "temperature" ; ex:interval 30 .
        ex:d4 ex:at ex:davos ; ex:kind "temperature" ; ex:interval 60 .
        ex:d5 ex:at ex:davos ; ex:kind "humidity" .
        "#,
    )
    .unwrap();
    st
}

fn run(q: &str) -> sensormeta_rdf::Solutions {
    evaluate(&store(), &parse_sparql(q).unwrap()).unwrap()
}

#[test]
fn count_star_grouped() {
    let sols = run(
        "PREFIX ex: <http://e/> SELECT ?site (COUNT(*) AS ?n) WHERE { ?d ex:at ?site } \
         GROUP BY ?site ORDER BY DESC(?n)",
    );
    assert_eq!(sols.vars, vec!["site", "n"]);
    assert_eq!(sols.len(), 2);
    assert_eq!(sols.rows[0][0], Some(Term::iri("http://e/wfj")));
    assert_eq!(sols.rows[0][1], Some(Term::int(3)));
    assert_eq!(sols.rows[1][1], Some(Term::int(2)));
}

#[test]
fn count_var_skips_unbound() {
    // interval is OPTIONAL; d5 has none → COUNT(?i) counts 4, COUNT(*) 5.
    let sols = run(
        "PREFIX ex: <http://e/> SELECT (COUNT(?i) AS ?with) (COUNT(*) AS ?all) WHERE { \
         ?d ex:at ?site . OPTIONAL { ?d ex:interval ?i } }",
    );
    assert_eq!(sols.rows[0][0], Some(Term::int(4)));
    assert_eq!(sols.rows[0][1], Some(Term::int(5)));
}

#[test]
fn count_distinct() {
    let sols =
        run("PREFIX ex: <http://e/> SELECT (COUNT(DISTINCT ?k) AS ?kinds) WHERE { ?d ex:kind ?k }");
    assert_eq!(sols.rows[0][0], Some(Term::int(3)));
}

#[test]
fn sum_avg_min_max() {
    let sols = run(
        "PREFIX ex: <http://e/> SELECT (SUM(?i) AS ?s) (AVG(?i) AS ?a) \
         (MIN(?i) AS ?lo) (MAX(?i) AS ?hi) WHERE { ?d ex:interval ?i }",
    );
    assert_eq!(sols.rows[0][0], Some(Term::int(105)));
    assert_eq!(sols.rows[0][1].as_ref().unwrap().as_number(), Some(26.25));
    assert_eq!(sols.rows[0][2].as_ref().unwrap().as_number(), Some(5.0));
    assert_eq!(sols.rows[0][3].as_ref().unwrap().as_number(), Some(60.0));
}

#[test]
fn grouped_min_max_are_per_group() {
    let sols = run(
        "PREFIX ex: <http://e/> SELECT ?site (MAX(?i) AS ?hi) WHERE { \
         ?d ex:at ?site . ?d ex:interval ?i } GROUP BY ?site ORDER BY ?site",
    );
    assert_eq!(sols.len(), 2);
    // davos first alphabetically; its only interval is 60.
    assert_eq!(sols.rows[0][1].as_ref().unwrap().as_number(), Some(60.0));
    assert_eq!(sols.rows[1][1].as_ref().unwrap().as_number(), Some(30.0));
}

#[test]
fn global_aggregate_over_empty_match() {
    let sols = run(
        "PREFIX ex: <http://e/> SELECT (COUNT(*) AS ?n) (SUM(?i) AS ?s) WHERE { \
         ?d ex:kind \"nonexistent\" . ?d ex:interval ?i }",
    );
    assert_eq!(sols.len(), 1, "global aggregate always yields one row");
    assert_eq!(sols.rows[0][0], Some(Term::int(0)));
    assert_eq!(sols.rows[0][1], None, "SUM of nothing is unbound");
}

#[test]
fn limit_applies_after_grouping() {
    let sols = run(
        "PREFIX ex: <http://e/> SELECT ?k (COUNT(*) AS ?n) WHERE { ?d ex:kind ?k } \
         GROUP BY ?k ORDER BY DESC(?n) ?k LIMIT 1",
    );
    assert_eq!(sols.len(), 1);
    assert_eq!(sols.rows[0][0], Some(Term::lit("temperature")));
    assert_eq!(sols.rows[0][1], Some(Term::int(3)));
}

#[test]
fn projected_var_must_be_grouped() {
    let err = parse_sparql(
        "PREFIX ex: <http://e/> SELECT ?site (COUNT(*) AS ?n) WHERE { ?d ex:at ?site }",
    )
    .unwrap_err();
    assert!(err.to_string().contains("GROUP BY"), "{err}");
}

#[test]
fn only_count_accepts_star() {
    assert!(parse_sparql("SELECT (SUM(*) AS ?s) WHERE { ?a ?b ?c }").is_err());
}

#[test]
fn union_combines_branches() {
    // Deployments measuring temperature OR humidity.
    let sols = run("PREFIX ex: <http://e/> SELECT ?d WHERE { ?d ex:at ?site . \
         { ?d ex:kind \"temperature\" } UNION { ?d ex:kind \"humidity\" } } ORDER BY ?d");
    assert_eq!(sols.len(), 4, "{:?}", sols.rows);
    // Three-way union.
    let sols = run("PREFIX ex: <http://e/> SELECT ?d WHERE { \
         { ?d ex:kind \"temperature\" } UNION { ?d ex:kind \"humidity\" } \
         UNION { ?d ex:kind \"wind\" } }");
    assert_eq!(sols.len(), 5);
}

#[test]
fn union_dedupes_overlapping_branches() {
    let sols = run("PREFIX ex: <http://e/> SELECT ?d WHERE { \
         { ?d ex:at ex:wfj } UNION { ?d ex:kind \"temperature\" } }");
    // wfj deployments: d1,d2,d3; temperature: d1,d3,d4 → union {d1..d4}.
    assert_eq!(sols.len(), 4);
}

#[test]
fn union_with_aggregates() {
    let sols = run("PREFIX ex: <http://e/> SELECT (COUNT(*) AS ?n) WHERE { \
         { ?d ex:kind \"temperature\" } UNION { ?d ex:kind \"wind\" } }");
    assert_eq!(sols.rows[0][0], Some(Term::int(4)));
}

#[test]
fn lonely_brace_block_is_error() {
    assert!(parse_sparql("SELECT ?d WHERE { { ?d ?p ?o } }").is_err());
}

#[test]
fn union_branch_filters_are_branch_scoped() {
    // Branch 1: high-frequency (interval ≤ 5) — only d2.
    // Branch 2: kind humidity — only d5.
    let sols = run("PREFIX ex: <http://e/> SELECT ?d WHERE { \
         { ?d ex:interval ?i . FILTER(?i <= 5) } UNION { ?d ex:kind \"humidity\" } } \
         ORDER BY ?d");
    assert_eq!(sols.len(), 2, "{:?}", sols.rows);
    // The filter must NOT leak into branch 2: d5 has no ?i at all and still
    // qualifies through the second branch.
    assert_eq!(sols.rows[1][0], Some(Term::iri("http://e/d5")));
}
