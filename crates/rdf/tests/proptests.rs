//! Property-based tests: index agreement, Turtle round-trips, and BGP
//! evaluation vs. a naive reference implementation.

use proptest::prelude::*;
use sensormeta_rdf::sparql::ast::{PatternTerm, SelectQuery, TriplePattern};
use sensormeta_rdf::{evaluate, parse_turtle, to_turtle, Term, TripleStore};
use std::collections::BTreeSet;

fn arb_term() -> impl Strategy<Value = Term> {
    prop_oneof![
        (0u8..6).prop_map(|i| Term::iri(format!("http://e/r{i}"))),
        (0u8..6).prop_map(|i| Term::lit(format!("lit{i}"))),
        (-20i64..20).prop_map(Term::int),
    ]
}

fn arb_triples() -> impl Strategy<Value = Vec<(Term, Term, Term)>> {
    prop::collection::vec((arb_term(), arb_term(), arb_term()), 0..40)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// All three index orderings answer every pattern shape identically.
    #[test]
    fn pattern_shapes_agree_with_linear_scan(triples in arb_triples()) {
        let mut st = TripleStore::new();
        for (s, p, o) in &triples {
            st.insert(s.clone(), p.clone(), o.clone());
        }
        let all = st.match_terms(None, None, None);
        let set: BTreeSet<_> = all.iter().cloned().collect();
        // Probe with every term that occurs, in every position.
        for (s, p, o) in set.iter().take(12) {
            let by_s: BTreeSet<_> = st.match_terms(Some(s), None, None).into_iter().collect();
            let want: BTreeSet<_> = set.iter().filter(|t| &t.0 == s).cloned().collect();
            prop_assert_eq!(by_s, want);
            let by_p: BTreeSet<_> = st.match_terms(None, Some(p), None).into_iter().collect();
            let want: BTreeSet<_> = set.iter().filter(|t| &t.1 == p).cloned().collect();
            prop_assert_eq!(by_p, want);
            let by_o: BTreeSet<_> = st.match_terms(None, None, Some(o)).into_iter().collect();
            let want: BTreeSet<_> = set.iter().filter(|t| &t.2 == o).cloned().collect();
            prop_assert_eq!(by_o, want);
            let by_sp: BTreeSet<_> =
                st.match_terms(Some(s), Some(p), None).into_iter().collect();
            let want: BTreeSet<_> =
                set.iter().filter(|t| &t.0 == s && &t.1 == p).cloned().collect();
            prop_assert_eq!(by_sp, want);
        }
    }

    /// Removing triples keeps every index consistent.
    #[test]
    fn removal_consistency(triples in arb_triples(), kill in prop::collection::vec(any::<prop::sample::Index>(), 0..10)) {
        let mut st = TripleStore::new();
        let mut model: BTreeSet<(Term, Term, Term)> = BTreeSet::new();
        for (s, p, o) in &triples {
            st.insert(s.clone(), p.clone(), o.clone());
            model.insert((s.clone(), p.clone(), o.clone()));
        }
        let listed: Vec<_> = model.iter().cloned().collect();
        for ix in kill {
            if listed.is_empty() { break; }
            let (s, p, o) = ix.get(&listed).clone();
            st.remove(&s, &p, &o);
            model.remove(&(s, p, o));
        }
        let got: BTreeSet<_> = st.match_terms(None, None, None).into_iter().collect();
        prop_assert_eq!(got, model);
        prop_assert_eq!(st.len(), st.match_terms(None, None, None).len());
    }

    /// The deep structural invariants (index agreement, dictionary
    /// bijection) hold after any interleaving of inserts, removes, and
    /// whole-subject removals.
    #[test]
    fn store_invariants_hold(triples in arb_triples(),
                             kill in prop::collection::vec(any::<prop::sample::Index>(), 0..10),
                             drop_subjects in prop::collection::vec(0u8..6, 0..3)) {
        let mut st = TripleStore::new();
        for (s, p, o) in &triples {
            st.insert(s.clone(), p.clone(), o.clone());
        }
        let listed: Vec<_> = st.match_terms(None, None, None);
        for ix in kill {
            if listed.is_empty() { break; }
            let (s, p, o) = ix.get(&listed);
            st.remove(s, p, o);
        }
        for i in drop_subjects {
            st.remove_subject(&Term::iri(format!("http://e/r{i}")));
        }
        prop_assert_eq!(st.check_invariants(), Ok(()));
    }

    /// Turtle serialization round-trips every term mix.
    #[test]
    fn turtle_roundtrip(triples in arb_triples()) {
        let ttl = to_turtle(triples.iter().map(|(s, p, o)| (s, p, o)));
        // Blank-free, IRI-predicate triples only are guaranteed serializable;
        // our generator emits literals in predicate position sometimes, which
        // Turtle cannot express — serialize only the legal subset.
        let legal: Vec<_> = triples
            .iter()
            .filter(|(s, p, _)| s.is_iri() && p.is_iri())
            .cloned()
            .collect();
        let ttl_legal = to_turtle(legal.iter().map(|(s, p, o)| (s, p, o)));
        let back = parse_turtle(&ttl_legal).unwrap();
        prop_assert_eq!(legal, back);
        let _ = ttl; // full serialization must at least not panic
    }

    /// Single-pattern SPARQL evaluation equals a naive scan + filter.
    #[test]
    fn bgp_single_pattern_matches_naive(triples in arb_triples(), probe in arb_term()) {
        let mut st = TripleStore::new();
        for (s, p, o) in &triples {
            st.insert(s.clone(), p.clone(), o.clone());
        }
        // ?x probe ?y — all (s, o) pairs whose predicate equals `probe`.
        let q = SelectQuery {
            distinct: false,
            vars: vec!["x".into(), "y".into()],
            aggregates: Vec::new(),
            group_by: Vec::new(),
            where_patterns: vec![TriplePattern {
                s: PatternTerm::Var("x".into()),
                p: PatternTerm::Term(probe.clone()),
                o: PatternTerm::Var("y".into()),
            }],
            filters: Vec::new(),
            optionals: Vec::new(),
            union_branches: Vec::new(),
            order_by: Vec::new(),
            limit: None,
            offset: None,
        };
        let sols = evaluate(&st, &q).unwrap();
        let got: BTreeSet<(String, String)> = sols
            .rows
            .iter()
            .map(|r| (r[0].as_ref().unwrap().to_string(), r[1].as_ref().unwrap().to_string()))
            .collect();
        let want: BTreeSet<(String, String)> = st
            .match_terms(None, None, None)
            .into_iter()
            .filter(|(_, p, _)| *p == probe)
            .map(|(s, _, o)| (s.to_string(), o.to_string()))
            .collect();
        prop_assert_eq!(got, want);
    }

    /// Two-pattern joins equal the naive nested-loop join.
    #[test]
    fn bgp_join_matches_naive(triples in arb_triples()) {
        let mut st = TripleStore::new();
        for (s, p, o) in &triples {
            st.insert(s.clone(), p.clone(), o.clone());
        }
        // ?a ?p ?b . ?b ?q ?c — chained joins through the shared ?b.
        let q = SelectQuery {
            distinct: true,
            vars: vec!["a".into(), "c".into()],
            aggregates: Vec::new(),
            group_by: Vec::new(),
            where_patterns: vec![
                TriplePattern {
                    s: PatternTerm::Var("a".into()),
                    p: PatternTerm::Var("p".into()),
                    o: PatternTerm::Var("b".into()),
                },
                TriplePattern {
                    s: PatternTerm::Var("b".into()),
                    p: PatternTerm::Var("q".into()),
                    o: PatternTerm::Var("c".into()),
                },
            ],
            filters: Vec::new(),
            optionals: Vec::new(),
            union_branches: Vec::new(),
            order_by: Vec::new(),
            limit: None,
            offset: None,
        };
        let sols = evaluate(&st, &q).unwrap();
        let got: BTreeSet<(String, String)> = sols
            .rows
            .iter()
            .map(|r| (r[0].as_ref().unwrap().to_string(), r[1].as_ref().unwrap().to_string()))
            .collect();
        let all = st.match_terms(None, None, None);
        let mut want = BTreeSet::new();
        for (a, _, b1) in &all {
            for (b2, _, c) in &all {
                if b1 == b2 {
                    want.insert((a.to_string(), c.to_string()));
                }
            }
        }
        prop_assert_eq!(got, want);
    }
}
