//! # sensormeta-rdf
//!
//! A dictionary-encoded RDF triple store with SPO/POS/OSP indexes, a
//! Turtle-subset parser/serializer, and a SPARQL-subset query engine
//! (BGP joins, FILTER, OPTIONAL, ORDER BY/LIMIT/OFFSET/DISTINCT).
//!
//! In the paper's architecture this crate plays the role of the RDF graph
//! export of Semantic MediaWiki: metadata annotations are mirrored here and
//! queried "using a combination of SQL and SPARQL".
//!
//! ```
//! use sensormeta_rdf::{TripleStore, Term, load_turtle, parse_sparql, evaluate};
//!
//! let mut store = TripleStore::new();
//! load_turtle(&mut store, r#"
//!     @prefix ex: <http://e/> .
//!     ex:wfj ex:elev 2693 .
//!     ex:davos ex:elev 1594 .
//! "#).unwrap();
//! let q = parse_sparql(
//!     "PREFIX ex: <http://e/> SELECT ?s WHERE { ?s ex:elev ?e . FILTER(?e > 2000) }"
//! ).unwrap();
//! let sols = evaluate(&store, &q).unwrap();
//! assert_eq!(sols.len(), 1);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod error;
pub mod sparql;
pub mod store;
pub mod term;
pub mod turtle;

pub use error::{RdfError, Result};
pub use sparql::ast::SelectQuery;
pub use sparql::exec::{evaluate, Solutions};
pub use sparql::parser::parse_sparql;
pub use store::TripleStore;
pub use term::{Term, TermDict, TermId};
pub use turtle::{load_turtle, parse_turtle, to_turtle};
