//! RDF terms and the interning dictionary.
//!
//! Terms are interned into dense `TermId`s so triples are stored as integer
//! triples — the standard dictionary-encoding design of RDF stores, which
//! makes index entries small and comparisons cheap.

use std::collections::HashMap;
use std::fmt;

/// Dense identifier of an interned term.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TermId(pub u64);

/// An RDF term.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Term {
    /// An IRI, stored in full (prefix expansion happens at parse time).
    Iri(String),
    /// A literal with optional language tag or datatype IRI.
    Literal {
        /// Lexical form.
        value: String,
        /// Language tag (`@en`), mutually exclusive with `datatype` in
        /// serialization.
        lang: Option<String>,
        /// Datatype IRI (`^^xsd:integer`).
        datatype: Option<String>,
    },
    /// A blank node with a local label.
    Blank(String),
}

impl Term {
    /// IRI constructor.
    pub fn iri(s: impl Into<String>) -> Term {
        Term::Iri(s.into())
    }

    /// Plain string literal.
    pub fn lit(s: impl Into<String>) -> Term {
        Term::Literal {
            value: s.into(),
            lang: None,
            datatype: None,
        }
    }

    /// Typed literal.
    pub fn typed(s: impl Into<String>, datatype: impl Into<String>) -> Term {
        Term::Literal {
            value: s.into(),
            lang: None,
            datatype: Some(datatype.into()),
        }
    }

    /// Integer literal with xsd:integer datatype.
    pub fn int(v: i64) -> Term {
        Term::typed(v.to_string(), "http://www.w3.org/2001/XMLSchema#integer")
    }

    /// Double literal with xsd:double datatype.
    pub fn double(v: f64) -> Term {
        Term::typed(v.to_string(), "http://www.w3.org/2001/XMLSchema#double")
    }

    /// True if the term is a literal.
    pub fn is_literal(&self) -> bool {
        matches!(self, Term::Literal { .. })
    }

    /// True if the term is an IRI.
    pub fn is_iri(&self) -> bool {
        matches!(self, Term::Iri(_))
    }

    /// The literal's lexical value, if a literal.
    pub fn literal_value(&self) -> Option<&str> {
        match self {
            Term::Literal { value, .. } => Some(value),
            _ => None,
        }
    }

    /// Numeric interpretation of a literal, when it parses.
    pub fn as_number(&self) -> Option<f64> {
        self.literal_value().and_then(|v| v.parse().ok())
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Iri(i) => write!(f, "<{i}>"),
            Term::Literal {
                value,
                lang,
                datatype,
            } => {
                write!(
                    f,
                    "\"{}\"",
                    value.replace('\\', "\\\\").replace('"', "\\\"")
                )?;
                if let Some(l) = lang {
                    write!(f, "@{l}")?;
                } else if let Some(d) = datatype {
                    write!(f, "^^<{d}>")?;
                }
                Ok(())
            }
            Term::Blank(b) => write!(f, "_:{b}"),
        }
    }
}

/// Bidirectional term ↔ id dictionary.
#[derive(Debug, Default, Clone)]
pub struct TermDict {
    terms: Vec<Term>,
    ids: HashMap<Term, TermId>,
}

impl TermDict {
    /// Creates an empty dictionary.
    pub fn new() -> TermDict {
        TermDict::default()
    }

    /// Interns a term, returning its id (stable across repeat calls).
    pub fn intern(&mut self, term: Term) -> TermId {
        if let Some(id) = self.ids.get(&term) {
            return *id;
        }
        let id = TermId(self.terms.len() as u64);
        self.terms.push(term.clone());
        self.ids.insert(term, id);
        id
    }

    /// Looks up an already-interned term.
    pub fn id_of(&self, term: &Term) -> Option<TermId> {
        self.ids.get(term).copied()
    }

    /// Resolves an id back to its term.
    pub fn term(&self, id: TermId) -> Option<&Term> {
        self.terms.get(id.0 as usize)
    }

    /// Number of distinct terms.
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// True when no terms are interned.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// Iterates all `(id, term)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (TermId, &Term)> {
        self.terms
            .iter()
            .enumerate()
            .map(|(i, t)| (TermId(i as u64), t))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut d = TermDict::new();
        let a = d.intern(Term::iri("http://ex.org/a"));
        let b = d.intern(Term::iri("http://ex.org/b"));
        let a2 = d.intern(Term::iri("http://ex.org/a"));
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn literals_distinguished_by_lang_and_type() {
        let mut d = TermDict::new();
        let plain = d.intern(Term::lit("chat"));
        let fr = d.intern(Term::Literal {
            value: "chat".into(),
            lang: Some("fr".into()),
            datatype: None,
        });
        let typed = d.intern(Term::typed("chat", "http://ex.org/t"));
        assert_ne!(plain, fr);
        assert_ne!(plain, typed);
        assert_ne!(fr, typed);
    }

    #[test]
    fn roundtrip_id_to_term() {
        let mut d = TermDict::new();
        let t = Term::lit("Weissfluhjoch");
        let id = d.intern(t.clone());
        assert_eq!(d.term(id), Some(&t));
        assert_eq!(d.id_of(&t), Some(id));
        assert_eq!(d.term(TermId(999)), None);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Term::iri("http://x/a").to_string(), "<http://x/a>");
        assert_eq!(Term::lit("hi \"you\"").to_string(), "\"hi \\\"you\\\"\"");
        assert_eq!(
            Term::int(5).to_string(),
            "\"5\"^^<http://www.w3.org/2001/XMLSchema#integer>"
        );
        assert_eq!(Term::Blank("b0".into()).to_string(), "_:b0");
    }

    #[test]
    fn numeric_interpretation() {
        assert_eq!(Term::int(42).as_number(), Some(42.0));
        assert_eq!(Term::lit("3.5").as_number(), Some(3.5));
        assert_eq!(Term::lit("abc").as_number(), None);
        assert_eq!(Term::iri("x").as_number(), None);
    }
}
