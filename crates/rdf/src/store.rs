//! The triple store: dictionary-encoded triples under SPO/POS/OSP indexes.

use crate::term::{Term, TermDict, TermId};
use std::collections::BTreeSet;
use std::ops::Bound;
use std::sync::Arc;

/// A triple of interned term ids.
pub type IdTriple = (TermId, TermId, TermId);

/// An optionally-bound triple pattern over ids (`None` = wildcard).
pub type IdPattern = (Option<TermId>, Option<TermId>, Option<TermId>);

/// A dictionary-encoded RDF graph with three full orderings, so every
/// pattern shape is answered by a range scan on its best index.
///
/// The dictionary and all three orderings sit behind `Arc`, so cloning the
/// store (an MVCC reader version) is four refcount bumps; a writer's next
/// mutation copies only the structures it touches (`Arc::make_mut`).
#[derive(Debug, Default, Clone)]
pub struct TripleStore {
    dict: Arc<TermDict>,
    spo: Arc<BTreeSet<(TermId, TermId, TermId)>>,
    pos: Arc<BTreeSet<(TermId, TermId, TermId)>>,
    osp: Arc<BTreeSet<(TermId, TermId, TermId)>>,
}

impl TripleStore {
    /// Creates an empty store.
    pub fn new() -> TripleStore {
        TripleStore::default()
    }

    /// Number of triples.
    pub fn len(&self) -> usize {
        self.spo.len()
    }

    /// True when the store holds no triples.
    pub fn is_empty(&self) -> bool {
        self.spo.is_empty()
    }

    /// Access to the term dictionary.
    pub fn dict(&self) -> &TermDict {
        &self.dict
    }

    /// Interns a term (exposed for query preparation).
    // Dictionary growth is invisible to queries: no triple changes, so no
    // cached result can go stale. // xlint: allow(epoch-bump-on-mutate)
    pub fn intern(&mut self, term: Term) -> TermId {
        Arc::make_mut(&mut self.dict).intern(term)
    }

    /// Inserts a triple of terms. Returns true if it was new.
    pub fn insert(&mut self, s: Term, p: Term, o: Term) -> bool {
        let dict = Arc::make_mut(&mut self.dict);
        let s = dict.intern(s);
        let p = dict.intern(p);
        let o = dict.intern(o);
        self.insert_ids((s, p, o))
    }

    /// Inserts an id triple. Returns true if it was new.
    pub fn insert_ids(&mut self, (s, p, o): IdTriple) -> bool {
        if !Arc::make_mut(&mut self.spo).insert((s, p, o)) {
            return false;
        }
        Arc::make_mut(&mut self.pos).insert((p, o, s));
        Arc::make_mut(&mut self.osp).insert((o, s, p));
        debug_assert!(
            self.pos.len() == self.spo.len() && self.osp.len() == self.spo.len(),
            "index orderings diverged on insert"
        );
        sensormeta_cache::clock().bump(sensormeta_cache::Domain::Triples);
        true
    }

    /// Removes a triple of terms. Returns true if it existed.
    pub fn remove(&mut self, s: &Term, p: &Term, o: &Term) -> bool {
        let (Some(s), Some(p), Some(o)) =
            (self.dict.id_of(s), self.dict.id_of(p), self.dict.id_of(o))
        else {
            return false;
        };
        if !Arc::make_mut(&mut self.spo).remove(&(s, p, o)) {
            return false;
        }
        Arc::make_mut(&mut self.pos).remove(&(p, o, s));
        Arc::make_mut(&mut self.osp).remove(&(o, s, p));
        debug_assert!(
            self.pos.len() == self.spo.len() && self.osp.len() == self.spo.len(),
            "index orderings diverged on remove"
        );
        sensormeta_cache::clock().bump(sensormeta_cache::Domain::Triples);
        true
    }

    /// Removes every triple with the given subject. Returns the count.
    pub fn remove_subject(&mut self, s: &Term) -> usize {
        let Some(sid) = self.dict.id_of(s) else {
            return 0;
        };
        let doomed: Vec<IdTriple> = self.match_ids((Some(sid), None, None)).collect();
        if !doomed.is_empty() {
            let spo = Arc::make_mut(&mut self.spo);
            let pos = Arc::make_mut(&mut self.pos);
            let osp = Arc::make_mut(&mut self.osp);
            for (s, p, o) in &doomed {
                spo.remove(&(*s, *p, *o));
                pos.remove(&(*p, *o, *s));
                osp.remove(&(*o, *s, *p));
            }
        }
        if !doomed.is_empty() {
            sensormeta_cache::clock().bump(sensormeta_cache::Domain::Triples);
        }
        doomed.len()
    }

    /// True if the exact triple is present.
    pub fn contains(&self, s: &Term, p: &Term, o: &Term) -> bool {
        match (self.dict.id_of(s), self.dict.id_of(p), self.dict.id_of(o)) {
            (Some(s), Some(p), Some(o)) => self.spo.contains(&(s, p, o)),
            _ => false,
        }
    }

    /// Matches a pattern of ids, choosing the index whose sort order makes the
    /// bound prefix contiguous.
    pub fn match_ids(&self, pattern: IdPattern) -> Box<dyn Iterator<Item = IdTriple> + '_> {
        let (s, p, o) = pattern;
        match (s, p, o) {
            // Fully bound: membership test.
            (Some(s), Some(p), Some(o)) => {
                if self.spo.contains(&(s, p, o)) {
                    Box::new(std::iter::once((s, p, o)))
                } else {
                    Box::new(std::iter::empty())
                }
            }
            // S bound (P maybe): SPO index.
            (Some(s), p, o) => Box::new(
                range2(&self.spo, s, p)
                    .filter(move |(_, _, to)| o.is_none_or(|o| *to == o))
                    .copied(),
            ),
            // P bound: POS index.
            (None, Some(p), o) => Box::new(range2(&self.pos, p, o).map(|(p, o, s)| (*s, *p, *o))),
            // Only O bound: OSP index.
            (None, None, Some(o)) => {
                Box::new(range2(&self.osp, o, None).map(|(o, s, p)| (*s, *p, *o)))
            }
            // Nothing bound: full scan.
            (None, None, None) => Box::new(self.spo.iter().copied()),
        }
    }

    /// Matches a pattern of terms, decoding results back to terms.
    pub fn match_terms(
        &self,
        s: Option<&Term>,
        p: Option<&Term>,
        o: Option<&Term>,
    ) -> Vec<(Term, Term, Term)> {
        let to_id = |t: Option<&Term>| -> Option<Option<TermId>> {
            match t {
                None => Some(None),
                // A term that was never interned matches nothing.
                Some(t) => self.dict.id_of(t).map(Some),
            }
        };
        let (Some(s), Some(p), Some(o)) = (to_id(s), to_id(p), to_id(o)) else {
            return Vec::new();
        };
        self.match_ids((s, p, o))
            .filter_map(|(s, p, o)| {
                // Index invariants guarantee every id is interned; skip rather
                // than panic if a corrupted store ever violates that.
                Some((
                    self.dict.term(s)?.clone(),
                    self.dict.term(p)?.clone(),
                    self.dict.term(o)?.clone(),
                ))
            })
            .collect()
    }

    /// All distinct subjects.
    pub fn subjects(&self) -> Vec<TermId> {
        let mut out: Vec<TermId> = Vec::new();
        for (s, _, _) in self.spo.iter() {
            if out.last() != Some(s) {
                out.push(*s);
            }
        }
        out
    }

    /// All distinct predicates with their triple counts (used by the
    /// recommendation engine's property scoring).
    pub fn predicate_counts(&self) -> Vec<(TermId, usize)> {
        let mut out: Vec<(TermId, usize)> = Vec::new();
        for (p, _, _) in self.pos.iter() {
            match out.last_mut() {
                Some((last, n)) if last == p => *n += 1,
                _ => out.push((*p, 1)),
            }
        }
        out
    }

    /// Iterates all triples in SPO order.
    pub fn iter(&self) -> impl Iterator<Item = IdTriple> + '_ {
        self.spo.iter().copied()
    }

    /// Deep structural check (fsck): the three index orderings must hold the
    /// same triple set, every id must resolve in the dictionary, and the
    /// dictionary must be a bijection. Returns every violated invariant.
    pub fn check_invariants(&self) -> Result<(), Vec<String>> {
        let mut problems = Vec::new();
        if self.pos.len() != self.spo.len() || self.osp.len() != self.spo.len() {
            problems.push(format!(
                "index cardinalities disagree: spo={} pos={} osp={}",
                self.spo.len(),
                self.pos.len(),
                self.osp.len()
            ));
        }
        for &(s, p, o) in self.spo.iter() {
            if !self.pos.contains(&(p, o, s)) {
                problems.push(format!("triple ({s:?}, {p:?}, {o:?}) missing from POS"));
            }
            if !self.osp.contains(&(o, s, p)) {
                problems.push(format!("triple ({s:?}, {p:?}, {o:?}) missing from OSP"));
            }
            for id in [s, p, o] {
                if self.dict.term(id).is_none() {
                    problems.push(format!("dangling term id {id:?} in triple"));
                }
            }
        }
        // With equal cardinalities and spo ⊆ pos, spo ⊆ osp, the sets are
        // identical — no reverse sweep needed.
        for (id, term) in self.dict.iter() {
            match self.dict.id_of(term) {
                Some(back) if back == id => {}
                Some(back) => problems.push(format!(
                    "dictionary not a bijection: {term} interns to {back:?} but is stored at {id:?}"
                )),
                None => problems.push(format!(
                    "dictionary not a bijection: {term} at {id:?} has no reverse mapping"
                )),
            }
        }
        if problems.is_empty() {
            Ok(())
        } else {
            Err(problems)
        }
    }
}

/// Range over a BTreeSet of id-triples where the first component equals `a`
/// and, if given, the second equals `b`.
fn range2(
    set: &BTreeSet<(TermId, TermId, TermId)>,
    a: TermId,
    b: Option<TermId>,
) -> impl Iterator<Item = &(TermId, TermId, TermId)> {
    let min = TermId(0);
    let lo = match b {
        Some(b) => (a, b, min),
        None => (a, min, min),
    };
    set.range((Bound::Included(lo), Bound::Unbounded))
        .take_while(move |(x, y, _)| *x == a && b.is_none_or(|b| *y == b))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store() -> TripleStore {
        let mut st = TripleStore::new();
        let wfj = Term::iri("ex:wfj");
        let davos = Term::iri("ex:davos");
        let kind = Term::iri("ex:hasSensor");
        let loc = Term::iri("ex:locatedIn");
        st.insert(wfj.clone(), kind.clone(), Term::lit("temperature"));
        st.insert(wfj.clone(), kind.clone(), Term::lit("wind"));
        st.insert(wfj.clone(), loc.clone(), Term::lit("GR"));
        st.insert(davos.clone(), kind.clone(), Term::lit("temperature"));
        st.insert(davos, loc, Term::lit("GR"));
        st
    }

    #[test]
    fn insert_dedupes() {
        let mut st = TripleStore::new();
        assert!(st.insert(Term::iri("a"), Term::iri("b"), Term::lit("c")));
        assert!(!st.insert(Term::iri("a"), Term::iri("b"), Term::lit("c")));
        assert_eq!(st.len(), 1);
    }

    #[test]
    fn pattern_shapes_agree() {
        let st = store();
        // s?? — all triples about wfj.
        assert_eq!(
            st.match_terms(Some(&Term::iri("ex:wfj")), None, None).len(),
            3
        );
        // ?p? — all hasSensor triples.
        assert_eq!(
            st.match_terms(None, Some(&Term::iri("ex:hasSensor")), None)
                .len(),
            3
        );
        // ??o — everything pointing at "GR".
        assert_eq!(st.match_terms(None, None, Some(&Term::lit("GR"))).len(), 2);
        // sp? — wfj's sensors.
        assert_eq!(
            st.match_terms(
                Some(&Term::iri("ex:wfj")),
                Some(&Term::iri("ex:hasSensor")),
                None
            )
            .len(),
            2
        );
        // ?po — who has temperature.
        assert_eq!(
            st.match_terms(
                None,
                Some(&Term::iri("ex:hasSensor")),
                Some(&Term::lit("temperature"))
            )
            .len(),
            2
        );
        // spo exact.
        assert!(st.contains(
            &Term::iri("ex:davos"),
            &Term::iri("ex:locatedIn"),
            &Term::lit("GR")
        ));
        // full scan.
        assert_eq!(st.match_terms(None, None, None).len(), 5);
    }

    #[test]
    fn unknown_terms_match_nothing() {
        let st = store();
        assert!(st
            .match_terms(Some(&Term::iri("ex:nowhere")), None, None)
            .is_empty());
        assert!(!st.contains(&Term::iri("x"), &Term::iri("y"), &Term::lit("z")));
    }

    #[test]
    fn remove_keeps_indexes_consistent() {
        let mut st = store();
        assert!(st.remove(
            &Term::iri("ex:wfj"),
            &Term::iri("ex:hasSensor"),
            &Term::lit("wind")
        ));
        assert!(!st.remove(
            &Term::iri("ex:wfj"),
            &Term::iri("ex:hasSensor"),
            &Term::lit("wind")
        ));
        assert_eq!(st.len(), 4);
        // All three indexes agree after removal.
        assert_eq!(
            st.match_terms(None, None, Some(&Term::lit("wind"))).len(),
            0
        );
        assert_eq!(
            st.match_terms(None, Some(&Term::iri("ex:hasSensor")), None)
                .len(),
            2
        );
    }

    #[test]
    fn remove_subject_removes_all() {
        let mut st = store();
        assert_eq!(st.remove_subject(&Term::iri("ex:wfj")), 3);
        assert_eq!(st.len(), 2);
        assert_eq!(st.remove_subject(&Term::iri("ex:wfj")), 0);
    }

    #[test]
    fn predicate_counts() {
        let st = store();
        let counts = st.predicate_counts();
        let total: usize = counts.iter().map(|(_, n)| n).sum();
        assert_eq!(total, 5);
        assert_eq!(counts.len(), 2);
    }

    #[test]
    fn subjects_deduped() {
        let st = store();
        assert_eq!(st.subjects().len(), 2);
    }

    #[test]
    fn fsck_detects_corruption() {
        let st = store();
        assert_eq!(st.check_invariants(), Ok(()));

        // A triple smuggled into SPO alone desynchronizes the orderings.
        let mut lopsided = store();
        let s = lopsided.intern(Term::iri("ex:rogue"));
        let p = lopsided.intern(Term::iri("ex:p"));
        let o = lopsided.intern(Term::lit("x"));
        Arc::make_mut(&mut lopsided.spo).insert((s, p, o));
        let problems = lopsided.check_invariants().unwrap_err();
        assert!(
            problems
                .iter()
                .any(|m| m.contains("cardinalities disagree")),
            "{problems:?}"
        );
        assert!(
            problems.iter().any(|m| m.contains("missing from POS")),
            "{problems:?}"
        );

        // A triple referencing an id the dictionary never issued.
        let mut dangling = store();
        let ghost = TermId(9999);
        Arc::make_mut(&mut dangling.spo).insert((ghost, ghost, ghost));
        Arc::make_mut(&mut dangling.pos).insert((ghost, ghost, ghost));
        Arc::make_mut(&mut dangling.osp).insert((ghost, ghost, ghost));
        let problems = dangling.check_invariants().unwrap_err();
        assert!(
            problems.iter().any(|m| m.contains("dangling term id")),
            "{problems:?}"
        );
    }
}
