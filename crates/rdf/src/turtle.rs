//! Turtle-subset parser and serializer.
//!
//! Supports `@prefix` declarations, IRIs, prefixed names, blank nodes, plain /
//! language-tagged / typed literals, numeric and boolean shorthand, and the
//! `;` / `,` predicate-object continuation syntax. This is the exchange format
//! of the SMR's RDF export.

use crate::error::{RdfError, Result};
use crate::store::TripleStore;
use crate::term::Term;
use std::collections::HashMap;

const RDF_TYPE: &str = "http://www.w3.org/1999/02/22-rdf-syntax-ns#type";
const XSD_INTEGER: &str = "http://www.w3.org/2001/XMLSchema#integer";
const XSD_DECIMAL: &str = "http://www.w3.org/2001/XMLSchema#decimal";
const XSD_BOOLEAN: &str = "http://www.w3.org/2001/XMLSchema#boolean";

/// Parses a Turtle document into triples.
pub fn parse_turtle(input: &str) -> Result<Vec<(Term, Term, Term)>> {
    let mut p = TurtleParser {
        chars: input.chars().collect(),
        pos: 0,
        prefixes: HashMap::new(),
        line: 1,
    };
    p.document()
}

/// Parses a Turtle document straight into a store, returning the number of
/// (new) triples inserted.
pub fn load_turtle(store: &mut TripleStore, input: &str) -> Result<usize> {
    let triples = parse_turtle(input)?;
    Ok(triples
        .into_iter()
        .filter(|(s, p, o)| store.insert(s.clone(), p.clone(), o.clone()))
        .count())
}

/// Serializes triples as line-oriented Turtle (no prefix compression).
pub fn to_turtle<'a>(triples: impl Iterator<Item = (&'a Term, &'a Term, &'a Term)>) -> String {
    let mut out = String::new();
    for (s, p, o) in triples {
        out.push_str(&format!("{s} {p} {o} .\n"));
    }
    out
}

struct TurtleParser {
    chars: Vec<char>,
    pos: usize,
    prefixes: HashMap<String, String>,
    line: u32,
}

impl TurtleParser {
    fn err(&self, msg: impl Into<String>) -> RdfError {
        RdfError::Turtle(format!("line {}: {}", self.line, msg.into()))
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek();
        if let Some(c) = c {
            if c == '\n' {
                self.line += 1;
            }
            self.pos += 1;
        }
        c
    }

    fn skip_ws(&mut self) {
        loop {
            match self.peek() {
                Some(c) if c.is_whitespace() => {
                    self.bump();
                }
                Some('#') => {
                    while let Some(c) = self.bump() {
                        if c == '\n' {
                            break;
                        }
                    }
                }
                _ => return,
            }
        }
    }

    fn expect_char(&mut self, c: char) -> Result<()> {
        self.skip_ws();
        if self.bump() == Some(c) {
            Ok(())
        } else {
            Err(self.err(format!("expected `{c}`")))
        }
    }

    fn document(&mut self) -> Result<Vec<(Term, Term, Term)>> {
        let mut out = Vec::new();
        loop {
            self.skip_ws();
            if self.peek().is_none() {
                return Ok(out);
            }
            if self.lookahead_keyword("@prefix") {
                self.prefix_decl()?;
                continue;
            }
            self.triples_block(&mut out)?;
        }
    }

    fn lookahead_keyword(&self, kw: &str) -> bool {
        self.chars[self.pos..]
            .iter()
            .zip(kw.chars())
            .filter(|(a, b)| **a == *b)
            .count()
            == kw.len()
    }

    fn prefix_decl(&mut self) -> Result<()> {
        self.pos += "@prefix".len();
        self.skip_ws();
        let mut name = String::new();
        while let Some(c) = self.peek() {
            if c == ':' {
                break;
            }
            if c.is_whitespace() {
                return Err(self.err("bad prefix name"));
            }
            name.push(c);
            self.bump();
        }
        self.expect_char(':')?;
        self.skip_ws();
        let Term::Iri(iri) = self.iri_ref()? else {
            return Err(self.err("prefix target must be an IRI"));
        };
        self.prefixes.insert(name, iri);
        self.expect_char('.')?;
        Ok(())
    }

    fn triples_block(&mut self, out: &mut Vec<(Term, Term, Term)>) -> Result<()> {
        let subject = self.subject()?;
        loop {
            self.skip_ws();
            let predicate = self.predicate()?;
            loop {
                let object = self.object()?;
                out.push((subject.clone(), predicate.clone(), object));
                self.skip_ws();
                if self.peek() == Some(',') {
                    self.bump();
                } else {
                    break;
                }
            }
            self.skip_ws();
            match self.bump() {
                Some(';') => {
                    self.skip_ws();
                    // Allow a dangling `;` before `.` (common in exports).
                    if self.peek() == Some('.') {
                        self.bump();
                        return Ok(());
                    }
                    continue;
                }
                Some('.') => return Ok(()),
                other => return Err(self.err(format!("expected `;` or `.`, found {other:?}"))),
            }
        }
    }

    fn subject(&mut self) -> Result<Term> {
        self.skip_ws();
        match self.peek() {
            Some('<') => self.iri_ref(),
            Some('_') => self.blank(),
            Some(c) if c.is_alphabetic() => self.prefixed_name(),
            other => Err(self.err(format!("bad subject start {other:?}"))),
        }
    }

    fn predicate(&mut self) -> Result<Term> {
        self.skip_ws();
        // `a` keyword.
        if self.peek() == Some('a')
            && self
                .chars
                .get(self.pos + 1)
                .is_none_or(|c| c.is_whitespace())
        {
            self.bump();
            return Ok(Term::iri(RDF_TYPE));
        }
        match self.peek() {
            Some('<') => self.iri_ref(),
            Some(c) if c.is_alphabetic() => self.prefixed_name(),
            other => Err(self.err(format!("bad predicate start {other:?}"))),
        }
    }

    fn object(&mut self) -> Result<Term> {
        self.skip_ws();
        match self.peek() {
            Some('<') => self.iri_ref(),
            Some('_') => self.blank(),
            Some('"') => self.literal(),
            Some(c) if c.is_ascii_digit() || c == '-' || c == '+' => self.number(),
            Some(_) => {
                if self.lookahead_keyword("true") {
                    self.pos += 4;
                    Ok(Term::typed("true", XSD_BOOLEAN))
                } else if self.lookahead_keyword("false") {
                    self.pos += 5;
                    Ok(Term::typed("false", XSD_BOOLEAN))
                } else {
                    self.prefixed_name()
                }
            }
            None => Err(self.err("unexpected end of input in object position")),
        }
    }

    fn iri_ref(&mut self) -> Result<Term> {
        self.expect_char('<')?;
        let mut iri = String::new();
        loop {
            match self.bump() {
                Some('>') => return Ok(Term::Iri(iri)),
                Some(c) => iri.push(c),
                None => return Err(self.err("unterminated IRI")),
            }
        }
    }

    fn blank(&mut self) -> Result<Term> {
        self.bump(); // _
        if self.bump() != Some(':') {
            return Err(self.err("blank node must start with `_:`"));
        }
        let mut label = String::new();
        while let Some(c) = self.peek() {
            if c.is_alphanumeric() || c == '_' || c == '-' {
                label.push(c);
                self.bump();
            } else {
                break;
            }
        }
        if label.is_empty() {
            return Err(self.err("empty blank node label"));
        }
        Ok(Term::Blank(label))
    }

    fn prefixed_name(&mut self) -> Result<Term> {
        let mut prefix = String::new();
        while let Some(c) = self.peek() {
            if c == ':' {
                break;
            }
            if c.is_alphanumeric() || c == '_' || c == '-' || c == '.' {
                prefix.push(c);
                self.bump();
            } else {
                return Err(self.err(format!("unexpected `{c}` in prefixed name")));
            }
        }
        if self.bump() != Some(':') {
            return Err(self.err("prefixed name missing `:`"));
        }
        let mut local = String::new();
        while let Some(c) = self.peek() {
            if c.is_alphanumeric() || c == '_' || c == '-' || c == '.' {
                local.push(c);
                self.bump();
            } else {
                break;
            }
        }
        // Trailing dot is a statement terminator, not part of the name.
        while local.ends_with('.') {
            local.pop();
            self.pos -= 1;
        }
        let base = self
            .prefixes
            .get(&prefix)
            .ok_or_else(|| self.err(format!("unknown prefix `{prefix}:`")))?;
        Ok(Term::Iri(format!("{base}{local}")))
    }

    fn literal(&mut self) -> Result<Term> {
        self.expect_char('"')?;
        let mut value = String::new();
        loop {
            match self.bump() {
                Some('"') => break,
                Some('\\') => match self.bump() {
                    Some('n') => value.push('\n'),
                    Some('t') => value.push('\t'),
                    Some('r') => value.push('\r'),
                    Some('"') => value.push('"'),
                    Some('\\') => value.push('\\'),
                    other => return Err(self.err(format!("bad escape {other:?}"))),
                },
                Some(c) => value.push(c),
                None => return Err(self.err("unterminated literal")),
            }
        }
        // Optional @lang or ^^datatype.
        if self.peek() == Some('@') {
            self.bump();
            let mut lang = String::new();
            while let Some(c) = self.peek() {
                if c.is_alphanumeric() || c == '-' {
                    lang.push(c);
                    self.bump();
                } else {
                    break;
                }
            }
            return Ok(Term::Literal {
                value,
                lang: Some(lang),
                datatype: None,
            });
        }
        if self.peek() == Some('^') {
            self.bump();
            if self.bump() != Some('^') {
                return Err(self.err("expected `^^`"));
            }
            let dt = match self.peek() {
                Some('<') => self.iri_ref()?,
                _ => self.prefixed_name()?,
            };
            let Term::Iri(dt) = dt else {
                return Err(self.err("datatype must be an IRI"));
            };
            return Ok(Term::Literal {
                value,
                lang: None,
                datatype: Some(dt),
            });
        }
        Ok(Term::lit(value))
    }

    fn number(&mut self) -> Result<Term> {
        let mut text = String::new();
        if let Some(sign) = self.peek().filter(|c| matches!(c, '-' | '+')) {
            text.push(sign);
            self.bump();
        }
        let mut is_decimal = false;
        while let Some(c) = self.peek() {
            if c.is_ascii_digit() {
                text.push(c);
                self.bump();
            } else if c == '.'
                && !is_decimal
                && self
                    .chars
                    .get(self.pos + 1)
                    .is_some_and(|d| d.is_ascii_digit())
            {
                is_decimal = true;
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        if text.is_empty() || text == "-" || text == "+" {
            return Err(self.err("bad numeric literal"));
        }
        Ok(Term::typed(
            text,
            if is_decimal { XSD_DECIMAL } else { XSD_INTEGER },
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_triples() {
        let doc = r#"
            @prefix ex: <http://example.org/> .
            ex:wfj ex:name "Weissfluhjoch" ;
                   ex:elevation 2693 ;
                   ex:hasSensor ex:t1, ex:t2 .
            ex:t1 a ex:TemperatureSensor .
        "#;
        let triples = parse_turtle(doc).unwrap();
        assert_eq!(triples.len(), 5);
        assert_eq!(
            triples[0],
            (
                Term::iri("http://example.org/wfj"),
                Term::iri("http://example.org/name"),
                Term::lit("Weissfluhjoch")
            )
        );
        assert_eq!(triples[1].2, Term::int(2693));
        assert_eq!(
            triples[4].1,
            Term::iri("http://www.w3.org/1999/02/22-rdf-syntax-ns#type")
        );
    }

    #[test]
    fn literals_with_lang_and_type() {
        let doc = r#"
            @prefix ex: <http://e/> .
            ex:a ex:label "Berg"@de .
            ex:a ex:height "3.5"^^<http://www.w3.org/2001/XMLSchema#double> .
            ex:a ex:active true .
            ex:a ex:temp -4.25 .
        "#;
        let triples = parse_turtle(doc).unwrap();
        assert_eq!(
            triples[0].2,
            Term::Literal {
                value: "Berg".into(),
                lang: Some("de".into()),
                datatype: None
            }
        );
        assert_eq!(triples[1].2.as_number(), Some(3.5));
        assert_eq!(triples[2].2.literal_value(), Some("true"));
        assert_eq!(triples[3].2.as_number(), Some(-4.25));
    }

    #[test]
    fn escapes_and_comments() {
        let doc = "@prefix e: <http://e/> .\n# comment\ne:a e:b \"say \\\"hi\\\"\\n\" .";
        let triples = parse_turtle(doc).unwrap();
        assert_eq!(triples[0].2.literal_value(), Some("say \"hi\"\n"));
    }

    #[test]
    fn blank_nodes() {
        let doc = "@prefix e: <http://e/> .\n_:b0 e:knows _:b1 .";
        let triples = parse_turtle(doc).unwrap();
        assert_eq!(triples[0].0, Term::Blank("b0".into()));
        assert_eq!(triples[0].2, Term::Blank("b1".into()));
    }

    #[test]
    fn unknown_prefix_is_error() {
        assert!(parse_turtle("x:a x:b x:c .").is_err());
    }

    #[test]
    fn errors_carry_line_numbers() {
        let err = parse_turtle("@prefix e: <http://e/> .\n\ne:a e:b .").unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("line 3"), "got: {msg}");
    }

    #[test]
    fn load_into_store_dedupes() {
        let mut st = TripleStore::new();
        let doc = "@prefix e: <http://e/> .\ne:a e:b e:c .\ne:a e:b e:c .";
        assert_eq!(load_turtle(&mut st, doc).unwrap(), 1);
        assert_eq!(st.len(), 1);
    }

    #[test]
    fn serializer_roundtrips() {
        let doc = "@prefix e: <http://e/> .\ne:a e:name \"x\" ;\n e:n 3 .";
        let triples = parse_turtle(doc).unwrap();
        let ser = to_turtle(triples.iter().map(|(s, p, o)| (s, p, o)));
        let back = parse_turtle(&ser).unwrap();
        assert_eq!(triples, back);
    }
}
