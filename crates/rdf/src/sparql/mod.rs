//! SPARQL subset: AST, parser, and BGP evaluator.

pub mod ast;
pub mod exec;
pub mod parser;
