//! SPARQL SELECT parser (subset).
//!
//! Grammar supported:
//!
//! ```text
//! PREFIX ns: <iri> ...
//! SELECT [DISTINCT] (?v ... | *) WHERE {
//!     triple-pattern .
//!     FILTER ( expr ) .
//!     OPTIONAL { triple-pattern . ... } .
//! }
//! [ORDER BY (ASC(?v)|DESC(?v)|?v) ...] [LIMIT n] [OFFSET n]
//! ```

use super::ast::*;
use crate::error::{RdfError, Result};
use crate::term::Term;
use std::collections::HashMap;

/// Parses a SPARQL SELECT query.
pub fn parse_sparql(input: &str) -> Result<SelectQuery> {
    let mut p = Parser {
        chars: input.chars().collect(),
        pos: 0,
        prefixes: HashMap::new(),
    };
    p.query()
}

struct Parser {
    chars: Vec<char>,
    pos: usize,
    prefixes: HashMap<String, String>,
}

impl Parser {
    fn err(&self, msg: impl Into<String>) -> RdfError {
        let ctx: String = self.chars[self.pos.min(self.chars.len())..]
            .iter()
            .take(24)
            .collect();
        RdfError::Sparql(format!("{} near `{}`", msg.into(), ctx))
    }

    fn skip_ws(&mut self) {
        while let Some(c) = self.peek() {
            if c.is_whitespace() {
                self.pos += 1;
            } else if c == '#' {
                while let Some(c) = self.peek() {
                    self.pos += 1;
                    if c == '\n' {
                        break;
                    }
                }
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn eat_char(&mut self, c: char) -> bool {
        self.skip_ws();
        if self.peek() == Some(c) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_char(&mut self, c: char) -> Result<()> {
        if self.eat_char(c) {
            Ok(())
        } else {
            Err(self.err(format!("expected `{c}`")))
        }
    }

    fn keyword(&mut self, kw: &str) -> bool {
        self.skip_ws();
        let rest = &self.chars[self.pos..];
        if rest.len() < kw.len() {
            return false;
        }
        let matches = rest
            .iter()
            .zip(kw.chars())
            .all(|(a, b)| a.eq_ignore_ascii_case(&b));
        if !matches {
            return false;
        }
        // Must not be a prefix of a longer word.
        if rest
            .get(kw.len())
            .is_some_and(|c| c.is_alphanumeric() || *c == '_')
        {
            return false;
        }
        self.pos += kw.len();
        true
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<()> {
        if self.keyword(kw) {
            Ok(())
        } else {
            Err(self.err(format!("expected keyword {kw}")))
        }
    }

    fn query(&mut self) -> Result<SelectQuery> {
        while self.keyword("PREFIX") {
            self.prefix_decl()?;
        }
        self.expect_keyword("SELECT")?;
        let distinct = self.keyword("DISTINCT");
        let mut vars = Vec::new();
        let mut aggregates = Vec::new();
        self.skip_ws();
        if self.eat_char('*') {
            // SELECT * — vars stay empty.
        } else {
            loop {
                self.skip_ws();
                if self.peek() == Some('(') {
                    aggregates.push(self.aggregate()?);
                    continue;
                }
                match self.try_var()? {
                    Some(v) => vars.push(v),
                    None => break,
                }
            }
            if vars.is_empty() && aggregates.is_empty() {
                return Err(self.err("SELECT needs variables, aggregates or *"));
            }
        }
        self.expect_keyword("WHERE")?;
        self.expect_char('{')?;
        let mut q = SelectQuery {
            distinct,
            vars,
            aggregates,
            group_by: Vec::new(),
            where_patterns: Vec::new(),
            filters: Vec::new(),
            optionals: Vec::new(),
            union_branches: Vec::new(),
            order_by: Vec::new(),
            limit: None,
            offset: None,
        };
        loop {
            self.skip_ws();
            if self.eat_char('}') {
                break;
            }
            if self.keyword("FILTER") {
                self.expect_char('(')?;
                let f = self.filter_expr()?;
                self.expect_char(')')?;
                q.filters.push(f);
                self.eat_char('.');
                continue;
            }
            if self.keyword("OPTIONAL") {
                self.expect_char('{')?;
                let mut block = Vec::new();
                loop {
                    self.skip_ws();
                    if self.eat_char('}') {
                        break;
                    }
                    block.push(self.triple_pattern()?);
                    self.eat_char('.');
                }
                if block.is_empty() {
                    return Err(self.err("empty OPTIONAL block"));
                }
                q.optionals.push(block);
                self.eat_char('.');
                continue;
            }
            if self.peek() == Some('{') {
                if !q.union_branches.is_empty() {
                    return Err(self.err("only one UNION clause is supported"));
                }
                q.union_branches.push(self.brace_block()?);
                loop {
                    if !self.keyword("UNION") {
                        break;
                    }
                    q.union_branches.push(self.brace_block()?);
                }
                if q.union_branches.len() < 2 {
                    return Err(self.err("a brace group must be followed by UNION"));
                }
                self.eat_char('.');
                continue;
            }
            q.where_patterns.push(self.triple_pattern()?);
            self.eat_char('.');
        }
        if self.keyword("GROUP") {
            self.expect_keyword("BY")?;
            while let Some(v) = self.try_var()? {
                q.group_by.push(v);
            }
            if q.group_by.is_empty() {
                return Err(self.err("GROUP BY needs at least one variable"));
            }
        }
        if !q.aggregates.is_empty() {
            // Grouped query: every plain projected var must be a group key.
            for v in &q.vars {
                if !q.group_by.contains(v) {
                    return Err(self.err(format!(
                        "variable ?{v} must appear in GROUP BY when aggregating"
                    )));
                }
            }
        }
        if self.keyword("ORDER") {
            self.expect_keyword("BY")?;
            loop {
                self.skip_ws();
                if self.keyword("DESC") {
                    self.expect_char('(')?;
                    let v = self.var()?;
                    self.expect_char(')')?;
                    q.order_by.push((v, true));
                } else if self.keyword("ASC") {
                    self.expect_char('(')?;
                    let v = self.var()?;
                    self.expect_char(')')?;
                    q.order_by.push((v, false));
                } else if let Some(v) = self.try_var()? {
                    q.order_by.push((v, false));
                } else {
                    break;
                }
            }
            if q.order_by.is_empty() {
                return Err(self.err("ORDER BY needs at least one key"));
            }
        }
        if self.keyword("LIMIT") {
            q.limit = Some(self.integer()? as usize);
        }
        if self.keyword("OFFSET") {
            q.offset = Some(self.integer()? as usize);
        }
        self.skip_ws();
        if self.pos < self.chars.len() {
            return Err(self.err("trailing input after query"));
        }
        Ok(q)
    }

    /// Parses `(COUNT(?x) AS ?n)` / `(SUM(DISTINCT ?x) AS ?s)` / `(COUNT(*) AS ?n)`.
    fn aggregate(&mut self) -> Result<Aggregate> {
        self.expect_char('(')?;
        let kind = if self.keyword("COUNT") {
            AggKind::Count
        } else if self.keyword("SUM") {
            AggKind::Sum
        } else if self.keyword("AVG") {
            AggKind::Avg
        } else if self.keyword("MIN") {
            AggKind::Min
        } else if self.keyword("MAX") {
            AggKind::Max
        } else {
            return Err(self.err("expected aggregate function"));
        };
        self.expect_char('(')?;
        let distinct = self.keyword("DISTINCT");
        self.skip_ws();
        let var = if self.eat_char('*') {
            if kind != AggKind::Count {
                return Err(self.err("only COUNT accepts *"));
            }
            None
        } else {
            Some(self.var()?)
        };
        self.expect_char(')')?;
        self.expect_keyword("AS")?;
        let alias = self.var()?;
        self.expect_char(')')?;
        Ok(Aggregate {
            kind,
            var,
            alias,
            distinct,
        })
    }

    /// Parses `{ pattern . FILTER(…) . … }` into a UNION branch.
    fn brace_block(&mut self) -> Result<UnionBranch> {
        self.expect_char('{')?;
        let mut patterns = Vec::new();
        let mut filters = Vec::new();
        loop {
            self.skip_ws();
            if self.eat_char('}') {
                break;
            }
            if self.keyword("FILTER") {
                self.expect_char('(')?;
                filters.push(self.filter_expr()?);
                self.expect_char(')')?;
                self.eat_char('.');
                continue;
            }
            patterns.push(self.triple_pattern()?);
            self.eat_char('.');
        }
        if patterns.is_empty() {
            return Err(self.err("empty brace block"));
        }
        Ok(UnionBranch { patterns, filters })
    }

    fn prefix_decl(&mut self) -> Result<()> {
        self.skip_ws();
        let mut name = String::new();
        while let Some(c) = self.peek() {
            if c == ':' {
                break;
            }
            if c.is_whitespace() {
                return Err(self.err("bad prefix name"));
            }
            name.push(c);
            self.pos += 1;
        }
        self.expect_char(':')?;
        self.skip_ws();
        self.expect_char('<')?;
        let mut iri = String::new();
        while let Some(c) = self.peek() {
            self.pos += 1;
            if c == '>' {
                self.prefixes.insert(name, iri);
                return Ok(());
            }
            iri.push(c);
        }
        Err(self.err("unterminated IRI in PREFIX"))
    }

    fn try_var(&mut self) -> Result<Option<String>> {
        self.skip_ws();
        if self.peek() != Some('?') {
            return Ok(None);
        }
        self.var().map(Some)
    }

    fn var(&mut self) -> Result<String> {
        self.skip_ws();
        if self.peek() != Some('?') {
            return Err(self.err("expected variable"));
        }
        self.pos += 1;
        let mut name = String::new();
        while let Some(c) = self.peek() {
            if c.is_alphanumeric() || c == '_' {
                name.push(c);
                self.pos += 1;
            } else {
                break;
            }
        }
        if name.is_empty() {
            return Err(self.err("empty variable name"));
        }
        Ok(name)
    }

    fn integer(&mut self) -> Result<i64> {
        self.skip_ws();
        let mut text = String::new();
        while let Some(c) = self.peek() {
            if c.is_ascii_digit() || (text.is_empty() && c == '-') {
                text.push(c);
                self.pos += 1;
            } else {
                break;
            }
        }
        text.parse().map_err(|_| self.err("expected integer"))
    }

    fn triple_pattern(&mut self) -> Result<TriplePattern> {
        let s = self.pattern_term()?;
        let p = self.pattern_term()?;
        let o = self.pattern_term()?;
        Ok(TriplePattern { s, p, o })
    }

    fn pattern_term(&mut self) -> Result<PatternTerm> {
        self.skip_ws();
        match self.peek() {
            Some('?') => Ok(PatternTerm::Var(self.var()?)),
            _ => Ok(PatternTerm::Term(self.term()?)),
        }
    }

    fn term(&mut self) -> Result<Term> {
        self.skip_ws();
        match self.peek() {
            Some('<') => {
                self.pos += 1;
                let mut iri = String::new();
                while let Some(c) = self.peek() {
                    self.pos += 1;
                    if c == '>' {
                        return Ok(Term::Iri(iri));
                    }
                    iri.push(c);
                }
                Err(self.err("unterminated IRI"))
            }
            Some('"') => {
                self.pos += 1;
                let mut value = String::new();
                loop {
                    match self.peek() {
                        Some('"') => {
                            self.pos += 1;
                            break;
                        }
                        Some('\\') => {
                            self.pos += 1;
                            match self.peek() {
                                Some('"') => value.push('"'),
                                Some('\\') => value.push('\\'),
                                Some('n') => value.push('\n'),
                                other => return Err(self.err(format!("bad escape {other:?}"))),
                            }
                            self.pos += 1;
                        }
                        Some(c) => {
                            value.push(c);
                            self.pos += 1;
                        }
                        None => return Err(self.err("unterminated literal")),
                    }
                }
                if self.peek() == Some('^') {
                    self.pos += 1;
                    if self.peek() != Some('^') {
                        return Err(self.err("expected ^^"));
                    }
                    self.pos += 1;
                    let Term::Iri(dt) = self.term()? else {
                        return Err(self.err("datatype must be an IRI"));
                    };
                    return Ok(Term::typed(value, dt));
                }
                if self.peek() == Some('@') {
                    self.pos += 1;
                    let mut lang = String::new();
                    while let Some(c) = self.peek() {
                        if c.is_alphanumeric() || c == '-' {
                            lang.push(c);
                            self.pos += 1;
                        } else {
                            break;
                        }
                    }
                    return Ok(Term::Literal {
                        value,
                        lang: Some(lang),
                        datatype: None,
                    });
                }
                Ok(Term::lit(value))
            }
            Some(c) if c.is_ascii_digit() || c == '-' => {
                let mut text = String::new();
                let mut decimal = false;
                while let Some(c) = self.peek() {
                    if c.is_ascii_digit() || (text.is_empty() && c == '-') {
                        text.push(c);
                        self.pos += 1;
                    } else if c == '.'
                        && !decimal
                        && self
                            .chars
                            .get(self.pos + 1)
                            .is_some_and(|d| d.is_ascii_digit())
                    {
                        decimal = true;
                        text.push(c);
                        self.pos += 1;
                    } else {
                        break;
                    }
                }
                Ok(Term::typed(
                    text,
                    if decimal {
                        "http://www.w3.org/2001/XMLSchema#decimal"
                    } else {
                        "http://www.w3.org/2001/XMLSchema#integer"
                    },
                ))
            }
            Some('a')
                if self
                    .chars
                    .get(self.pos + 1)
                    .is_none_or(|c| c.is_whitespace()) =>
            {
                self.pos += 1;
                Ok(Term::iri("http://www.w3.org/1999/02/22-rdf-syntax-ns#type"))
            }
            Some(c) if c.is_alphabetic() || c == '_' => {
                let mut prefix = String::new();
                while let Some(c) = self.peek() {
                    if c == ':' {
                        break;
                    }
                    if c.is_alphanumeric() || c == '_' || c == '-' {
                        prefix.push(c);
                        self.pos += 1;
                    } else {
                        return Err(self.err(format!("unexpected `{c}` in name")));
                    }
                }
                self.expect_char(':')?;
                let mut local = String::new();
                while let Some(c) = self.peek() {
                    if c.is_alphanumeric() || c == '_' || c == '-' {
                        local.push(c);
                        self.pos += 1;
                    } else {
                        break;
                    }
                }
                if prefix == "_" {
                    return Ok(Term::Blank(local));
                }
                let base = self
                    .prefixes
                    .get(&prefix)
                    .ok_or_else(|| self.err(format!("unknown prefix `{prefix}:`")))?;
                Ok(Term::Iri(format!("{base}{local}")))
            }
            other => Err(self.err(format!("unexpected term start {other:?}"))),
        }
    }

    // ----- filters -----

    fn filter_expr(&mut self) -> Result<FilterExpr> {
        let mut lhs = self.filter_and()?;
        loop {
            self.skip_ws();
            if self.peek() == Some('|') && self.chars.get(self.pos + 1) == Some(&'|') {
                self.pos += 2;
                let rhs = self.filter_and()?;
                lhs = FilterExpr::Or(Box::new(lhs), Box::new(rhs));
            } else {
                return Ok(lhs);
            }
        }
    }

    fn filter_and(&mut self) -> Result<FilterExpr> {
        let mut lhs = self.filter_unary()?;
        loop {
            self.skip_ws();
            if self.peek() == Some('&') && self.chars.get(self.pos + 1) == Some(&'&') {
                self.pos += 2;
                let rhs = self.filter_unary()?;
                lhs = FilterExpr::And(Box::new(lhs), Box::new(rhs));
            } else {
                return Ok(lhs);
            }
        }
    }

    fn filter_unary(&mut self) -> Result<FilterExpr> {
        self.skip_ws();
        if self.peek() == Some('!') && self.chars.get(self.pos + 1) != Some(&'=') {
            self.pos += 1;
            return Ok(FilterExpr::Not(Box::new(self.filter_unary()?)));
        }
        if self.eat_char('(') {
            let inner = self.filter_expr()?;
            self.expect_char(')')?;
            return Ok(inner);
        }
        // Function-style filters.
        for (kw, kind) in [
            ("CONTAINS", 0u8),
            ("STRSTARTS", 1),
            ("REGEX", 2),
            ("BOUND", 3),
            ("ISIRI", 4),
            ("ISLITERAL", 5),
        ] {
            if self.keyword(kw) {
                self.expect_char('(')?;
                match kind {
                    0 | 1 => {
                        let a = self.operand()?;
                        self.expect_char(',')?;
                        let b = self.operand()?;
                        self.expect_char(')')?;
                        return Ok(if kind == 0 {
                            FilterExpr::Contains(a, b)
                        } else {
                            FilterExpr::StrStarts(a, b)
                        });
                    }
                    2 => {
                        let a = self.operand()?;
                        self.expect_char(',')?;
                        let Operand::Const(Term::Literal { value, .. }) = self.operand()? else {
                            return Err(self.err("REGEX pattern must be a string literal"));
                        };
                        self.expect_char(')')?;
                        return Ok(FilterExpr::Regex(a, value));
                    }
                    3 => {
                        let v = self.var()?;
                        self.expect_char(')')?;
                        return Ok(FilterExpr::Bound(v));
                    }
                    4 | 5 => {
                        let a = self.operand()?;
                        self.expect_char(')')?;
                        return Ok(if kind == 4 {
                            FilterExpr::IsIri(a)
                        } else {
                            FilterExpr::IsLiteral(a)
                        });
                    }
                    _ => unreachable!(),
                }
            }
        }
        // Comparison.
        let lhs = self.operand()?;
        self.skip_ws();
        let op = if self.peek() == Some('!') && self.chars.get(self.pos + 1) == Some(&'=') {
            self.pos += 2;
            CmpOp::Neq
        } else if self.eat_char('=') {
            CmpOp::Eq
        } else if self.eat_char('<') {
            if self.eat_char('=') {
                CmpOp::Le
            } else {
                CmpOp::Lt
            }
        } else if self.eat_char('>') {
            if self.eat_char('=') {
                CmpOp::Ge
            } else {
                CmpOp::Gt
            }
        } else {
            return Err(self.err("expected comparison operator"));
        };
        let rhs = self.operand()?;
        Ok(FilterExpr::Cmp { op, lhs, rhs })
    }

    fn operand(&mut self) -> Result<Operand> {
        self.skip_ws();
        if self.peek() == Some('?') {
            Ok(Operand::Var(self.var()?))
        } else {
            Ok(Operand::Const(self.term()?))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_query() {
        let q = parse_sparql(
            "PREFIX ex: <http://e/>\n\
             SELECT ?station ?kind WHERE {\n\
               ?station ex:hasSensor ?s .\n\
               ?s ex:kind ?kind .\n\
             } ORDER BY ?station LIMIT 10",
        )
        .unwrap();
        assert_eq!(q.vars, vec!["station", "kind"]);
        assert_eq!(q.where_patterns.len(), 2);
        assert_eq!(q.order_by, vec![("station".into(), false)]);
        assert_eq!(q.limit, Some(10));
        assert!(!q.distinct);
    }

    #[test]
    fn select_star_and_distinct() {
        let q = parse_sparql("SELECT DISTINCT * WHERE { ?s ?p ?o }").unwrap();
        assert!(q.distinct);
        assert!(q.vars.is_empty());
        assert_eq!(q.where_patterns.len(), 1);
    }

    #[test]
    fn filters() {
        let q = parse_sparql(
            "PREFIX ex: <http://e/> SELECT ?s WHERE { ?s ex:elev ?e . \
             FILTER (?e > 2000 && CONTAINS(?s, \"joch\") || !BOUND(?e)) }",
        )
        .unwrap();
        assert_eq!(q.filters.len(), 1);
        assert!(matches!(q.filters[0], FilterExpr::Or(_, _)));
    }

    #[test]
    fn optional_blocks() {
        let q = parse_sparql(
            "PREFIX ex: <http://e/> SELECT ?s ?n WHERE { ?s a ex:Station . \
             OPTIONAL { ?s ex:name ?n } }",
        )
        .unwrap();
        assert_eq!(q.optionals.len(), 1);
        assert_eq!(q.where_patterns.len(), 1);
        // `a` expanded to rdf:type.
        assert_eq!(
            q.where_patterns[0].p,
            PatternTerm::Term(Term::iri("http://www.w3.org/1999/02/22-rdf-syntax-ns#type"))
        );
    }

    #[test]
    fn desc_order_and_offset() {
        let q = parse_sparql("SELECT ?s WHERE { ?s ?p ?o } ORDER BY DESC(?s) ?o LIMIT 5 OFFSET 2")
            .unwrap();
        assert_eq!(q.order_by, vec![("s".into(), true), ("o".into(), false)]);
        assert_eq!(q.offset, Some(2));
    }

    #[test]
    fn literals_in_patterns() {
        let q = parse_sparql(
            "PREFIX ex: <http://e/> SELECT ?s WHERE { ?s ex:name \"Davos\" . ?s ex:elev 1594 }",
        )
        .unwrap();
        assert_eq!(q.where_patterns[0].o, PatternTerm::Term(Term::lit("Davos")));
        assert_eq!(q.where_patterns[1].o, PatternTerm::Term(Term::int(1594)));
    }

    #[test]
    fn errors() {
        assert!(parse_sparql("SELECT WHERE { ?s ?p ?o }").is_err());
        assert!(parse_sparql("SELECT ?s { ?s ?p ?o }").is_err());
        assert!(
            parse_sparql("SELECT ?s WHERE { ?s ex:p ?o }").is_err(),
            "unknown prefix"
        );
        assert!(parse_sparql("SELECT ?s WHERE { ?s ?p ?o } garbage").is_err());
    }
}
