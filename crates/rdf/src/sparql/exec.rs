//! SPARQL BGP evaluation over the triple store.
//!
//! Execution is classic binding-extension: required patterns are greedily
//! reordered so the most selective (most-bound) pattern runs first, each
//! solution mapping is extended pattern by pattern through index lookups,
//! filters are applied as soon as their variables are bound, then OPTIONAL
//! blocks left-join additional bindings.

use super::ast::*;
use crate::error::{RdfError, Result};
use crate::store::TripleStore;
use crate::term::{Term, TermId};
use std::cmp::Ordering;
use std::collections::{HashMap, HashSet};

/// One solution mapping: variable name → bound term id.
pub type Binding = HashMap<String, TermId>;

/// Query solutions, decoded for consumption.
#[derive(Debug, Clone, PartialEq)]
pub struct Solutions {
    /// Output variable names in projection order.
    pub vars: Vec<String>,
    /// Rows of optional terms (None = unbound, possible under OPTIONAL).
    pub rows: Vec<Vec<Option<Term>>>,
}

impl Solutions {
    /// Number of solutions.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no solutions matched.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Extracts one column by variable name.
    pub fn column(&self, var: &str) -> Option<Vec<Option<Term>>> {
        let ix = self.vars.iter().position(|v| v == var)?;
        Some(self.rows.iter().map(|r| r[ix].clone()).collect())
    }
}

/// Evaluates a parsed SELECT query against a store.
pub fn evaluate(store: &TripleStore, query: &SelectQuery) -> Result<Solutions> {
    // 1. Required BGP with eager filters.
    let mut bindings = eval_bgp(
        store,
        &query.where_patterns,
        vec![Binding::new()],
        &query.filters,
    )?;

    // 1b. UNION branches: each branch extends the required bindings; the
    //     solution set is the deduplicated union across branches.
    if !query.union_branches.is_empty() {
        let mut merged: Vec<Binding> = Vec::new();
        let mut seen: HashSet<Vec<(String, TermId)>> = HashSet::new();
        for branch in &query.union_branches {
            let mut branch_filters = query.filters.clone();
            branch_filters.extend(branch.filters.iter().cloned());
            let extended = eval_bgp(store, &branch.patterns, bindings.clone(), &branch_filters)?;
            // Branch filters must hold even if their vars were bound by the
            // required patterns (eager application may have skipped them).
            let mut extended = extended;
            extended.retain_filters(store, &branch.filters)?;
            for b in extended {
                let mut canon: Vec<(String, TermId)> =
                    b.iter().map(|(k, v)| (k.clone(), *v)).collect();
                canon.sort();
                if seen.insert(canon) {
                    merged.push(b);
                }
            }
        }
        bindings = merged;
    }

    // 2. OPTIONAL blocks: left-join semantics.
    for block in &query.optionals {
        let mut next = Vec::with_capacity(bindings.len());
        for b in bindings {
            let extended = eval_bgp(store, block, vec![b.clone()], &[])?;
            if extended.is_empty() {
                next.push(b);
            } else {
                next.extend(extended);
            }
        }
        bindings = next;
    }

    // 3. Re-check filters that mention optional vars (BOUND, etc.). Filters
    //    whose vars were all required are already enforced; re-applying is
    //    idempotent and keeps BOUND on optionals correct.
    bindings.retain_filters(store, &query.filters)?;

    // 4a. Aggregation (grouped projection) short-circuits plain projection.
    if !query.aggregates.is_empty() {
        return aggregate_solutions(store, query, bindings);
    }

    // 4. Projection.
    let vars: Vec<String> = if query.vars.is_empty() {
        // SELECT *: all variables, sorted for determinism.
        let mut all: HashSet<String> = HashSet::new();
        for p in query
            .where_patterns
            .iter()
            .chain(query.optionals.iter().flatten())
            .chain(query.union_branches.iter().flat_map(|b| b.patterns.iter()))
        {
            all.extend(p.vars().map(str::to_owned));
        }
        let mut all: Vec<String> = all.into_iter().collect();
        all.sort();
        all
    } else {
        query.vars.clone()
    };

    let mut rows: Vec<Vec<Option<Term>>> = bindings
        .iter()
        .map(|b| {
            vars.iter()
                .map(|v| {
                    b.get(v)
                        .map(|id| store.dict().term(*id).expect("interned").clone())
                })
                .collect()
        })
        .collect();

    // 5. ORDER BY.
    if !query.order_by.is_empty() {
        let key_ix: Vec<(usize, bool)> = query
            .order_by
            .iter()
            .filter_map(|(v, desc)| vars.iter().position(|x| x == v).map(|ix| (ix, *desc)))
            .collect();
        rows.sort_by(|a, b| {
            for (ix, desc) in &key_ix {
                let ord = cmp_opt_terms(&a[*ix], &b[*ix]);
                if ord != Ordering::Equal {
                    return if *desc { ord.reverse() } else { ord };
                }
            }
            Ordering::Equal
        });
    }

    // 6. DISTINCT.
    if query.distinct {
        let mut seen = HashSet::new();
        rows.retain(|r| seen.insert(format!("{r:?}")));
    }

    // 7. OFFSET / LIMIT.
    let offset = query.offset.unwrap_or(0);
    if offset > 0 {
        rows.drain(..offset.min(rows.len()));
    }
    if let Some(limit) = query.limit {
        rows.truncate(limit);
    }

    Ok(Solutions { vars, rows })
}

/// Groups bindings by the GROUP BY keys and computes aggregate columns.
fn aggregate_solutions(
    store: &TripleStore,
    query: &SelectQuery,
    bindings: Vec<Binding>,
) -> Result<Solutions> {
    use super::ast::AggKind;
    let term_of = |id: TermId| store.dict().term(id).expect("interned").clone();
    // Group by the projected group keys, preserving first-seen order.
    let mut order: Vec<Vec<Option<TermId>>> = Vec::new();
    let mut groups: HashMap<Vec<Option<TermId>>, Vec<&Binding>> = HashMap::new();
    if query.group_by.is_empty() {
        // Global aggregate: one group (possibly empty).
        order.push(Vec::new());
        groups.insert(Vec::new(), bindings.iter().collect());
    } else {
        for b in &bindings {
            let key: Vec<Option<TermId>> =
                query.group_by.iter().map(|v| b.get(v).copied()).collect();
            groups
                .entry(key)
                .or_insert_with_key(|k| {
                    order.push(k.clone());
                    Vec::new()
                })
                .push(b);
        }
    }
    let mut vars: Vec<String> = query.vars.clone();
    vars.extend(query.aggregates.iter().map(|a| a.alias.clone()));
    let mut rows: Vec<Vec<Option<Term>>> = Vec::new();
    for key in order {
        let members = &groups[&key];
        let mut row: Vec<Option<Term>> = query
            .vars
            .iter()
            .map(|v| {
                // Parse-time validation pins every projected var to a group
                // key; an unmatched var projects as unbound rather than
                // panicking mid-query.
                let pos = query.group_by.iter().position(|g| g == v)?;
                key.get(pos).copied().flatten().map(term_of)
            })
            .collect();
        for agg in &query.aggregates {
            // Collect the aggregated values (bound only).
            let mut values: Vec<TermId> = match &agg.var {
                None => Vec::new(), // COUNT(*): row count below
                Some(v) => members.iter().filter_map(|b| b.get(v).copied()).collect(),
            };
            if agg.distinct {
                let mut seen = HashSet::new();
                values.retain(|t| seen.insert(*t));
            }
            let out = match agg.kind {
                AggKind::Count => Some(Term::int(match &agg.var {
                    None => members.len() as i64,
                    Some(_) => values.len() as i64,
                })),
                AggKind::Min => values.iter().map(|&id| term_of(id)).min_by(cmp_terms),
                AggKind::Max => values.iter().map(|&id| term_of(id)).max_by(cmp_terms),
                AggKind::Sum | AggKind::Avg => {
                    let nums: Vec<f64> = values
                        .iter()
                        .filter_map(|&id| term_of(id).as_number())
                        .collect();
                    if nums.is_empty() {
                        None
                    } else {
                        let sum: f64 = nums.iter().sum();
                        let v = if agg.kind == AggKind::Avg {
                            sum / nums.len() as f64
                        } else {
                            sum
                        };
                        // Integral results keep integer lexical form.
                        Some(if v.fract() == 0.0 && v.abs() < 9e15 {
                            Term::int(v as i64)
                        } else {
                            Term::double(v)
                        })
                    }
                }
            };
            row.push(out);
        }
        rows.push(row);
    }
    // ORDER BY over group keys / aliases.
    if !query.order_by.is_empty() {
        let key_ix: Vec<(usize, bool)> = query
            .order_by
            .iter()
            .filter_map(|(v, desc)| vars.iter().position(|x| x == v).map(|ix| (ix, *desc)))
            .collect();
        rows.sort_by(|a, b| {
            for (ix, desc) in &key_ix {
                let ord = cmp_opt_terms(&a[*ix], &b[*ix]);
                if ord != Ordering::Equal {
                    return if *desc { ord.reverse() } else { ord };
                }
            }
            Ordering::Equal
        });
    }
    let offset = query.offset.unwrap_or(0);
    if offset > 0 {
        rows.drain(..offset.min(rows.len()));
    }
    if let Some(limit) = query.limit {
        rows.truncate(limit);
    }
    Ok(Solutions { vars, rows })
}

trait RetainFilters {
    fn retain_filters(&mut self, store: &TripleStore, filters: &[FilterExpr]) -> Result<()>;
}

impl RetainFilters for Vec<Binding> {
    fn retain_filters(&mut self, store: &TripleStore, filters: &[FilterExpr]) -> Result<()> {
        let mut err = None;
        self.retain(|b| {
            filters.iter().all(|f| match eval_filter(store, f, b) {
                Ok(v) => v,
                Err(e) => {
                    err = Some(e);
                    false
                }
            })
        });
        match err {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }
}

/// Extends a set of bindings through a BGP, applying any filter as soon as
/// its variables are fully bound.
fn eval_bgp(
    store: &TripleStore,
    patterns: &[TriplePattern],
    start: Vec<Binding>,
    filters: &[FilterExpr],
) -> Result<Vec<Binding>> {
    // Greedy ordering: repeatedly pick the pattern with the most slots bound
    // (constants + already-bound vars).
    let mut remaining: Vec<&TriplePattern> = patterns.iter().collect();
    let mut bound_vars: HashSet<String> = start
        .first()
        .map(|b| b.keys().cloned().collect())
        .unwrap_or_default();
    let mut ordered = Vec::with_capacity(remaining.len());
    while !remaining.is_empty() {
        let (best_ix, _) = remaining
            .iter()
            .enumerate()
            .max_by_key(|(_, p)| {
                let score = |t: &PatternTerm| match t {
                    PatternTerm::Term(_) => 2usize,
                    PatternTerm::Var(v) if bound_vars.contains(v) => 1,
                    PatternTerm::Var(_) => 0,
                };
                score(&p.s) * 4 + score(&p.p) * 2 + score(&p.o)
            })
            .expect("non-empty");
        let p = remaining.remove(best_ix);
        bound_vars.extend(p.vars().map(str::to_owned));
        ordered.push(p);
    }

    let mut applied: HashSet<usize> = HashSet::new();
    let mut bindings = start;
    let mut avail: HashSet<String> = bindings
        .first()
        .map(|b| b.keys().cloned().collect())
        .unwrap_or_default();
    for p in ordered {
        let mut next = Vec::new();
        for b in &bindings {
            extend_one(store, p, b, &mut next)?;
        }
        bindings = next;
        avail.extend(p.vars().map(str::to_owned));
        // Apply any not-yet-applied filter whose vars are all available.
        for (ix, f) in filters.iter().enumerate() {
            if applied.contains(&ix) {
                continue;
            }
            if filter_vars(f).iter().all(|v| avail.contains(v)) {
                bindings.retain_filters(store, std::slice::from_ref(f))?;
                applied.insert(ix);
            }
        }
        if bindings.is_empty() {
            return Ok(bindings);
        }
    }
    Ok(bindings)
}

fn extend_one(
    store: &TripleStore,
    pattern: &TriplePattern,
    binding: &Binding,
    out: &mut Vec<Binding>,
) -> Result<()> {
    let slot = |t: &PatternTerm| -> Option<Option<TermId>> {
        match t {
            PatternTerm::Var(v) => Some(binding.get(v).copied()),
            PatternTerm::Term(term) => store.dict().id_of(term).map(Some),
        }
    };
    let (Some(s), Some(p), Some(o)) = (slot(&pattern.s), slot(&pattern.p), slot(&pattern.o)) else {
        return Ok(());
    };
    for (ts, tp, to) in store.match_ids((s, p, o)) {
        let mut b = binding.clone();
        let mut ok = true;
        for (slot_term, got) in [(&pattern.s, ts), (&pattern.p, tp), (&pattern.o, to)] {
            if let PatternTerm::Var(v) = slot_term {
                match b.get(v) {
                    Some(prev) if *prev != got => {
                        ok = false;
                        break;
                    }
                    Some(_) => {}
                    None => {
                        b.insert(v.clone(), got);
                    }
                }
            }
        }
        if ok {
            out.push(b);
        }
    }
    Ok(())
}

fn filter_vars(f: &FilterExpr) -> Vec<String> {
    fn operand_var(o: &Operand, out: &mut Vec<String>) {
        if let Operand::Var(v) = o {
            out.push(v.clone());
        }
    }
    let mut out = Vec::new();
    match f {
        FilterExpr::Cmp { lhs, rhs, .. } => {
            operand_var(lhs, &mut out);
            operand_var(rhs, &mut out);
        }
        FilterExpr::And(a, b) | FilterExpr::Or(a, b) => {
            out.extend(filter_vars(a));
            out.extend(filter_vars(b));
        }
        FilterExpr::Not(a) => out.extend(filter_vars(a)),
        FilterExpr::Contains(a, b) | FilterExpr::StrStarts(a, b) => {
            operand_var(a, &mut out);
            operand_var(b, &mut out);
        }
        FilterExpr::Regex(a, _) | FilterExpr::IsIri(a) | FilterExpr::IsLiteral(a) => {
            operand_var(a, &mut out)
        }
        FilterExpr::Bound(v) => out.push(v.clone()),
    }
    out
}

fn eval_filter(store: &TripleStore, f: &FilterExpr, b: &Binding) -> Result<bool> {
    let resolve = |o: &Operand| -> Result<Option<Term>> {
        match o {
            Operand::Var(v) => Ok(b
                .get(v)
                .map(|id| store.dict().term(*id).expect("interned").clone())),
            Operand::Const(t) => Ok(Some(t.clone())),
        }
    };
    Ok(match f {
        FilterExpr::Bound(v) => b.contains_key(v),
        FilterExpr::And(a, c) => eval_filter(store, a, b)? && eval_filter(store, c, b)?,
        FilterExpr::Or(a, c) => eval_filter(store, a, b)? || eval_filter(store, c, b)?,
        FilterExpr::Not(a) => !eval_filter(store, a, b)?,
        FilterExpr::Cmp { op, lhs, rhs } => {
            let (Some(l), Some(r)) = (resolve(lhs)?, resolve(rhs)?) else {
                return Ok(false); // unbound in comparison → error in SPARQL; we drop
            };
            let ord = cmp_terms(&l, &r);
            match op {
                CmpOp::Eq => ord == Ordering::Equal && comparable_eq(&l, &r),
                CmpOp::Neq => !(ord == Ordering::Equal && comparable_eq(&l, &r)),
                CmpOp::Lt => ord == Ordering::Less,
                CmpOp::Le => ord != Ordering::Greater,
                CmpOp::Gt => ord == Ordering::Greater,
                CmpOp::Ge => ord != Ordering::Less,
            }
        }
        FilterExpr::Contains(a, c) => {
            let (Some(l), Some(r)) = (resolve(a)?, resolve(c)?) else {
                return Ok(false);
            };
            term_str(&l).contains(&term_str(&r))
        }
        FilterExpr::StrStarts(a, c) => {
            let (Some(l), Some(r)) = (resolve(a)?, resolve(c)?) else {
                return Ok(false);
            };
            term_str(&l).starts_with(&term_str(&r))
        }
        FilterExpr::Regex(a, pat) => {
            let Some(l) = resolve(a)? else {
                return Ok(false);
            };
            regex_lite(pat, &term_str(&l))
                .map_err(|m| RdfError::Eval(format!("bad REGEX pattern `{pat}`: {m}")))?
        }
        FilterExpr::IsIri(a) => resolve(a)?.is_some_and(|t| t.is_iri()),
        FilterExpr::IsLiteral(a) => resolve(a)?.is_some_and(|t| t.is_literal()),
    })
}

/// Equality comparability guard: numbers compare to numbers, otherwise exact
/// term comparison. `cmp_terms` already handles ordering; this prevents
/// `"abc" = <abc>` from counting as equal via string fallback.
fn comparable_eq(l: &Term, r: &Term) -> bool {
    match (l.as_number(), r.as_number()) {
        (Some(_), Some(_)) => true,
        _ => std::mem::discriminant(l) == std::mem::discriminant(r),
    }
}

/// String form used by CONTAINS/STRSTARTS/REGEX (IRI text or literal value).
fn term_str(t: &Term) -> String {
    match t {
        Term::Iri(i) => i.clone(),
        Term::Literal { value, .. } => value.clone(),
        Term::Blank(b) => b.clone(),
    }
}

/// Orders two terms: numerically when both parse as numbers, else by their
/// string form.
pub fn cmp_terms(l: &Term, r: &Term) -> Ordering {
    match (l.as_number(), r.as_number()) {
        (Some(a), Some(b)) => a.partial_cmp(&b).unwrap_or(Ordering::Equal),
        _ => term_str(l).cmp(&term_str(r)),
    }
}

fn cmp_opt_terms(l: &Option<Term>, r: &Option<Term>) -> Ordering {
    match (l, r) {
        (None, None) => Ordering::Equal,
        (None, Some(_)) => Ordering::Less,
        (Some(_), None) => Ordering::Greater,
        (Some(a), Some(b)) => cmp_terms(a, b),
    }
}

/// A deliberately tiny regex engine: supports `^`, `$`, `.`, `X*`, `.*` and
/// literal characters — the subset the demo UI's REGEX filters use.
fn regex_lite(pattern: &str, text: &str) -> std::result::Result<bool, String> {
    let pat: Vec<char> = pattern.chars().collect();
    let txt: Vec<char> = text.chars().collect();
    let (anchored_start, pat) = match pat.split_first() {
        Some(('^', rest)) => (true, rest.to_vec()),
        _ => (false, pat),
    };
    let (anchored_end, pat) = match pat.split_last() {
        Some(('$', rest)) => {
            // `\$`-style escapes are out of scope; a trailing `*$` is fine.
            (true, rest.to_vec())
        }
        _ => (false, pat),
    };

    fn match_here(pat: &[char], txt: &[char], anchored_end: bool) -> bool {
        match pat.first() {
            None => !anchored_end || txt.is_empty(),
            Some(&c) => {
                if pat.get(1) == Some(&'*') {
                    // c* — zero or more.
                    let rest = &pat[2..];
                    let mut k = 0;
                    loop {
                        if match_here(rest, &txt[k..], anchored_end) {
                            return true;
                        }
                        if k < txt.len() && (c == '.' || txt[k] == c) {
                            k += 1;
                        } else {
                            return false;
                        }
                    }
                }
                if let Some(&t) = txt.first() {
                    (c == '.' || c == t) && match_here(&pat[1..], &txt[1..], anchored_end)
                } else {
                    false
                }
            }
        }
    }

    if pat.contains(&'\\')
        || pat
            .iter()
            .zip(pat.iter().skip(1))
            .any(|(a, b)| *a == '*' && *b == '*')
    {
        return Err("unsupported construct".into());
    }
    if anchored_start {
        Ok(match_here(&pat, &txt, anchored_end))
    } else {
        Ok((0..=txt.len()).any(|k| match_here(&pat, &txt[k..], anchored_end)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sparql::parser::parse_sparql;
    use crate::turtle::load_turtle;

    fn store() -> TripleStore {
        let mut st = TripleStore::new();
        load_turtle(
            &mut st,
            r#"
            @prefix ex: <http://e/> .
            ex:wfj a ex:Station ; ex:name "Weissfluhjoch" ; ex:elev 2693 ; ex:canton "GR" .
            ex:davos a ex:Station ; ex:name "Davos" ; ex:elev 1594 ; ex:canton "GR" .
            ex:jfj a ex:Station ; ex:name "Jungfraujoch" ; ex:elev 3571 ; ex:canton "BE" .
            ex:t1 a ex:Sensor ; ex:at ex:wfj ; ex:kind "temperature" .
            ex:t2 a ex:Sensor ; ex:at ex:wfj ; ex:kind "wind" .
            ex:t3 a ex:Sensor ; ex:at ex:davos ; ex:kind "temperature" .
            "#,
        )
        .unwrap();
        st
    }

    fn run(st: &TripleStore, q: &str) -> Solutions {
        evaluate(st, &parse_sparql(q).unwrap()).unwrap()
    }

    #[test]
    fn single_pattern() {
        let st = store();
        let sols = run(
            &st,
            "PREFIX ex: <http://e/> SELECT ?s WHERE { ?s a ex:Station } ORDER BY ?s",
        );
        assert_eq!(sols.len(), 3);
        assert_eq!(sols.vars, vec!["s"]);
    }

    #[test]
    fn join_two_patterns() {
        let st = store();
        let sols = run(
            &st,
            "PREFIX ex: <http://e/> SELECT ?name ?kind WHERE { \
             ?sensor ex:at ?station . ?station ex:name ?name . ?sensor ex:kind ?kind } \
             ORDER BY ?name ?kind",
        );
        assert_eq!(sols.len(), 3);
        assert_eq!(sols.rows[0][0], Some(Term::lit("Davos")));
        assert_eq!(sols.rows[1][1], Some(Term::lit("temperature")));
    }

    #[test]
    fn numeric_filter() {
        let st = store();
        let sols = run(
            &st,
            "PREFIX ex: <http://e/> SELECT ?name WHERE { \
             ?s ex:elev ?e . ?s ex:name ?name . FILTER(?e >= 2000) } ORDER BY ?name",
        );
        let names: Vec<_> = sols.rows.iter().map(|r| r[0].clone().unwrap()).collect();
        assert_eq!(
            names,
            vec![Term::lit("Jungfraujoch"), Term::lit("Weissfluhjoch")]
        );
    }

    #[test]
    fn string_filters() {
        let st = store();
        let sols = run(
            &st,
            "PREFIX ex: <http://e/> SELECT ?s WHERE { ?s ex:name ?n . \
             FILTER(CONTAINS(?n, \"joch\") && ?n != \"Jungfraujoch\") }",
        );
        assert_eq!(sols.len(), 1);
        let sols = run(
            &st,
            "PREFIX ex: <http://e/> SELECT ?s WHERE { ?s ex:name ?n . \
             FILTER(STRSTARTS(?n, \"Da\")) }",
        );
        assert_eq!(sols.len(), 1);
    }

    #[test]
    fn regex_filter() {
        let st = store();
        let sols = run(
            &st,
            "PREFIX ex: <http://e/> SELECT ?n WHERE { ?s ex:name ?n . FILTER(REGEX(?n, \"^D.*s$\")) }",
        );
        assert_eq!(sols.len(), 1);
        assert_eq!(sols.rows[0][0], Some(Term::lit("Davos")));
    }

    #[test]
    fn optional_left_join() {
        let mut st = store();
        load_turtle(
            &mut st,
            "@prefix ex: <http://e/> .\nex:payerne a ex:Station .",
        )
        .unwrap();
        let sols = run(
            &st,
            "PREFIX ex: <http://e/> SELECT ?s ?name WHERE { ?s a ex:Station . \
             OPTIONAL { ?s ex:name ?name } } ORDER BY ?s",
        );
        assert_eq!(sols.len(), 4);
        // payerne has no name → None in that column.
        let unnamed = sols.rows.iter().filter(|r| r[1].is_none()).count();
        assert_eq!(unnamed, 1);
    }

    #[test]
    fn bound_filter_on_optional() {
        let mut st = store();
        load_turtle(
            &mut st,
            "@prefix ex: <http://e/> .\nex:payerne a ex:Station .",
        )
        .unwrap();
        let sols = run(
            &st,
            "PREFIX ex: <http://e/> SELECT ?s WHERE { ?s a ex:Station . \
             OPTIONAL { ?s ex:name ?name } FILTER(!BOUND(?name)) }",
        );
        assert_eq!(sols.len(), 1);
        assert_eq!(sols.rows[0][0], Some(Term::iri("http://e/payerne")));
    }

    #[test]
    fn distinct_limit_offset() {
        let st = store();
        let sols = run(
            &st,
            "PREFIX ex: <http://e/> SELECT DISTINCT ?c WHERE { ?s ex:canton ?c } ORDER BY ?c",
        );
        assert_eq!(sols.len(), 2);
        let sols = run(
            &st,
            "PREFIX ex: <http://e/> SELECT ?s WHERE { ?s a ex:Station } ORDER BY ?s LIMIT 1 OFFSET 1",
        );
        assert_eq!(sols.len(), 1);
    }

    #[test]
    fn select_star_collects_all_vars() {
        let st = store();
        let sols = run(
            &st,
            "PREFIX ex: <http://e/> SELECT * WHERE { ?s ex:kind ?k }",
        );
        assert_eq!(sols.vars, vec!["k", "s"]);
        assert_eq!(sols.len(), 3);
    }

    #[test]
    fn shared_variable_constrains() {
        // ?x ex:at ?x can never match (sensor != station).
        let st = store();
        let sols = run(
            &st,
            "PREFIX ex: <http://e/> SELECT ?x WHERE { ?x ex:at ?x }",
        );
        assert!(sols.is_empty());
    }

    #[test]
    fn unknown_constant_matches_nothing() {
        let st = store();
        let sols = run(
            &st,
            "PREFIX ex: <http://e/> SELECT ?s WHERE { ?s ex:name \"Zermatt\" }",
        );
        assert!(sols.is_empty());
    }

    #[test]
    fn order_desc_numeric() {
        let st = store();
        let sols = run(
            &st,
            "PREFIX ex: <http://e/> SELECT ?n ?e WHERE { ?s ex:name ?n . ?s ex:elev ?e } \
             ORDER BY DESC(?e)",
        );
        assert_eq!(sols.rows[0][0], Some(Term::lit("Jungfraujoch")));
        assert_eq!(sols.rows[2][0], Some(Term::lit("Davos")));
    }

    #[test]
    fn isiri_isliteral() {
        let st = store();
        let sols = run(
            &st,
            "PREFIX ex: <http://e/> SELECT ?o WHERE { ex:t1 ?p ?o . FILTER(isIRI(?o)) } ORDER BY ?o",
        );
        assert_eq!(sols.len(), 2); // ex:Sensor (type) and ex:wfj (at)
        let sols = run(
            &st,
            "PREFIX ex: <http://e/> SELECT ?o WHERE { ex:t1 ?p ?o . FILTER(isLiteral(?o)) }",
        );
        assert_eq!(sols.len(), 1); // "temperature"
    }

    #[test]
    fn regex_lite_engine() {
        assert!(regex_lite("^abc$", "abc").unwrap());
        assert!(!regex_lite("^abc$", "abcd").unwrap());
        assert!(regex_lite("a.c", "xabcx").unwrap());
        assert!(regex_lite("ab*c", "ac").unwrap());
        assert!(regex_lite("ab*c", "abbbc").unwrap());
        assert!(regex_lite(".*joch", "Weissfluhjoch").unwrap());
        assert!(regex_lite("", "anything").unwrap());
        assert!(regex_lite("\\d", "5").is_err());
    }
}
