//! SPARQL abstract syntax.

use crate::term::Term;

/// A subject/predicate/object slot: a concrete term or a variable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PatternTerm {
    /// Concrete RDF term.
    Term(Term),
    /// Variable (`?name`, stored without the `?`).
    Var(String),
}

impl PatternTerm {
    /// Variable name if this is a variable.
    pub fn var(&self) -> Option<&str> {
        match self {
            PatternTerm::Var(v) => Some(v),
            PatternTerm::Term(_) => None,
        }
    }
}

/// One triple pattern.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TriplePattern {
    /// Subject slot.
    pub s: PatternTerm,
    /// Predicate slot.
    pub p: PatternTerm,
    /// Object slot.
    pub o: PatternTerm,
}

impl TriplePattern {
    /// Variables mentioned by the pattern.
    pub fn vars(&self) -> impl Iterator<Item = &str> {
        [&self.s, &self.p, &self.o]
            .into_iter()
            .filter_map(|t| t.var())
    }
}

/// FILTER expression.
#[derive(Debug, Clone, PartialEq)]
pub enum FilterExpr {
    /// Comparison between two operands.
    Cmp {
        /// Operator.
        op: CmpOp,
        /// Left operand.
        lhs: Operand,
        /// Right operand.
        rhs: Operand,
    },
    /// Logical AND.
    And(Box<FilterExpr>, Box<FilterExpr>),
    /// Logical OR.
    Or(Box<FilterExpr>, Box<FilterExpr>),
    /// Logical NOT.
    Not(Box<FilterExpr>),
    /// `CONTAINS(?v, "s")` — substring test on the string form.
    Contains(Operand, Operand),
    /// `STRSTARTS(?v, "s")`.
    StrStarts(Operand, Operand),
    /// `REGEX(?v, "pattern")` — anchored-wildcard subset (`^`, `$`, `.`, `.*`).
    Regex(Operand, String),
    /// `BOUND(?v)`.
    Bound(String),
    /// `isIRI(?v)` / `isLiteral(?v)`.
    IsIri(Operand),
    /// True if operand is a literal.
    IsLiteral(Operand),
}

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum CmpOp {
    Eq,
    Neq,
    Lt,
    Le,
    Gt,
    Ge,
}

/// Operand of a filter: a variable or a constant term.
#[derive(Debug, Clone, PartialEq)]
pub enum Operand {
    /// Variable reference.
    Var(String),
    /// Constant term.
    Const(Term),
}

/// Aggregate function over a variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum AggKind {
    Count,
    Sum,
    Avg,
    Min,
    Max,
}

/// One aggregate projection: `(COUNT(?x) AS ?n)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Aggregate {
    /// Aggregate function.
    pub kind: AggKind,
    /// Aggregated variable; `None` means `COUNT(*)`.
    pub var: Option<String>,
    /// Output variable name (the `AS ?n` alias).
    pub alias: String,
    /// DISTINCT inside the aggregate.
    pub distinct: bool,
}

/// One `{ … }` branch of a UNION: its patterns plus branch-scoped filters.
#[derive(Debug, Clone, PartialEq)]
pub struct UnionBranch {
    /// The branch's basic graph pattern.
    pub patterns: Vec<TriplePattern>,
    /// FILTERs written inside the branch (apply to this branch only).
    pub filters: Vec<FilterExpr>,
}

/// A parsed SELECT query.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectQuery {
    /// DISTINCT flag.
    pub distinct: bool,
    /// Selected variables; empty means `SELECT *` unless aggregates are
    /// present.
    pub vars: Vec<String>,
    /// Aggregate projections; when non-empty the query is grouped.
    pub aggregates: Vec<Aggregate>,
    /// GROUP BY variables.
    pub group_by: Vec<String>,
    /// Required basic graph pattern.
    pub where_patterns: Vec<TriplePattern>,
    /// FILTER constraints.
    pub filters: Vec<FilterExpr>,
    /// OPTIONAL blocks, each a BGP (left-joined in order).
    pub optionals: Vec<Vec<TriplePattern>>,
    /// UNION alternatives; solutions are the union over branches joined
    /// with the required patterns. Empty means no UNION clause.
    pub union_branches: Vec<UnionBranch>,
    /// ORDER BY keys: (variable, descending).
    pub order_by: Vec<(String, bool)>,
    /// LIMIT.
    pub limit: Option<usize>,
    /// OFFSET.
    pub offset: Option<usize>,
}
