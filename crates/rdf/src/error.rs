//! Error types for the RDF store and SPARQL engine.

use std::fmt;

/// Errors produced by the RDF crate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RdfError {
    /// Turtle parsing failed.
    Turtle(String),
    /// SPARQL lexing/parsing failed.
    Sparql(String),
    /// SPARQL evaluation failed.
    Eval(String),
}

impl fmt::Display for RdfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RdfError::Turtle(m) => write!(f, "turtle parse error: {m}"),
            RdfError::Sparql(m) => write!(f, "sparql parse error: {m}"),
            RdfError::Eval(m) => write!(f, "sparql evaluation error: {m}"),
        }
    }
}

impl std::error::Error for RdfError {}

/// Result alias for the RDF crate.
pub type Result<T> = std::result::Result<T, RdfError>;
