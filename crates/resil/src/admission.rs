//! Bounded in-flight admission control with RAII permits.

use sensormeta_obs as obs;
use std::sync::atomic::{AtomicUsize, Ordering};

/// A bounded in-flight request gauge. The server acquires a [`Permit`] per
/// admitted request and sheds (429) when the bound is reached, so a burst
/// cannot queue unbounded work behind the compute layers.
#[derive(Debug)]
pub struct Admission {
    max: usize,
    inflight: AtomicUsize,
}

impl Admission {
    /// Creates a gauge admitting at most `max` concurrent requests.
    /// `max == 0` means unbounded (admission control off).
    pub fn new(max: usize) -> Admission {
        Admission {
            max,
            inflight: AtomicUsize::new(0),
        }
    }

    /// Tries to admit one request. `None` means the caller must shed.
    pub fn try_acquire(&self) -> Option<Permit<'_>> {
        let n = self.inflight.fetch_add(1, Ordering::AcqRel) + 1;
        if self.max != 0 && n > self.max {
            self.inflight.fetch_sub(1, Ordering::AcqRel);
            obs::counter("resil_admission_shed_total").inc();
            return None;
        }
        obs::counter("resil_admission_admitted_total").inc();
        obs::gauge("resil_admission_inflight").set(n as f64);
        Some(Permit { owner: self })
    }

    /// Requests currently holding permits.
    pub fn in_flight(&self) -> usize {
        self.inflight.load(Ordering::Acquire)
    }

    /// The configured bound (0 = unbounded).
    pub fn capacity(&self) -> usize {
        self.max
    }
}

/// RAII admission permit; dropping it frees the slot.
#[derive(Debug)]
pub struct Permit<'a> {
    owner: &'a Admission,
}

impl Drop for Permit<'_> {
    fn drop(&mut self) {
        let n = self.owner.inflight.fetch_sub(1, Ordering::AcqRel) - 1;
        obs::gauge("resil_admission_inflight").set(n as f64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bound_enforced_and_released() {
        let a = Admission::new(2);
        let p1 = a.try_acquire().expect("first admitted");
        let p2 = a.try_acquire().expect("second admitted");
        assert!(a.try_acquire().is_none(), "third sheds");
        assert_eq!(a.in_flight(), 2);
        drop(p1);
        let p3 = a.try_acquire().expect("freed slot re-admits");
        drop(p2);
        drop(p3);
        assert_eq!(a.in_flight(), 0);
    }

    #[test]
    fn zero_means_unbounded() {
        let a = Admission::new(0);
        let permits: Vec<_> = (0..64).map(|_| a.try_acquire()).collect();
        assert!(permits.iter().all(Option::is_some));
    }
}
