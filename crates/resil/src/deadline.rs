//! Absolute per-request deadlines with an ambient thread-local scope.

use std::cell::Cell;
use std::fmt;
use std::time::{Duration, Instant};

/// An absolute point in time by which a request's compute must finish.
///
/// `Deadline::NONE` means "unbounded". The type is `Copy` and compares by
/// instant, so `min` composes nested budgets correctly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Deadline(Option<Instant>);

impl Deadline {
    /// The unbounded deadline: never expires.
    pub const NONE: Deadline = Deadline(None);

    /// A deadline `budget` from now.
    pub fn within(budget: Duration) -> Deadline {
        Deadline(Instant::now().checked_add(budget))
    }

    /// A deadline at an absolute instant.
    pub fn at(when: Instant) -> Deadline {
        Deadline(Some(when))
    }

    /// An optional budget from now: `None` means unbounded.
    pub fn from_budget(budget: Option<Duration>) -> Deadline {
        match budget {
            Some(b) => Deadline::within(b),
            None => Deadline::NONE,
        }
    }

    /// True when the deadline has passed.
    pub fn expired(&self) -> bool {
        matches!(self.0, Some(t) if Instant::now() >= t)
    }

    /// Time left before expiry. `None` when unbounded; `Some(ZERO)` when
    /// already expired.
    pub fn remaining(&self) -> Option<Duration> {
        self.0.map(|t| t.saturating_duration_since(Instant::now()))
    }

    /// The tighter of two deadlines (unbounded loses to any bound).
    pub fn min(self, other: Deadline) -> Deadline {
        match (self.0, other.0) {
            (Some(a), Some(b)) => Deadline(Some(a.min(b))),
            (Some(a), None) => Deadline(Some(a)),
            (None, b) => Deadline(b),
        }
    }

    /// True when no bound is set.
    pub fn is_none(&self) -> bool {
        self.0.is_none()
    }
}

/// Why a cooperative [`checkpoint`](crate::checkpoint) aborted the work.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Interrupt {
    /// The ambient [`Deadline`] passed; the caller should stop burning CPU
    /// and unwind with a timeout-class error.
    DeadlineExceeded,
    /// The [`chaos`](crate::chaos) plan injected a backend error at this
    /// site (deterministic fault injection for the chaos harness).
    Fault {
        /// The checkpoint site that faulted.
        site: &'static str,
    },
}

impl fmt::Display for Interrupt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Interrupt::DeadlineExceeded => write!(f, "deadline exceeded"),
            Interrupt::Fault { site } => write!(f, "injected fault at {site}"),
        }
    }
}

impl std::error::Error for Interrupt {}

thread_local! {
    static CURRENT: Cell<Deadline> = const { Cell::new(Deadline::NONE) };
}

/// The ambient deadline for the current thread (set by [`deadline_scope`]).
pub fn current_deadline() -> Deadline {
    CURRENT.with(Cell::get)
}

/// RAII guard restoring the previous ambient deadline on drop.
#[derive(Debug)]
pub struct DeadlineScope {
    prev: Deadline,
}

impl Drop for DeadlineScope {
    fn drop(&mut self) {
        CURRENT.with(|c| c.set(self.prev));
    }
}

/// Enters a deadline scope on the current thread. Nested scopes tighten:
/// the effective deadline is the `min` of `deadline` and the enclosing
/// scope, so callees can never extend a caller's budget.
pub fn deadline_scope(deadline: Deadline) -> DeadlineScope {
    CURRENT.with(|c| {
        let prev = c.get();
        c.set(prev.min(deadline));
        DeadlineScope { prev }
    })
}

/// Clears the ambient deadline for the duration of the returned guard.
///
/// Write paths use this: a rebuild interrupted halfway would leave derived
/// structures (index, ranks, recommender) inconsistent with the stores, so
/// mutations run to completion regardless of the request budget.
pub fn shield() -> DeadlineScope {
    CURRENT.with(|c| {
        let prev = c.get();
        c.set(Deadline::NONE);
        DeadlineScope { prev }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_never_expires() {
        assert!(!Deadline::NONE.expired());
        assert_eq!(Deadline::NONE.remaining(), None);
        assert!(Deadline::NONE.is_none());
    }

    #[test]
    fn within_expires() {
        let d = Deadline::within(Duration::ZERO);
        std::thread::sleep(Duration::from_millis(2));
        assert!(d.expired());
        assert_eq!(d.remaining(), Some(Duration::ZERO));
    }

    #[test]
    fn min_prefers_bound() {
        let far = Deadline::within(Duration::from_secs(60));
        assert_eq!(Deadline::NONE.min(far), far);
        assert_eq!(far.min(Deadline::NONE), far);
        let near = Deadline::within(Duration::from_millis(1));
        assert_eq!(far.min(near), near);
    }

    #[test]
    fn scopes_nest_and_restore() {
        assert!(current_deadline().is_none());
        let outer = Deadline::within(Duration::from_secs(60));
        {
            let _a = deadline_scope(outer);
            assert_eq!(current_deadline(), outer);
            {
                // An inner scope cannot extend the budget.
                let _b = deadline_scope(Deadline::within(Duration::from_secs(600)));
                assert_eq!(current_deadline(), outer);
            }
            {
                let near = Deadline::within(Duration::from_millis(1));
                let _c = deadline_scope(near);
                assert_eq!(current_deadline(), near);
            }
            assert_eq!(current_deadline(), outer);
        }
        assert!(current_deadline().is_none());
    }
}
