//! # sensormeta-resil
//!
//! Resilience primitives threaded through the whole serving path:
//!
//! - [`Deadline`] — an absolute per-request compute budget, carried as an
//!   **ambient** thread-local so deep call stacks (postings scans, solver
//!   iterations, clique enumeration) can observe it without every signature
//!   growing a parameter. Scopes nest and always tighten: an inner
//!   [`deadline_scope`] can only shorten the budget, never extend it, and
//!   [`shield`] clears it for write paths whose partial execution would
//!   corrupt derived state.
//! - [`checkpoint`] — the cooperative cancellation point long loops call
//!   every N iterations. It observes the ambient deadline **and** the
//!   deterministic [`chaos`] fault plan, so the same call sites double as
//!   fault-injection sites for the chaos harness.
//! - [`chaos`] — named-site fault injection (latency, errors, panics) with
//!   deterministic per-site hit counters, extending the PR 2 `FaultVfs`
//!   idea from the storage layer to the compute layer.
//! - [`Admission`] — a bounded in-flight gauge with RAII permits; the
//!   server sheds load (429) when it is full.
//! - [`Breaker`] — a per-backend closed/open/half-open circuit breaker so
//!   a persistently failing compute path stops burning CPU and the server
//!   can degrade to stale cached answers.
//!
//! Everything here is zero-external-dependency and obs-instrumented; the
//! hot path of [`checkpoint`] with no deadline and no chaos plan installed
//! is one thread-local read plus one relaxed atomic load.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod admission;
mod breaker;
pub mod chaos;
mod deadline;

pub use admission::{Admission, Permit};
pub use breaker::{Breaker, BreakerConfig, BreakerState};
pub use deadline::{current_deadline, deadline_scope, shield, Deadline, DeadlineScope, Interrupt};

use sensormeta_obs as obs;

/// Cooperative cancellation + fault-injection point.
///
/// Long compute loops call this every N iterations with a stable `site`
/// name. It fails with [`Interrupt::DeadlineExceeded`] once the ambient
/// [`Deadline`] has passed, and with [`Interrupt::Fault`] (or injected
/// latency / an injected panic) when the [`chaos`] plan says this hit of
/// this site should fault. With no deadline set and no chaos installed it
/// is cheap enough for inner loops.
pub fn checkpoint(site: &'static str) -> Result<(), Interrupt> {
    chaos::hit(site)?;
    if current_deadline().expired() {
        obs::counter("resil_deadline_trips_total").inc();
        return Err(Interrupt::DeadlineExceeded);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn checkpoint_ok_without_deadline_or_chaos() {
        assert_eq!(checkpoint("resil_test_site_idle"), Ok(()));
    }

    #[test]
    fn checkpoint_trips_expired_deadline() {
        let _scope = deadline_scope(Deadline::within(Duration::ZERO));
        std::thread::sleep(Duration::from_millis(2));
        assert_eq!(
            checkpoint("resil_test_site_deadline"),
            Err(Interrupt::DeadlineExceeded)
        );
    }

    #[test]
    fn shield_suppresses_deadline() {
        let _outer = deadline_scope(Deadline::within(Duration::ZERO));
        std::thread::sleep(Duration::from_millis(2));
        let _shield = shield();
        assert_eq!(checkpoint("resil_test_site_shield"), Ok(()));
    }
}
