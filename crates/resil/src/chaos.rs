//! Deterministic compute-layer fault injection.
//!
//! PR 2 introduced `FaultVfs`: deterministic, countdown-scheduled I/O
//! faults for crash testing the storage layer. This module extends the
//! idea to the compute layer: every [`checkpoint`](crate::checkpoint) site
//! is also a *chaos site*, and an installed [`Fault`] plan decides — from
//! a per-site hit counter, never from wall-clock or randomness — which
//! hits observe injected latency, an injected backend error, or an
//! injected panic. Determinism keeps the chaos harness debuggable: a
//! failing run replays exactly.
//!
//! The plan is process-global (the serving path crosses crate boundaries)
//! and empty by default; `hit()` with an empty plan is a single relaxed
//! atomic load. Tests install programmatically via [`install`]; operators
//! can set `SENSORMETA_CHAOS` (see [`parse_spec`]) and arm it with
//! [`install_from_env`].

use crate::deadline::Interrupt;
use parking_lot::Mutex;
use sensormeta_obs as obs;
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;
use std::time::Duration;

/// What an injected fault does to the hit that triggers it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Sleep this long, then continue normally (slow backend).
    Latency(Duration),
    /// Fail the checkpoint with [`Interrupt::Fault`] (failing backend).
    Error,
    /// Panic at the checkpoint (crashing handler thread).
    Panic,
}

/// A deterministic fault schedule for one site: fires on every hit `n`
/// (0-based, per-site) where `n % every == offset`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fault {
    /// The effect when the schedule fires.
    pub kind: FaultKind,
    /// Period of the schedule; `1` fires on every hit. Must be ≥ 1.
    pub every: u64,
    /// Phase within the period; reduced modulo `every`.
    pub offset: u64,
}

impl Fault {
    /// A fault firing on every hit.
    pub fn always(kind: FaultKind) -> Fault {
        Fault {
            kind,
            every: 1,
            offset: 0,
        }
    }

    fn fires_on(&self, hit: u64) -> bool {
        let every = self.every.max(1);
        hit % every == self.offset % every
    }
}

#[derive(Default)]
struct Site {
    hits: u64,
    faults: Vec<Fault>,
}

/// Number of installed faults; `hit()`'s fast path checks it for zero.
static ACTIVE: AtomicUsize = AtomicUsize::new(0);

fn plan() -> &'static Mutex<HashMap<String, Site>> {
    static PLAN: OnceLock<Mutex<HashMap<String, Site>>> = OnceLock::new();
    PLAN.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Installs a fault at a named checkpoint site. Multiple faults on one
/// site are checked in installation order; the first whose schedule fires
/// wins.
pub fn install(site: &str, fault: Fault) {
    plan()
        .lock()
        .entry(site.to_owned())
        .or_default()
        .faults
        .push(fault);
    ACTIVE.fetch_add(1, Ordering::SeqCst);
}

/// Removes every installed fault and resets all per-site hit counters.
pub fn clear() {
    plan().lock().clear();
    ACTIVE.store(0, Ordering::SeqCst);
}

/// Number of currently installed faults (0 = chaos disarmed).
pub fn installed() -> usize {
    ACTIVE.load(Ordering::SeqCst)
}

/// Records one hit of `site` against the plan. Called by
/// [`checkpoint`](crate::checkpoint); not usually called directly.
pub fn hit(site: &'static str) -> Result<(), Interrupt> {
    if ACTIVE.load(Ordering::Relaxed) == 0 {
        return Ok(());
    }
    let fired = {
        let mut plan = plan().lock();
        match plan.get_mut(site) {
            None => None,
            Some(s) => {
                let n = s.hits;
                s.hits += 1;
                s.faults.iter().find(|f| f.fires_on(n)).map(|f| f.kind)
            }
        }
    };
    // Effects run outside the plan lock: a latency injection must not
    // serialize unrelated sites behind it.
    match fired {
        None => Ok(()),
        Some(FaultKind::Latency(d)) => {
            obs::counter("resil_chaos_latency_injected_total").inc();
            std::thread::sleep(d);
            Ok(())
        }
        Some(FaultKind::Error) => {
            obs::counter("resil_chaos_errors_injected_total").inc();
            Err(Interrupt::Fault { site })
        }
        Some(FaultKind::Panic) => {
            obs::counter("resil_chaos_panics_injected_total").inc();
            // The entire point of this fault kind is an unwinding panic.
            // xlint: allow(no-unwrap)
            panic!("chaos: injected panic at site `{site}`");
        }
    }
}

/// Parses a chaos spec string into `(site, fault)` pairs.
///
/// Grammar (comma-separated entries):
///
/// ```text
/// site=error            inject an error on every hit
/// site=panic@5          panic on hits 0, 5, 10, …
/// site=latency:250@3+1  sleep 250ms on hits 1, 4, 7, …
/// ```
pub fn parse_spec(spec: &str) -> Result<Vec<(String, Fault)>, String> {
    let mut out = Vec::new();
    for entry in spec.split(',').map(str::trim).filter(|e| !e.is_empty()) {
        let (site, rhs) = entry
            .split_once('=')
            .ok_or_else(|| format!("chaos entry `{entry}`: expected site=kind"))?;
        let (kind_str, sched) = match rhs.split_once('@') {
            Some((k, s)) => (k, Some(s)),
            None => (rhs, None),
        };
        let kind = match kind_str.split_once(':') {
            Some(("latency", ms)) => {
                let ms: u64 = ms
                    .parse()
                    .map_err(|_| format!("chaos entry `{entry}`: bad latency ms `{ms}`"))?;
                FaultKind::Latency(Duration::from_millis(ms))
            }
            None if kind_str == "error" => FaultKind::Error,
            None if kind_str == "panic" => FaultKind::Panic,
            _ => return Err(format!("chaos entry `{entry}`: unknown kind `{kind_str}`")),
        };
        let (every, offset) = match sched {
            None => (1, 0),
            Some(s) => {
                let (e, o) = match s.split_once('+') {
                    Some((e, o)) => (e, Some(o)),
                    None => (s, None),
                };
                let every: u64 = e
                    .parse()
                    .ok()
                    .filter(|&e| e >= 1)
                    .ok_or_else(|| format!("chaos entry `{entry}`: bad period `{e}`"))?;
                let offset: u64 = match o {
                    Some(o) => o
                        .parse()
                        .map_err(|_| format!("chaos entry `{entry}`: bad offset `{o}`"))?,
                    None => 0,
                };
                (every, offset)
            }
        };
        out.push((
            site.trim().to_owned(),
            Fault {
                kind,
                every,
                offset,
            },
        ));
    }
    Ok(out)
}

/// Arms the plan from the `SENSORMETA_CHAOS` environment variable, if set.
/// Returns the number of faults installed, or the parse error.
pub fn install_from_env() -> Result<usize, String> {
    match std::env::var("SENSORMETA_CHAOS") {
        Err(_) => Ok(0),
        Ok(spec) => {
            let faults = parse_spec(&spec)?;
            let n = faults.len();
            for (site, fault) in faults {
                install(&site, fault);
            }
            Ok(n)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Chaos state is process-global; exercise it from one test so parallel
    // test threads cannot clear each other's plans.
    #[test]
    fn schedules_parse_and_fire_deterministically() {
        let parsed =
            parse_spec("a=error, b=latency:250@3+1 ,c=panic@5").expect("valid spec parses");
        assert_eq!(
            parsed,
            vec![
                ("a".to_owned(), Fault::always(FaultKind::Error)),
                (
                    "b".to_owned(),
                    Fault {
                        kind: FaultKind::Latency(Duration::from_millis(250)),
                        every: 3,
                        offset: 1
                    }
                ),
                (
                    "c".to_owned(),
                    Fault {
                        kind: FaultKind::Panic,
                        every: 5,
                        offset: 0
                    }
                ),
            ]
        );
        assert!(parse_spec("nokind").is_err());
        assert!(parse_spec("a=explode").is_err());
        assert!(parse_spec("a=error@0").is_err());
        assert!(parse_spec("a=latency:xx").is_err());

        clear();
        assert_eq!(installed(), 0);
        assert_eq!(hit("chaos_test_site"), Ok(()), "empty plan never fires");

        install(
            "chaos_test_site",
            Fault {
                kind: FaultKind::Error,
                every: 3,
                offset: 1,
            },
        );
        assert_eq!(installed(), 1);
        let outcomes: Vec<bool> = (0..6).map(|_| hit("chaos_test_site").is_err()).collect();
        assert_eq!(outcomes, vec![false, true, false, false, true, false]);
        assert_eq!(
            hit("chaos_test_other_site"),
            Ok(()),
            "uninstalled sites unaffected"
        );
        clear();
        assert_eq!(hit("chaos_test_site"), Ok(()), "cleared plan never fires");
    }
}
