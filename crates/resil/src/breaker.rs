//! Per-backend circuit breakers: closed → open → half-open → closed.

use parking_lot::Mutex;
use sensormeta_obs as obs;
use std::time::{Duration, Instant};

/// Breaker tuning.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BreakerConfig {
    /// Consecutive failures that trip the breaker open.
    pub failure_threshold: u32,
    /// How long an open breaker rejects before probing (half-open).
    pub open_for: Duration,
    /// Concurrent probe calls allowed while half-open.
    pub half_open_probes: u32,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            failure_threshold: 5,
            open_for: Duration::from_secs(5),
            half_open_probes: 1,
        }
    }
}

/// Observable breaker state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Calls flow; consecutive failures are counted.
    Closed,
    /// Calls are rejected until the cooldown elapses.
    Open,
    /// A bounded number of probe calls test whether the backend recovered.
    HalfOpen,
}

impl BreakerState {
    /// Stable lowercase label for logs and tests.
    pub fn as_str(&self) -> &'static str {
        match self {
            BreakerState::Closed => "closed",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half-open",
        }
    }
}

#[derive(Debug)]
enum Inner {
    Closed { failures: u32 },
    Open { until: Instant },
    HalfOpen { probes: u32 },
}

/// A circuit breaker guarding one expensive backend path.
///
/// Callers ask [`allow`](Breaker::allow) before computing and report the
/// outcome with [`record_success`](Breaker::record_success) /
/// [`record_failure`](Breaker::record_failure). After
/// `failure_threshold` consecutive failures the breaker opens and rejects
/// for `open_for`; the first calls after the cooldown run as half-open
/// probes whose outcome closes or re-opens the circuit.
#[derive(Debug)]
pub struct Breaker {
    name: &'static str,
    cfg: BreakerConfig,
    inner: Mutex<Inner>,
}

impl Breaker {
    /// Creates a closed breaker named for its backend (used in metrics:
    /// `resil_breaker_<name>_*`).
    pub fn new(name: &'static str, cfg: BreakerConfig) -> Breaker {
        let b = Breaker {
            name,
            cfg,
            inner: Mutex::new(Inner::Closed { failures: 0 }),
        };
        b.export_state(&Inner::Closed { failures: 0 });
        b
    }

    /// Whether a call may proceed. A rejected call should be answered from
    /// stale cache or shed with 503.
    pub fn allow(&self) -> bool {
        let mut inner = self.inner.lock();
        let allowed = match &mut *inner {
            Inner::Closed { .. } => true,
            Inner::Open { until } => {
                if Instant::now() >= *until {
                    *inner = Inner::HalfOpen { probes: 1 };
                    true
                } else {
                    false
                }
            }
            Inner::HalfOpen { probes } => {
                if *probes < self.cfg.half_open_probes {
                    *probes += 1;
                    true
                } else {
                    false
                }
            }
        };
        self.export_state(&inner);
        if !allowed {
            obs::counter(&format!("resil_breaker_{}_rejected_total", self.name)).inc();
        }
        allowed
    }

    /// Reports a successful backend call.
    pub fn record_success(&self) {
        let mut inner = self.inner.lock();
        *inner = Inner::Closed { failures: 0 };
        self.export_state(&inner);
    }

    /// Reports a failed backend call (backend errors and timeouts — not
    /// client errors).
    pub fn record_failure(&self) {
        let mut inner = self.inner.lock();
        let open = match &mut *inner {
            Inner::Closed { failures } => {
                *failures += 1;
                *failures >= self.cfg.failure_threshold
            }
            // A failed half-open probe re-opens immediately.
            Inner::HalfOpen { .. } => true,
            Inner::Open { .. } => false,
        };
        if open {
            *inner = Inner::Open {
                until: Instant::now() + self.cfg.open_for,
            };
            obs::counter(&format!("resil_breaker_{}_opened_total", self.name)).inc();
        }
        self.export_state(&inner);
    }

    /// Current state (open breakers past their cooldown still report
    /// `Open` until the next [`allow`](Breaker::allow) probes them).
    pub fn state(&self) -> BreakerState {
        match &*self.inner.lock() {
            Inner::Closed { .. } => BreakerState::Closed,
            Inner::Open { .. } => BreakerState::Open,
            Inner::HalfOpen { .. } => BreakerState::HalfOpen,
        }
    }

    fn export_state(&self, inner: &Inner) {
        let v = match inner {
            Inner::Closed { .. } => 0.0,
            Inner::HalfOpen { .. } => 1.0,
            Inner::Open { .. } => 2.0,
        };
        obs::gauge(&format!("resil_breaker_{}_state", self.name)).set(v);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> BreakerConfig {
        BreakerConfig {
            failure_threshold: 3,
            open_for: Duration::from_millis(30),
            half_open_probes: 1,
        }
    }

    #[test]
    fn opens_after_threshold_and_recovers() {
        let b = Breaker::new("test_recover", cfg());
        assert_eq!(b.state(), BreakerState::Closed);
        for _ in 0..3 {
            assert!(b.allow());
            b.record_failure();
        }
        assert_eq!(b.state(), BreakerState::Open);
        assert!(!b.allow(), "open breaker rejects");
        std::thread::sleep(Duration::from_millis(40));
        assert!(b.allow(), "cooldown elapsed: half-open probe admitted");
        assert_eq!(b.state(), BreakerState::HalfOpen);
        assert!(!b.allow(), "only one probe while half-open");
        b.record_success();
        assert_eq!(b.state(), BreakerState::Closed);
        assert!(b.allow());
    }

    #[test]
    fn failed_probe_reopens() {
        let b = Breaker::new("test_reopen", cfg());
        for _ in 0..3 {
            b.record_failure();
        }
        std::thread::sleep(Duration::from_millis(40));
        assert!(b.allow());
        b.record_failure();
        assert_eq!(b.state(), BreakerState::Open);
        assert!(!b.allow());
    }

    #[test]
    fn success_resets_consecutive_count() {
        let b = Breaker::new("test_reset", cfg());
        b.record_failure();
        b.record_failure();
        b.record_success();
        b.record_failure();
        b.record_failure();
        assert_eq!(b.state(), BreakerState::Closed, "streak was broken");
    }
}
