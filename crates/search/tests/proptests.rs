//! Property-based tests for the search substrate.

use proptest::prelude::*;
use sensormeta_search::{
    damerau_levenshtein_capped, highlight, normalize, tokenize, Autocomplete, SearchIndex,
};
use std::collections::BTreeMap;

fn arb_doc() -> impl Strategy<Value = String> {
    prop::collection::vec("[a-z]{1,8}", 1..30).prop_map(|words| words.join(" "))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Tokenization is idempotent under normalization: normalizing a
    /// normalized term changes nothing.
    #[test]
    fn normalize_idempotent(word in "[a-zA-Z_]{1,16}") {
        let once = normalize(&word);
        prop_assert_eq!(normalize(&once), once.clone());
    }

    /// Every token of a document is findable by searching for it.
    #[test]
    fn every_token_is_searchable(doc in arb_doc()) {
        let mut ix = SearchIndex::new();
        ix.add_document("d", &doc);
        for token in tokenize(&doc) {
            let hits = ix.search(&token, 10);
            prop_assert!(!hits.is_empty(), "token {token} not found");
            prop_assert_eq!(&hits[0].key, "d");
        }
    }

    /// Conjunctive results are a subset of disjunctive results, and phrase
    /// results a subset of conjunctive.
    #[test]
    fn search_mode_subsets(docs in prop::collection::vec(arb_doc(), 1..12),
                           qa in "[a-z]{1,6}", qb in "[a-z]{1,6}") {
        let mut ix = SearchIndex::new();
        for (i, d) in docs.iter().enumerate() {
            ix.add_document(&format!("d{i}"), d);
        }
        let query = format!("{qa} {qb}");
        let or_keys: Vec<String> = ix.search(&query, 100).into_iter().map(|h| h.key).collect();
        let and_keys: Vec<String> =
            ix.search_all_terms(&query, 100).into_iter().map(|h| h.key).collect();
        let phrase_keys: Vec<String> =
            ix.phrase(&query, 100).into_iter().map(|h| h.key).collect();
        for k in &and_keys {
            prop_assert!(or_keys.contains(k), "AND ⊄ OR: {k}");
        }
        for k in &phrase_keys {
            prop_assert!(and_keys.contains(k), "PHRASE ⊄ AND: {k}");
        }
    }

    /// Document replacement behaves like building a fresh index.
    #[test]
    fn replacement_equals_fresh(doc1 in arb_doc(), doc2 in arb_doc(), probe in "[a-z]{1,6}") {
        let mut replaced = SearchIndex::new();
        replaced.add_document("d", &doc1);
        replaced.add_document("d", &doc2);
        let mut fresh = SearchIndex::new();
        fresh.add_document("d", &doc2);
        let a: Vec<_> = replaced.search(&probe, 10);
        let b: Vec<_> = fresh.search(&probe, 10);
        prop_assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            prop_assert!((x.score - y.score).abs() < 1e-9);
        }
        prop_assert_eq!(replaced.term_count(), fresh.term_count());
    }

    /// Autocomplete returns exactly the inserted entries with a matching
    /// prefix, ordered by weight.
    #[test]
    fn autocomplete_sound_and_complete(entries in prop::collection::btree_map(
        "[a-z]{1,10}", 0.0f64..100.0, 1..20), prefix in "[a-z]{0,3}")
    {
        let mut trie = Autocomplete::new();
        for (e, w) in &entries {
            trie.insert(e, *w);
        }
        let got = trie.complete(&prefix, entries.len());
        let want: BTreeMap<&String, f64> = entries
            .iter()
            .filter(|(e, _)| e.starts_with(&prefix))
            .map(|(e, w)| (e, *w))
            .collect();
        prop_assert_eq!(got.len(), want.len());
        for (s, w) in &got {
            prop_assert_eq!(want.get(s), Some(w));
        }
        for pair in got.windows(2) {
            prop_assert!(pair[0].1 >= pair[1].1, "weight order");
        }
    }

    /// Edit distance is a metric: symmetric, zero iff equal, triangle-ish
    /// under the cap.
    #[test]
    fn edit_distance_metric(a in "[a-z]{0,8}", b in "[a-z]{0,8}") {
        let cap = 16usize;
        let ab = damerau_levenshtein_capped(&a, &b, cap).unwrap();
        let ba = damerau_levenshtein_capped(&b, &a, cap).unwrap();
        prop_assert_eq!(ab, ba);
        prop_assert_eq!(ab == 0, a == b);
        prop_assert!(ab <= a.len().max(b.len()));
    }

    /// Highlighting never loses or duplicates non-marker characters.
    #[test]
    fn highlight_preserves_text(doc in arb_doc(), q in "[a-z]{1,6}") {
        let marked = highlight(&doc, &q, "«", "»");
        let stripped: String = marked.chars().filter(|c| *c != '«' && *c != '»').collect();
        prop_assert_eq!(stripped, doc);
    }
}
