//! Faceted aggregation over annotation sets.
//!
//! The advanced search UI shows, for a result set, the distribution of
//! annotation values ("which institutions participate mostly, which is the
//! most popular project") — the counts feeding the bar/pie visualizations.

use std::collections::BTreeMap;

/// Facet counts for one attribute: value → number of matching documents.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Facet {
    /// Attribute name.
    pub attribute: String,
    /// Value → count, deterministic order.
    pub counts: BTreeMap<String, usize>,
}

impl Facet {
    /// Values sorted by descending count (ties lexicographic).
    pub fn top(&self, k: usize) -> Vec<(&str, usize)> {
        let mut v: Vec<(&str, usize)> = self.counts.iter().map(|(s, &c)| (s.as_str(), c)).collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));
        v.truncate(k);
        v
    }

    /// Total observations.
    pub fn total(&self) -> usize {
        self.counts.values().sum()
    }
}

/// Computes facets over a result set: `annotations` yields, per matching
/// document, its (attribute, value) pairs; `attributes` selects which facets
/// to build (empty = all attributes observed).
pub fn compute_facets<'a, I, J>(annotations: I, attributes: &[&str]) -> Vec<Facet>
where
    I: IntoIterator<Item = J>,
    J: IntoIterator<Item = (&'a str, &'a str)>,
{
    let mut facets: BTreeMap<String, BTreeMap<String, usize>> = BTreeMap::new();
    for doc in annotations {
        for (attr, value) in doc {
            if !attributes.is_empty() && !attributes.iter().any(|a| a.eq_ignore_ascii_case(attr)) {
                continue;
            }
            *facets
                .entry(attr.to_owned())
                .or_default()
                .entry(value.to_owned())
                .or_insert(0) += 1;
        }
    }
    facets
        .into_iter()
        .map(|(attribute, counts)| Facet { attribute, counts })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn docs() -> Vec<Vec<(&'static str, &'static str)>> {
        vec![
            vec![
                ("measuresQuantity", "temperature"),
                ("hasVendor", "Vaisala"),
            ],
            vec![
                ("measuresQuantity", "temperature"),
                ("hasVendor", "Campbell"),
            ],
            vec![("measuresQuantity", "wind_speed"), ("hasVendor", "Vaisala")],
        ]
    }

    #[test]
    fn counts_all_attributes() {
        let facets = compute_facets(docs(), &[]);
        assert_eq!(facets.len(), 2);
        let quantity = facets
            .iter()
            .find(|f| f.attribute == "measuresQuantity")
            .unwrap();
        assert_eq!(quantity.counts["temperature"], 2);
        assert_eq!(quantity.counts["wind_speed"], 1);
        assert_eq!(quantity.total(), 3);
    }

    #[test]
    fn filters_to_requested_attributes() {
        let facets = compute_facets(docs(), &["hasVendor"]);
        assert_eq!(facets.len(), 1);
        assert_eq!(facets[0].attribute, "hasVendor");
    }

    #[test]
    fn top_orders_by_count_then_name() {
        let facets = compute_facets(docs(), &["hasVendor"]);
        let top = facets[0].top(10);
        assert_eq!(top[0], ("Vaisala", 2));
        assert_eq!(top[1], ("Campbell", 1));
    }

    #[test]
    fn empty_input() {
        let facets = compute_facets(Vec::<Vec<(&str, &str)>>::new(), &[]);
        assert!(facets.is_empty());
    }
}
