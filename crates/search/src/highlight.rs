//! Query-term highlighting in result snippets.
//!
//! Marks the stem-matched query terms in a text fragment with configurable
//! delimiters (`<b>…</b>` for the HTML result table, `**…**` for terminal
//! output). Matching uses the same normalization as the index so whatever
//! matched during retrieval is what lights up.

use crate::tokenize::{normalize, tokenize};
use std::collections::HashSet;

/// Highlights occurrences of `query`'s terms inside `text`.
pub fn highlight(text: &str, query: &str, open: &str, close: &str) -> String {
    let wanted: HashSet<String> = tokenize(query).into_iter().collect();
    if wanted.is_empty() {
        return text.to_owned();
    }
    let mut out = String::with_capacity(text.len() + 16);
    let mut word = String::new();
    let flush = |word: &mut String, out: &mut String| {
        if word.is_empty() {
            return;
        }
        let norm = normalize(word);
        if wanted.contains(&norm) || word.split('_').any(|p| wanted.contains(&normalize(p))) {
            out.push_str(open);
            out.push_str(word);
            out.push_str(close);
        } else {
            out.push_str(word);
        }
        word.clear();
    };
    for c in text.chars() {
        if c.is_alphanumeric() || c == '_' {
            word.push(c);
        } else {
            flush(&mut word, &mut out);
            out.push(c);
        }
    }
    flush(&mut word, &mut out);
    out
}

/// HTML-escapes then highlights with `<b>` tags — safe for direct inclusion
/// in the result table.
pub fn highlight_html(text: &str, query: &str) -> String {
    let escaped = text
        .replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;");
    highlight(&escaped, query, "<b>", "</b>")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn marks_exact_and_stemmed_matches() {
        let out = highlight(
            "Temperature sensors at the site",
            "temperature sensor",
            "[",
            "]",
        );
        assert_eq!(out, "[Temperature] [sensors] at the site");
    }

    #[test]
    fn underscore_identifiers_light_up_by_part() {
        let out = highlight("the wind_speed series", "wind", "<b>", "</b>");
        assert_eq!(out, "the <b>wind_speed</b> series");
    }

    #[test]
    fn no_query_no_markup() {
        assert_eq!(highlight("text here", "", "[", "]"), "text here");
        assert_eq!(highlight("text here", "zzz", "[", "]"), "text here");
    }

    #[test]
    fn html_variant_escapes_first() {
        let out = highlight_html("a <script> & temperature", "temperature");
        assert_eq!(out, "a &lt;script&gt; &amp; <b>temperature</b>");
    }

    #[test]
    fn punctuation_boundaries_preserved() {
        let out = highlight("snow, snow; SNOW!", "snow", "[", "]");
        assert_eq!(out, "[snow], [snow]; [SNOW]!");
    }
}
