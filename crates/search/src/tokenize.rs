//! Tokenization and term normalization.

/// English stopwords kept deliberately small: metadata text is terse and
/// over-aggressive stopping hurts recall on sensor names.
const STOPWORDS: &[&str] = &[
    "a", "an", "and", "are", "as", "at", "be", "by", "for", "from", "in", "is", "it", "of", "on",
    "or", "the", "to", "with",
];

/// True if the term is a stopword.
pub fn is_stopword(term: &str) -> bool {
    STOPWORDS.contains(&term)
}

/// Splits text into normalized terms: alphanumeric runs (plus `_`), lowercased,
/// light plural stemming. Underscored identifiers like `wind_speed` also emit
/// their parts so a search for `wind` finds them.
pub fn tokenize(text: &str) -> Vec<String> {
    let mut out = Vec::new();
    for raw in text.split(|c: char| !c.is_alphanumeric() && c != '_') {
        if raw.is_empty() {
            continue;
        }
        if raw.contains('_') {
            // Identifier like `wind_speed`: emit normalized parts plus the
            // lowercased whole (stemming across `_` would corrupt it).
            for part in raw.split('_').filter(|p| !p.is_empty()) {
                let p = normalize(part);
                if !p.is_empty() && !is_stopword(&p) {
                    out.push(p);
                }
            }
            out.push(raw.to_lowercase());
            continue;
        }
        let norm = normalize(raw);
        if norm.is_empty() || is_stopword(&norm) {
            continue;
        }
        out.push(norm);
    }
    out
}

/// Lowercases and applies light stemming: trailing `'s`, plural `s`
/// (guarded so `address`, `gps` survive), and `-ing`/`-ed` on longer words.
pub fn normalize(term: &str) -> String {
    let mut t = term.to_lowercase();
    if let Some(stripped) = t.strip_suffix("'s") {
        t = stripped.to_owned();
    }
    let bytes = t.as_bytes();
    if t.len() > 3 && bytes.last() == Some(&b's') && !t.ends_with("ss") && !t.ends_with("us") {
        t.truncate(t.len() - 1);
    } else if t.len() > 5 && t.ends_with("ing") {
        t.truncate(t.len() - 3);
    } else if t.len() > 4 && t.ends_with("ed") && !t.ends_with("eed") {
        t.truncate(t.len() - 2);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splits_and_lowercases() {
        assert_eq!(
            tokenize("Temperature Sensor, at Weissfluhjoch!"),
            vec!["temperature", "sensor", "weissfluhjoch"]
        );
    }

    #[test]
    fn stopwords_removed() {
        assert_eq!(tokenize("the sensor at the site"), vec!["sensor", "site"]);
    }

    #[test]
    fn light_stemming() {
        assert_eq!(normalize("sensors"), "sensor");
        assert_eq!(normalize("Davos's"), "davo"); // 's then plural-s guard
        assert_eq!(normalize("monitoring"), "monitor");
        assert_eq!(normalize("deployed"), "deploy");
        assert_eq!(normalize("glass"), "glass", "double-s survives");
        assert_eq!(normalize("status"), "status", "-us survives");
    }

    #[test]
    fn underscore_identifiers_emit_parts_and_whole() {
        let toks = tokenize("wind_speed");
        assert!(toks.contains(&"wind".to_string()));
        assert!(toks.contains(&"speed".to_string()));
        assert!(toks.contains(&"wind_speed".to_string()));
    }

    #[test]
    fn numbers_kept() {
        assert_eq!(tokenize("level 2693 m"), vec!["level", "2693", "m"]);
    }

    #[test]
    fn unicode_lowercasing() {
        assert_eq!(tokenize("Zürich"), vec!["zürich"]);
    }

    #[test]
    fn empty_input() {
        assert!(tokenize("").is_empty());
        assert!(tokenize("  ,.;  ").is_empty());
    }
}
