//! Positional inverted index with BM25 ranking.

use crate::tokenize::tokenize;
use sensormeta_cache::{Cache, CacheConfig, CacheError, Domain, Fingerprint, Status};
use sensormeta_par::Pool;
use sensormeta_resil::{self as resil, Interrupt};
use std::collections::BTreeMap;
use std::ops::Bound;
use std::sync::{Arc, OnceLock};

/// Documents per parallel tokenize chunk in [`SearchIndex::build_in`]
/// (fixed: chunk boundaries must not depend on the thread count).
const DOC_CHUNK: usize = 32;

/// Document identifier (dense, assigned at add time).
pub type DocId = usize;

/// One term's postings: per-document positions.
#[derive(Debug, Default, Clone)]
struct Posting {
    /// (doc, positions within doc), sorted by doc.
    docs: Vec<(DocId, Vec<u32>)>,
}

/// BM25 parameters.
#[derive(Debug, Clone, Copy)]
pub struct Bm25Params {
    /// Term-frequency saturation (typical 1.2).
    pub k1: f64,
    /// Length normalization (typical 0.75).
    pub b: f64,
}

impl Default for Bm25Params {
    fn default() -> Self {
        Bm25Params { k1: 1.2, b: 0.75 }
    }
}

/// Epoch domain every cached search result depends on.
const CACHE_DEPS: &[Domain] = &[Domain::SearchIndex];

/// Checkpoint site name for cooperative cancellation in scoring loops.
const CHECKPOINT_SITE: &str = "search_postings";

/// Postings scanned between deadline checkpoints on the checked paths.
const POSTINGS_PER_CHECK: usize = 1024;

/// Byte budget for one index's query cache.
const CACHE_CAPACITY: usize = 4 << 20;

/// A positional inverted index over external string keys.
#[derive(Debug, Default)]
pub struct SearchIndex {
    /// External key (page title) per doc.
    keys: Vec<String>,
    key_ids: BTreeMap<String, DocId>,
    postings: BTreeMap<String, Posting>,
    doc_len: Vec<u32>,
    total_len: u64,
    /// Lazily built query→hits cache; invalidated through the
    /// [`Domain::SearchIndex`] epoch which [`SearchIndex::add_tokenized`]
    /// bumps on every document write.
    query_cache: OnceLock<Cache<Vec<Hit>>>,
}

/// A scored hit.
#[derive(Debug, Clone, PartialEq)]
pub struct Hit {
    /// Document id.
    pub doc: DocId,
    /// External key.
    pub key: String,
    /// BM25 score.
    pub score: f64,
}

impl SearchIndex {
    /// Creates an empty index.
    pub fn new() -> SearchIndex {
        SearchIndex::default()
    }

    /// Number of documents.
    pub fn doc_count(&self) -> usize {
        self.keys.len()
    }

    /// Number of distinct terms.
    pub fn term_count(&self) -> usize {
        self.postings.len()
    }

    /// External key of a document.
    pub fn key(&self, doc: DocId) -> &str {
        &self.keys[doc]
    }

    /// Doc id of an external key.
    pub fn doc_of(&self, key: &str) -> Option<DocId> {
        self.key_ids.get(key).copied()
    }

    /// Adds (or replaces) a document. Replacement re-tokenizes from scratch;
    /// the old postings are removed first.
    pub fn add_document(&mut self, key: &str, text: &str) -> DocId {
        self.add_tokenized(key, tokenize(text))
    }

    /// Adds (or replaces) a document from an already-tokenized term stream —
    /// the merge half of [`SearchIndex::build_in`], where tokenization runs
    /// in parallel but postings are merged serially in document order.
    pub fn add_tokenized(&mut self, key: &str, terms: Vec<String>) -> DocId {
        sensormeta_obs::counter("search_docs_indexed_total").inc();
        sensormeta_cache::clock().bump(sensormeta_cache::Domain::SearchIndex);
        let doc = match self.key_ids.get(key) {
            Some(&d) => {
                self.remove_postings(d);
                d
            }
            None => {
                let d = self.keys.len();
                self.keys.push(key.to_owned());
                self.key_ids.insert(key.to_owned(), d);
                self.doc_len.push(0);
                d
            }
        };
        self.total_len += terms.len() as u64;
        self.doc_len[doc] = terms.len() as u32;
        for (pos, term) in terms.into_iter().enumerate() {
            let posting = self.postings.entry(term).or_default();
            match posting.docs.binary_search_by_key(&doc, |(d, _)| *d) {
                Ok(ix) => posting.docs[ix].1.push(pos as u32),
                Err(ix) => posting.docs.insert(ix, (doc, vec![pos as u32])),
            }
        }
        doc
    }

    /// Builds an index from a document batch on the global pool: per-document
    /// tokenization (the CPU-bound half) fans out across threads, then the
    /// postings merge runs serially in input order — so the result is
    /// byte-identical to calling [`SearchIndex::add_document`] in a loop.
    pub fn build(docs: &[(String, String)]) -> SearchIndex {
        SearchIndex::build_in(Pool::global(), docs)
    }

    /// [`SearchIndex::build`] on an explicit pool.
    pub fn build_in(pool: &Pool, docs: &[(String, String)]) -> SearchIndex {
        let token_streams =
            pool.par_map_collect(docs, DOC_CHUNK, |(_, text)| tokenize(text.as_str()));
        let mut ix = SearchIndex::new();
        for ((key, _), terms) in docs.iter().zip(token_streams) {
            ix.add_tokenized(key, terms);
        }
        ix
    }

    /// Order-sensitive FNV-1a fingerprint of the full index contents (keys,
    /// document lengths, terms, postings and positions). Used by the
    /// determinism tests and the bench harness to assert that parallel and
    /// serial builds produce identical indexes.
    pub fn fingerprint(&self) -> u64 {
        const FNV_OFFSET: u64 = 0xcbf29ce484222325;
        const FNV_PRIME: u64 = 0x100000001b3;
        let mut h = FNV_OFFSET;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h ^= u64::from(b);
                h = h.wrapping_mul(FNV_PRIME);
            }
        };
        for key in &self.keys {
            eat(key.as_bytes());
            eat(&[0xff]);
        }
        for &len in &self.doc_len {
            eat(&len.to_le_bytes());
        }
        eat(&self.total_len.to_le_bytes());
        for (term, posting) in &self.postings {
            eat(term.as_bytes());
            eat(&[0xfe]);
            for (doc, positions) in &posting.docs {
                eat(&(*doc as u64).to_le_bytes());
                for &p in positions {
                    eat(&p.to_le_bytes());
                }
            }
        }
        h
    }

    fn remove_postings(&mut self, doc: DocId) {
        self.total_len -= u64::from(self.doc_len[doc]);
        self.doc_len[doc] = 0;
        self.postings.retain(|_, p| {
            if let Ok(ix) = p.docs.binary_search_by_key(&doc, |(d, _)| *d) {
                p.docs.remove(ix);
            }
            !p.docs.is_empty()
        });
    }

    fn avg_len(&self) -> f64 {
        if self.keys.is_empty() {
            0.0
        } else {
            self.total_len as f64 / self.keys.len() as f64
        }
    }

    fn idf(&self, df: usize) -> f64 {
        let n = self.keys.len() as f64;
        // BM25+-style floor keeps very common terms from zeroing out.
        (((n - df as f64 + 0.5) / (df as f64 + 0.5)) + 1.0).ln()
    }

    /// BM25 keyword search (disjunctive): scores every document matching at
    /// least one query term; documents matching more terms score higher.
    pub fn search(&self, query: &str, k: usize) -> Vec<Hit> {
        self.search_with(query, k, Bm25Params::default())
    }

    /// BM25 search with explicit parameters. Uncancellable: runs to
    /// completion regardless of the ambient deadline (see
    /// [`SearchIndex::try_search_with`] for the cooperative variant).
    pub fn search_with(&self, query: &str, k: usize, params: Bm25Params) -> Vec<Hit> {
        // The unchecked pass never hits a checkpoint, so Err is unreachable.
        self.score_disjunctive(query, k, params, false)
            .unwrap_or_default()
    }

    /// [`SearchIndex::search`] with cooperative cancellation: observes the
    /// ambient resil deadline (and chaos plan) between query terms and
    /// every `POSTINGS_PER_CHECK` (1024) scanned postings, so an expired request
    /// stops burning CPU mid-scan.
    pub fn try_search(&self, query: &str, k: usize) -> Result<Vec<Hit>, Interrupt> {
        self.try_search_with(query, k, Bm25Params::default())
    }

    /// [`SearchIndex::search_with`] with cooperative cancellation.
    pub fn try_search_with(
        &self,
        query: &str,
        k: usize,
        params: Bm25Params,
    ) -> Result<Vec<Hit>, Interrupt> {
        self.score_disjunctive_in(query, k, params, true, None)
    }

    /// Disjunctive BM25 restricted to documents in `range` (half-open).
    ///
    /// Scoring statistics — idf, average length, per-document length — stay
    /// *global*, so a document's score is identical whether it is evaluated
    /// here or by a full [`SearchIndex::try_search`]: the union of this call
    /// over disjoint ranges covering the corpus equals the unrestricted
    /// result. This is the scatter primitive for sharded serving, where each
    /// shard owns a contiguous document range of one shared index.
    pub fn try_search_range(
        &self,
        query: &str,
        k: usize,
        range: std::ops::Range<DocId>,
    ) -> Result<Vec<Hit>, Interrupt> {
        self.score_disjunctive_in(query, k, Bm25Params::default(), true, Some(range))
    }

    /// Conjunctive variant of [`SearchIndex::try_search_range`]: documents in
    /// `range` containing *all* query terms. The all-terms test is evaluated
    /// against the whole index (term presence is a per-document property), so
    /// range unions again reproduce [`SearchIndex::try_search_all_terms`].
    pub fn try_search_all_terms_range(
        &self,
        query: &str,
        k: usize,
        range: std::ops::Range<DocId>,
    ) -> Result<Vec<Hit>, Interrupt> {
        Ok(self
            .score_conjunctive(query, usize::MAX, true)?
            .into_iter()
            .filter(|h| range.contains(&h.doc))
            .take(k)
            .collect())
    }

    fn score_disjunctive(
        &self,
        query: &str,
        k: usize,
        params: Bm25Params,
        checked: bool,
    ) -> Result<Vec<Hit>, Interrupt> {
        self.score_disjunctive_in(query, k, params, checked, None)
    }

    fn score_disjunctive_in(
        &self,
        query: &str,
        k: usize,
        params: Bm25Params,
        checked: bool,
        range: Option<std::ops::Range<DocId>>,
    ) -> Result<Vec<Hit>, Interrupt> {
        let _timing = sensormeta_obs::span("search_score");
        sensormeta_obs::counter("search_queries_total").inc();
        let terms = tokenize(query);
        if terms.is_empty() {
            return Ok(Vec::new());
        }
        let avg = self.avg_len().max(f64::MIN_POSITIVE);
        let mut scores: BTreeMap<DocId, f64> = BTreeMap::new();
        let mut scanned = 0usize;
        for term in &terms {
            if checked {
                resil::checkpoint(CHECKPOINT_SITE)?;
            }
            let Some(posting) = self.postings.get(term) else {
                continue;
            };
            // idf always uses the term's full document frequency, even when
            // only a range of documents is being scored.
            let idf = self.idf(posting.docs.len());
            let docs = match &range {
                Some(r) => {
                    let lo = posting.docs.partition_point(|(d, _)| *d < r.start);
                    let hi = posting.docs.partition_point(|(d, _)| *d < r.end);
                    &posting.docs[lo..hi]
                }
                None => &posting.docs[..],
            };
            for (doc, positions) in docs {
                scanned += 1;
                if checked && scanned.is_multiple_of(POSTINGS_PER_CHECK) {
                    resil::checkpoint(CHECKPOINT_SITE)?;
                }
                let tf = positions.len() as f64;
                let dl = f64::from(self.doc_len[*doc]);
                let denom = tf + params.k1 * (1.0 - params.b + params.b * dl / avg);
                *scores.entry(*doc).or_insert(0.0) += idf * tf * (params.k1 + 1.0) / denom;
            }
        }
        Ok(self.top_k(scores, k))
    }

    fn query_cache(&self) -> &Cache<Vec<Hit>> {
        self.query_cache.get_or_init(|| {
            Cache::new(
                CacheConfig::new("search", CACHE_CAPACITY, CACHE_DEPS),
                |hits| {
                    hits.iter()
                        .map(|h| std::mem::size_of::<Hit>() + h.key.len())
                        .sum()
                },
            )
        })
    }

    /// [`SearchIndex::search`] through the shared result cache: repeated
    /// identical queries between index writes share one scored hit list.
    pub fn search_cached(&self, query: &str, k: usize) -> (Arc<Vec<Hit>>, Status) {
        self.cached("disjunctive", query, k, || self.search(query, k))
    }

    /// [`SearchIndex::search_all_terms`] through the shared result cache.
    pub fn search_all_terms_cached(&self, query: &str, k: usize) -> (Arc<Vec<Hit>>, Status) {
        self.cached("conjunctive", query, k, || self.search_all_terms(query, k))
    }

    /// [`SearchIndex::search_cached`] with cooperative cancellation: the
    /// compute observes checkpoints, the single-flight wait is bounded by
    /// the ambient deadline, and interrupts are never negatively cached.
    pub fn try_search_cached(
        &self,
        query: &str,
        k: usize,
    ) -> Result<(Arc<Vec<Hit>>, Status), Interrupt> {
        self.cached_checked("disjunctive", query, k, || self.try_search(query, k))
    }

    /// [`SearchIndex::search_all_terms_cached`] with cooperative
    /// cancellation.
    pub fn try_search_all_terms_cached(
        &self,
        query: &str,
        k: usize,
    ) -> Result<(Arc<Vec<Hit>>, Status), Interrupt> {
        self.cached_checked("conjunctive", query, k, || {
            self.try_search_all_terms(query, k)
        })
    }

    fn cached(
        &self,
        mode: &str,
        query: &str,
        k: usize,
        run: impl FnOnce() -> Vec<Hit>,
    ) -> (Arc<Vec<Hit>>, Status) {
        let key = Fingerprint::new().str(mode).str(query).usize(k).finish();
        let (result, status) = self
            .query_cache()
            .get_or_compute(key, None, || Ok::<_, std::convert::Infallible>(run()));
        match result {
            Ok(hits) => (hits, status),
            // Infallible and no deadline: unreachable, but degrade to an
            // uncached scoring pass rather than panic.
            Err(_) => (Arc::new(self.search(query, k)), Status::Bypass),
        }
    }

    fn cached_checked(
        &self,
        mode: &str,
        query: &str,
        k: usize,
        run: impl FnOnce() -> Result<Vec<Hit>, Interrupt>,
    ) -> Result<(Arc<Vec<Hit>>, Status), Interrupt> {
        let key = Fingerprint::new().str(mode).str(query).usize(k).finish();
        let wait = resil::current_deadline().remaining();
        let (result, status) = self
            .query_cache()
            .get_or_compute_filtered(key, wait, run, |_| false);
        match result {
            Ok(hits) => Ok((hits, status)),
            Err(CacheError::Compute(i)) => Err(i),
            // Interrupts are never negatively cached, so a replayed
            // negative cannot occur on this path; a timed-out
            // single-flight wait means the ambient budget ran out.
            Err(CacheError::Negative(_) | CacheError::WaitTimeout) => {
                Err(Interrupt::DeadlineExceeded)
            }
        }
    }

    /// Query-cache statistics for this index.
    pub fn cache_stats(&self) -> sensormeta_cache::CacheStats {
        self.query_cache().stats()
    }

    /// Drops this index's cached query results.
    pub fn clear_cache(&self) {
        self.query_cache().clear();
    }

    /// Conjunctive search: only documents containing *all* query terms.
    /// Uncancellable; see [`SearchIndex::try_search_all_terms`].
    pub fn search_all_terms(&self, query: &str, k: usize) -> Vec<Hit> {
        // The unchecked pass never hits a checkpoint, so Err is unreachable.
        self.score_conjunctive(query, k, false).unwrap_or_default()
    }

    /// [`SearchIndex::search_all_terms`] with cooperative cancellation at
    /// the same checkpoints as [`SearchIndex::try_search_with`].
    pub fn try_search_all_terms(&self, query: &str, k: usize) -> Result<Vec<Hit>, Interrupt> {
        self.score_conjunctive(query, k, true)
    }

    fn score_conjunctive(
        &self,
        query: &str,
        k: usize,
        checked: bool,
    ) -> Result<Vec<Hit>, Interrupt> {
        let terms = tokenize(query);
        if terms.is_empty() {
            return Ok(Vec::new());
        }
        let mut candidate: Option<Vec<DocId>> = None;
        for term in &terms {
            if checked {
                resil::checkpoint(CHECKPOINT_SITE)?;
            }
            let docs: Vec<DocId> = self
                .postings
                .get(term)
                .map(|p| p.docs.iter().map(|(d, _)| *d).collect())
                .unwrap_or_default();
            candidate = Some(match candidate {
                None => docs,
                Some(prev) => intersect_sorted(&prev, &docs),
            });
            if candidate.as_ref().is_some_and(Vec::is_empty) {
                return Ok(Vec::new());
            }
        }
        let allowed = candidate.unwrap_or_default();
        Ok(self
            .score_disjunctive(query, usize::MAX, Bm25Params::default(), checked)?
            .into_iter()
            .filter(|h| allowed.binary_search(&h.doc).is_ok())
            .take(k)
            .collect())
    }

    /// Exact phrase search using positional postings.
    pub fn phrase(&self, phrase: &str, k: usize) -> Vec<Hit> {
        let terms = tokenize(phrase);
        if terms.is_empty() {
            return Vec::new();
        }
        if terms.len() == 1 {
            return self.search(&terms[0], k);
        }
        let postings: Option<Vec<&Posting>> = terms.iter().map(|t| self.postings.get(t)).collect();
        let Some(postings) = postings else {
            return Vec::new();
        };
        let mut docs = postings[0].docs.iter().map(|(d, _)| *d).collect::<Vec<_>>();
        for p in &postings[1..] {
            let next: Vec<DocId> = p.docs.iter().map(|(d, _)| *d).collect();
            docs = intersect_sorted(&docs, &next);
        }
        let mut hits = Vec::new();
        for doc in docs {
            // `doc` came from intersecting every posting list, so each lookup
            // succeeds; a failed one just drops the doc from the result.
            let Some(pos_lists) = postings
                .iter()
                .map(|p| {
                    p.docs
                        .binary_search_by_key(&doc, |(d, _)| *d)
                        .ok()
                        .map(|ix| &p.docs[ix].1)
                })
                .collect::<Option<Vec<&Vec<u32>>>>()
            else {
                continue;
            };
            let count = pos_lists[0]
                .iter()
                .filter(|&&start| {
                    pos_lists[1..]
                        .iter()
                        .enumerate()
                        .all(|(off, list)| list.binary_search(&(start + off as u32 + 1)).is_ok())
                })
                .count();
            if count > 0 {
                hits.push(Hit {
                    doc,
                    key: self.keys[doc].clone(),
                    score: count as f64,
                });
            }
        }
        hits.sort_by(|a, b| {
            b.score
                .partial_cmp(&a.score)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        hits.truncate(k);
        hits
    }

    /// Documents containing any term starting with `prefix` (for the search
    /// box's as-you-type mode). Scores by BM25 of the matched terms.
    pub fn prefix_search(&self, prefix: &str, k: usize) -> Vec<Hit> {
        let prefix = crate::tokenize::normalize(prefix);
        if prefix.is_empty() {
            return Vec::new();
        }
        let mut scores: BTreeMap<DocId, f64> = BTreeMap::new();
        let upper = prefix_upper_bound(&prefix);
        let range = self.postings.range::<String, _>((
            Bound::Included(&prefix),
            upper
                .as_ref()
                .map(Bound::Excluded)
                .unwrap_or(Bound::Unbounded),
        ));
        let avg = self.avg_len().max(f64::MIN_POSITIVE);
        let params = Bm25Params::default();
        for (_, posting) in range {
            let idf = self.idf(posting.docs.len());
            for (doc, positions) in &posting.docs {
                let tf = positions.len() as f64;
                let dl = f64::from(self.doc_len[*doc]);
                let denom = tf + params.k1 * (1.0 - params.b + params.b * dl / avg);
                *scores.entry(*doc).or_insert(0.0) += idf * tf * (params.k1 + 1.0) / denom;
            }
        }
        self.top_k(scores, k)
    }

    fn top_k(&self, scores: BTreeMap<DocId, f64>, k: usize) -> Vec<Hit> {
        let mut hits: Vec<Hit> = scores
            .into_iter()
            .map(|(doc, score)| Hit {
                key: self.keys[doc].clone(),
                doc,
                score,
            })
            .collect();
        hits.sort_by(|a, b| {
            b.score
                .partial_cmp(&a.score)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.doc.cmp(&b.doc))
        });
        hits.truncate(k);
        hits
    }

    /// Iterates all indexed terms with their document frequencies — the
    /// vocabulary feed for spell suggestion.
    pub fn terms(&self) -> impl Iterator<Item = (&str, usize)> {
        self.postings
            .iter()
            .map(|(t, p)| (t.as_str(), p.docs.len()))
    }

    /// Document frequency of a term (after normalization).
    pub fn doc_frequency(&self, term: &str) -> usize {
        self.postings
            .get(&crate::tokenize::normalize(term))
            .map(|p| p.docs.len())
            .unwrap_or(0)
    }
}

/// Intersection of two sorted DocId lists.
fn intersect_sorted(a: &[DocId], b: &[DocId]) -> Vec<DocId> {
    let mut out = Vec::new();
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out
}

/// Smallest string strictly greater than every string with this prefix.
fn prefix_upper_bound(prefix: &str) -> Option<String> {
    let mut chars: Vec<char> = prefix.chars().collect();
    while let Some(last) = chars.pop() {
        if let Some(next) = char::from_u32(last as u32 + 1) {
            chars.push(next);
            return Some(chars.into_iter().collect());
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn index() -> SearchIndex {
        let mut ix = SearchIndex::new();
        ix.add_document(
            "Deployment:wfj_temp",
            "A temperature sensor deployed at Weissfluhjoch measuring air temperature",
        );
        ix.add_document(
            "Deployment:wfj_wind",
            "Wind speed sensor at Weissfluhjoch station",
        );
        ix.add_document(
            "Fieldsite:Davos",
            "Davos field site with snow and temperature monitoring",
        );
        ix
    }

    #[test]
    fn basic_relevance_order() {
        let ix = index();
        let hits = ix.search("temperature", 10);
        assert_eq!(hits.len(), 2);
        // Doc with tf=2 and shorter relative presence wins.
        assert_eq!(hits[0].key, "Deployment:wfj_temp");
    }

    #[test]
    fn multi_term_or_semantics() {
        let ix = index();
        let hits = ix.search("temperature wind", 10);
        assert_eq!(hits.len(), 3);
    }

    #[test]
    fn conjunctive_search() {
        let ix = index();
        let hits = ix.search_all_terms("temperature weissfluhjoch", 10);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].key, "Deployment:wfj_temp");
        assert!(ix.search_all_terms("temperature zermatt", 10).is_empty());
    }

    #[test]
    fn range_union_equals_full_search() {
        let ix = index();
        let n = ix.doc_count();
        for query in ["temperature", "temperature wind", "weissfluhjoch sensor"] {
            let full = ix.search(query, usize::MAX);
            for split in [1, 2, 3] {
                let per = n.div_ceil(split);
                let mut union: Vec<Hit> = Vec::new();
                for s in 0..split {
                    let lo = s * per;
                    let hi = ((s + 1) * per).min(n);
                    union.extend(ix.try_search_range(query, usize::MAX, lo..hi).unwrap());
                }
                union.sort_by(|a, b| {
                    b.score
                        .partial_cmp(&a.score)
                        .unwrap_or(std::cmp::Ordering::Equal)
                        .then(a.doc.cmp(&b.doc))
                });
                assert_eq!(union, full, "query {query:?} at {split} ranges");
            }
        }
        // Conjunctive variant too.
        let full = ix.search_all_terms("temperature weissfluhjoch", usize::MAX);
        let mut union: Vec<Hit> = Vec::new();
        for s in 0..n {
            union.extend(
                ix.try_search_all_terms_range("temperature weissfluhjoch", usize::MAX, s..s + 1)
                    .unwrap(),
            );
        }
        assert_eq!(union, full);
    }

    #[test]
    fn phrase_search_uses_positions() {
        let ix = index();
        let hits = ix.phrase("wind speed", 10);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].key, "Deployment:wfj_wind");
        // Terms present but not adjacent in this order:
        assert!(ix.phrase("speed wind", 10).is_empty());
    }

    #[test]
    fn prefix_search_matches_stems() {
        let ix = index();
        let hits = ix.prefix_search("temp", 10);
        assert_eq!(hits.len(), 2);
        let hits = ix.prefix_search("weiss", 10);
        assert_eq!(hits.len(), 2);
    }

    #[test]
    fn replacement_removes_old_terms() {
        let mut ix = index();
        ix.add_document("Deployment:wfj_temp", "now a humidity probe");
        assert_eq!(ix.search("temperature", 10).len(), 1, "only Davos remains");
        let hits = ix.search("humidity", 10);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].key, "Deployment:wfj_temp");
        assert_eq!(ix.doc_count(), 3, "replacement does not grow the corpus");
    }

    #[test]
    fn empty_query_and_unknown_terms() {
        let ix = index();
        assert!(ix.search("", 5).is_empty());
        assert!(ix.search("zzzunknown", 5).is_empty());
        assert_eq!(ix.doc_frequency("temperature"), 2);
        assert_eq!(ix.doc_frequency("zzz"), 0);
    }

    #[test]
    fn stemming_bridges_query_and_doc() {
        let ix = index();
        // "sensors" (plural) finds docs with "sensor".
        assert!(!ix.search("sensors", 5).is_empty());
        // "monitoring" vs "monitor".
        assert!(!ix.search("monitor", 5).is_empty());
    }

    #[test]
    fn idf_prefers_rare_terms() {
        let ix = index();
        // "davos" appears once, "weissfluhjoch" twice; a query with both
        // should rank the Davos doc highest for the rare-term match only if
        // scores reflect idf. Just assert rare-term idf > common-term idf.
        let rare = ix.idf(1);
        let common = ix.idf(2);
        assert!(rare > common);
    }

    #[test]
    fn prefix_upper_bound_edge() {
        assert_eq!(prefix_upper_bound("ab"), Some("ac".into()));
        assert_eq!(prefix_upper_bound("a"), Some("b".into()));
    }

    #[test]
    fn batch_build_equals_sequential_adds() {
        let docs: Vec<(String, String)> = (0..90)
            .map(|i| {
                (
                    format!("Page:{i}"),
                    format!("sensor number {i} measuring temperature at site {}", i % 7),
                )
            })
            .collect();
        let mut sequential = SearchIndex::new();
        for (key, text) in &docs {
            sequential.add_document(key, text);
        }
        for threads in [1, 2, 7] {
            let built = SearchIndex::build_in(&Pool::new(threads), &docs);
            assert_eq!(built.fingerprint(), sequential.fingerprint(), "{threads}");
            assert_eq!(built.doc_count(), sequential.doc_count());
            assert_eq!(built.term_count(), sequential.term_count());
        }
    }

    #[test]
    fn fingerprint_tracks_content() {
        let a = index();
        let mut b = index();
        assert_eq!(a.fingerprint(), b.fingerprint());
        b.add_document("Fieldsite:New", "fresh snow data");
        assert_ne!(a.fingerprint(), b.fingerprint());
    }

    // Hit/miss counts are not asserted here: the epoch clock is process
    // global and sibling tests index documents concurrently; only the
    // served values are deterministic.
    #[test]
    fn cached_search_matches_uncached_before_and_after_writes() {
        let mut ix = index();
        let (cached, _) = ix.search_cached("snow", 10);
        assert_eq!(*cached, ix.search("snow", 10));
        let (cached2, _) = ix.search_cached("snow", 10);
        assert_eq!(*cached2, ix.search("snow", 10));
        ix.add_document("Fieldsite:Glacier", "deep snow pack telemetry");
        let (after, _) = ix.search_cached("snow", 10);
        assert_eq!(
            *after,
            ix.search("snow", 10),
            "write must invalidate the cached hit list"
        );
        assert!(after.iter().any(|h| h.key == "Fieldsite:Glacier"));
        let (conj, _) = ix.search_all_terms_cached("snow pack", 10);
        assert_eq!(*conj, ix.search_all_terms("snow pack", 10));
    }

    #[test]
    fn try_search_honors_ambient_deadline() {
        let ix = index();
        // No deadline: identical results to the unchecked path.
        assert_eq!(
            ix.try_search("temperature", 10).expect("no budget set"),
            ix.search("temperature", 10)
        );
        assert_eq!(
            ix.try_search_all_terms("temperature weissfluhjoch", 10)
                .expect("no budget set"),
            ix.search_all_terms("temperature weissfluhjoch", 10)
        );
        // Expired deadline: the checked paths interrupt, the unchecked
        // paths still complete.
        let _scope = sensormeta_resil::deadline_scope(sensormeta_resil::Deadline::within(
            std::time::Duration::ZERO,
        ));
        std::thread::sleep(std::time::Duration::from_millis(2));
        assert_eq!(
            ix.try_search("temperature", 10),
            Err(Interrupt::DeadlineExceeded)
        );
        assert_eq!(
            ix.try_search_all_terms("temperature wind", 10),
            Err(Interrupt::DeadlineExceeded)
        );
        assert_eq!(ix.search("temperature", 10).len(), 2);
    }
}
