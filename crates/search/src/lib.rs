//! # sensormeta-search
//!
//! Full-text search substrate for metadata pages: tokenizer with light
//! stemming, positional inverted index with BM25 scoring (disjunctive,
//! conjunctive, phrase, and prefix modes), weighted prefix-trie
//! autocomplete, and faceted aggregation over annotations.
//!
//! ```
//! use sensormeta_search::SearchIndex;
//!
//! let mut ix = SearchIndex::new();
//! ix.add_document("Deployment:wfj", "temperature sensor at Weissfluhjoch");
//! let hits = ix.search("temperature", 5);
//! assert_eq!(hits[0].key, "Deployment:wfj");
//! ```

#![warn(missing_docs)]

pub mod autocomplete;
pub mod facets;
pub mod highlight;
pub mod index;
pub mod suggest;
pub mod tokenize;

pub use autocomplete::Autocomplete;
pub use facets::{compute_facets, Facet};
pub use highlight::{highlight, highlight_html};
pub use index::{Bm25Params, DocId, Hit, SearchIndex};
pub use suggest::{damerau_levenshtein_capped, SpellSuggester};
pub use tokenize::{normalize, tokenize};
