//! Prefix-trie autocomplete for the advanced search form.
//!
//! The paper's query interface offers "autocomplete features" over titles,
//! attributes, and values. The trie stores weighted entries and returns the
//! top-k completions for a prefix, heaviest first.

use std::collections::BTreeMap;

/// A weighted prefix trie over strings.
#[derive(Debug, Default)]
pub struct Autocomplete {
    root: Node,
    len: usize,
}

#[derive(Debug, Default)]
struct Node {
    children: BTreeMap<char, Node>,
    /// Weight if a complete entry terminates here.
    terminal: Option<f64>,
    /// Max terminal weight in this subtree (for pruned top-k descent).
    best: f64,
}

impl Autocomplete {
    /// Creates an empty trie.
    pub fn new() -> Autocomplete {
        Autocomplete::default()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Inserts an entry with a weight (e.g. page popularity / frequency).
    /// Re-inserting replaces the weight.
    pub fn insert(&mut self, entry: &str, weight: f64) {
        let lower = entry.to_lowercase();
        let mut node = &mut self.root;
        node.best = node.best.max(weight);
        for c in lower.chars() {
            node = node.children.entry(c).or_default();
            node.best = node.best.max(weight);
        }
        if node.terminal.is_none() {
            self.len += 1;
        }
        node.terminal = Some(weight);
    }

    /// Top-`k` completions for `prefix`, ordered by descending weight then
    /// lexicographically. Matching is case-insensitive; returned strings are
    /// the lowercased entries.
    pub fn complete(&self, prefix: &str, k: usize) -> Vec<(String, f64)> {
        let lower = prefix.to_lowercase();
        let mut node = &self.root;
        for c in lower.chars() {
            match node.children.get(&c) {
                Some(n) => node = n,
                None => return Vec::new(),
            }
        }
        let mut out: Vec<(String, f64)> = Vec::new();
        collect(node, &mut lower.clone(), &mut out, k);
        out.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.0.cmp(&b.0))
        });
        out.truncate(k);
        out
    }

    /// True if the exact entry exists.
    pub fn contains(&self, entry: &str) -> bool {
        let lower = entry.to_lowercase();
        let mut node = &self.root;
        for c in lower.chars() {
            match node.children.get(&c) {
                Some(n) => node = n,
                None => return false,
            }
        }
        node.terminal.is_some()
    }
}

/// Depth-first collection with subtree-max pruning: a subtree whose best
/// weight can't beat the current k-th candidate is skipped.
fn collect(node: &Node, buf: &mut String, out: &mut Vec<(String, f64)>, k: usize) {
    if out.len() >= k {
        let kth = out.iter().map(|(_, w)| *w).fold(f64::INFINITY, f64::min);
        if node.best <= kth && out.len() >= k * 4 {
            return;
        }
    }
    if let Some(w) = node.terminal {
        out.push((buf.clone(), w));
    }
    for (c, child) in &node.children {
        buf.push(*c);
        collect(child, buf, out, k);
        buf.pop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trie() -> Autocomplete {
        let mut t = Autocomplete::new();
        t.insert("temperature", 10.0);
        t.insert("temp_probe", 3.0);
        t.insert("tempest", 1.0);
        t.insert("wind_speed", 7.0);
        t.insert("Weissfluhjoch", 5.0);
        t
    }

    #[test]
    fn completes_by_weight() {
        let t = trie();
        let got = t.complete("temp", 2);
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].0, "temperature");
        assert_eq!(got[1].0, "temp_probe");
    }

    #[test]
    fn case_insensitive() {
        let t = trie();
        assert_eq!(t.complete("WEISS", 5).len(), 1);
        assert!(t.contains("weissfluhjoch"));
        assert!(t.contains("Weissfluhjoch"));
    }

    #[test]
    fn no_matches() {
        let t = trie();
        assert!(t.complete("zzz", 5).is_empty());
        assert!(!t.contains("tem"));
    }

    #[test]
    fn empty_prefix_returns_global_top() {
        let t = trie();
        let got = t.complete("", 3);
        assert_eq!(got[0].0, "temperature");
        assert_eq!(got.len(), 3);
    }

    #[test]
    fn reinsert_updates_weight() {
        let mut t = trie();
        assert_eq!(t.len(), 5);
        t.insert("tempest", 99.0);
        assert_eq!(t.len(), 5);
        assert_eq!(t.complete("temp", 1)[0].0, "tempest");
    }

    #[test]
    fn exact_entry_is_its_own_completion() {
        let t = trie();
        let got = t.complete("wind_speed", 5);
        assert_eq!(got, vec![("wind_speed".to_string(), 7.0)]);
    }
}
