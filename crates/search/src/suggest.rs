//! "Did you mean" spelling suggestions over the index vocabulary.
//!
//! When a query term matches nothing, the search box proposes the
//! most-frequent vocabulary term within a small edit distance — standard
//! behaviour for a search UI of the demo's vintage, implemented with a
//! banded Damerau–Levenshtein distance so the vocabulary scan stays cheap.

use std::collections::BTreeMap;

/// A vocabulary with document frequencies, queryable for near matches.
#[derive(Debug, Default)]
pub struct SpellSuggester {
    /// term → frequency weight.
    vocab: BTreeMap<String, usize>,
}

impl SpellSuggester {
    /// Creates an empty suggester.
    pub fn new() -> SpellSuggester {
        SpellSuggester::default()
    }

    /// Adds (or bumps) a vocabulary term.
    pub fn add(&mut self, term: &str, weight: usize) {
        *self.vocab.entry(term.to_lowercase()).or_insert(0) += weight;
    }

    /// Number of distinct terms.
    pub fn len(&self) -> usize {
        self.vocab.len()
    }

    /// True when the vocabulary is empty.
    pub fn is_empty(&self) -> bool {
        self.vocab.is_empty()
    }

    /// True if the exact term is known.
    pub fn contains(&self, term: &str) -> bool {
        self.vocab.contains_key(&term.to_lowercase())
    }

    /// Best correction for `term` within `max_distance` edits, or `None` if
    /// the term is already known or nothing is close. Ties break toward the
    /// more frequent term, then lexicographically.
    pub fn suggest(&self, term: &str, max_distance: usize) -> Option<String> {
        let term = term.to_lowercase();
        if self.vocab.contains_key(&term) || term.is_empty() {
            return None;
        }
        let mut best: Option<(usize, usize, &str)> = None; // (dist, -freq via Reverse cmp, term)
        for (cand, &freq) in &self.vocab {
            // Cheap length pre-filter.
            if cand.chars().count().abs_diff(term.chars().count()) > max_distance {
                continue;
            }
            let Some(d) = damerau_levenshtein_capped(&term, cand, max_distance) else {
                continue;
            };
            if d == 0 {
                return None;
            }
            let better = match &best {
                None => true,
                Some((bd, bf, bt)) => {
                    d < *bd || (d == *bd && (freq > *bf || (freq == *bf && cand.as_str() < *bt)))
                }
            };
            if better {
                best = Some((d, freq, cand));
            }
        }
        best.map(|(_, _, t)| t.to_owned())
    }

    /// Suggests a corrected multi-term query; `None` when every term is
    /// already known (nothing to fix).
    pub fn suggest_query(&self, query: &str, max_distance: usize) -> Option<String> {
        let mut changed = false;
        let corrected: Vec<String> = query
            .split_whitespace()
            .map(|t| match self.suggest(t, max_distance) {
                Some(fix) => {
                    changed = true;
                    fix
                }
                None => t.to_lowercase(),
            })
            .collect();
        changed.then(|| corrected.join(" "))
    }
}

/// Damerau–Levenshtein distance (adjacent transpositions count 1), returning
/// `None` when the distance certainly exceeds `cap`.
pub fn damerau_levenshtein_capped(a: &str, b: &str, cap: usize) -> Option<usize> {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    if a.len().abs_diff(b.len()) > cap {
        return None;
    }
    let mut prev2: Vec<usize> = Vec::new();
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    for i in 1..=a.len() {
        let mut cur = vec![0usize; b.len() + 1];
        cur[0] = i;
        let mut row_min = cur[0];
        for j in 1..=b.len() {
            let cost = usize::from(a[i - 1] != b[j - 1]);
            let mut d = (prev[j] + 1).min(cur[j - 1] + 1).min(prev[j - 1] + cost);
            if i > 1 && j > 1 && a[i - 1] == b[j - 2] && a[i - 2] == b[j - 1] {
                d = d.min(prev2[j - 2] + 1);
            }
            cur[j] = d;
            row_min = row_min.min(d);
        }
        if row_min > cap {
            return None; // every continuation only grows
        }
        prev2 = std::mem::replace(&mut prev, cur);
    }
    let d = prev[b.len()];
    (d <= cap).then_some(d)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn suggester() -> SpellSuggester {
        let mut s = SpellSuggester::new();
        s.add("temperature", 30);
        s.add("temperament", 2);
        s.add("wind", 20);
        s.add("wind_speed", 15);
        s.add("snow", 25);
        s
    }

    #[test]
    fn distance_basics() {
        assert_eq!(damerau_levenshtein_capped("abc", "abc", 2), Some(0));
        assert_eq!(damerau_levenshtein_capped("abc", "abd", 2), Some(1));
        assert_eq!(
            damerau_levenshtein_capped("abc", "acb", 2),
            Some(1),
            "transposition"
        );
        assert_eq!(damerau_levenshtein_capped("abc", "ab", 2), Some(1));
        assert_eq!(damerau_levenshtein_capped("kitten", "sitting", 3), Some(3));
        assert_eq!(
            damerau_levenshtein_capped("short", "muchlongerword", 2),
            None
        );
        assert_eq!(
            damerau_levenshtein_capped("abcdef", "ghijkl", 2),
            None,
            "capped early"
        );
    }

    #[test]
    fn suggests_common_correction() {
        let s = suggester();
        assert_eq!(s.suggest("temperatur", 2), Some("temperature".into()));
        assert_eq!(
            s.suggest("tempertaure", 2),
            Some("temperature".into()),
            "transposition"
        );
        assert_eq!(s.suggest("snwo", 2), Some("snow".into()));
    }

    #[test]
    fn known_terms_need_no_correction() {
        let s = suggester();
        assert_eq!(s.suggest("temperature", 2), None);
        assert_eq!(s.suggest("WIND", 2), None, "case-insensitive");
    }

    #[test]
    fn frequency_breaks_ties() {
        let mut s = SpellSuggester::new();
        s.add("cart", 1);
        s.add("card", 100);
        // "carx" is distance 1 from both; the frequent one wins.
        assert_eq!(s.suggest("carx", 2), Some("card".into()));
    }

    #[test]
    fn far_terms_get_nothing() {
        let s = suggester();
        assert_eq!(s.suggest("zzzzzzz", 2), None);
        assert_eq!(s.suggest("", 2), None);
    }

    #[test]
    fn query_level_suggestion() {
        let s = suggester();
        assert_eq!(
            s.suggest_query("temperatur snwo", 2),
            Some("temperature snow".into())
        );
        assert_eq!(s.suggest_query("wind snow", 2), None, "all terms known");
        // Mixed: one fixable, one hopeless (kept as-is).
        assert_eq!(
            s.suggest_query("snwo zzzzzzz", 2),
            Some("snow zzzzzzz".into())
        );
    }
}
