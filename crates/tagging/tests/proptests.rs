//! Property-based tests for the tagging pipeline: clique correctness
//! against brute force, Eq. 6 bounds, similarity symmetry, and cache
//! coherence.

use proptest::prelude::*;
use sensormeta_graph::UndirectedGraph;
use sensormeta_tagging::{
    brute_force_maximal_cliques, compute_cloud, cosine, font_size, maximal_cliques,
    similarity_matrix, BkVariant, CloudCache, CloudParams, FontScale, FontSizeInput, TagStore,
};
use std::collections::BTreeSet;

fn arb_graph() -> impl Strategy<Value = UndirectedGraph> {
    (
        2usize..11,
        prop::collection::vec((0usize..11, 0usize..11), 0..40),
    )
        .prop_map(|(n, raw)| {
            let edges: Vec<(usize, usize)> = raw.into_iter().map(|(u, v)| (u % n, v % n)).collect();
            UndirectedGraph::from_edges(n, &edges)
        })
}

fn arb_store() -> impl Strategy<Value = TagStore> {
    prop::collection::vec((0u8..8, 0u8..8), 0..40).prop_map(|pairs| {
        let mut s = TagStore::new();
        for (p, t) in pairs {
            s.add(&format!("page{p}"), &format!("tag{t}"));
        }
        s
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every Bron–Kerbosch variant equals brute-force enumeration.
    #[test]
    fn bk_variants_equal_brute_force(g in arb_graph()) {
        let want = brute_force_maximal_cliques(&g);
        for variant in [BkVariant::Naive, BkVariant::Pivot, BkVariant::Degeneracy] {
            let (got, stats) = maximal_cliques(&g, variant);
            prop_assert_eq!(&got, &want, "{:?}", variant);
            prop_assert_eq!(stats.cliques, want.len());
            // Every reported set is actually a clique and actually maximal.
            for clique in &got {
                for (i, &u) in clique.iter().enumerate() {
                    for &v in &clique[i + 1..] {
                        prop_assert!(g.has_edge(u, v), "{:?} not a clique", clique);
                    }
                }
                for w in 0..g.node_count() {
                    if clique.contains(&w) { continue; }
                    let extends = clique.iter().all(|&u| g.has_edge(u, w));
                    prop_assert!(!extends, "{:?} + {w} still a clique", clique);
                }
            }
        }
    }

    /// Cosine similarity is symmetric, bounded, and 1 on identical sets.
    #[test]
    fn cosine_properties(a in prop::collection::btree_set(0usize..30, 0..15),
                         b in prop::collection::btree_set(0usize..30, 0..15)) {
        // BTreeSet iteration is ascending, so these are valid sorted slices.
        let a: Vec<usize> = a.into_iter().collect();
        let b: Vec<usize> = b.into_iter().collect();
        let s = cosine(&a, &b);
        prop_assert!((0.0..=1.0 + 1e-12).contains(&s));
        prop_assert!((s - cosine(&b, &a)).abs() < 1e-12);
        if !a.is_empty() {
            prop_assert!((cosine(&a, &a) - 1.0).abs() < 1e-12);
        }
        let disjoint: Vec<usize> = a.iter().map(|x| x + 100).collect();
        prop_assert_eq!(cosine(&a, &disjoint), 0.0);
    }

    /// The similarity matrix is symmetric with unit diagonal.
    #[test]
    fn matrix_symmetry(sets in prop::collection::vec(
        prop::collection::btree_set(0usize..12, 1..6), 1..8))
    {
        let sets: Vec<Vec<usize>> = sets.into_iter().map(|s| s.into_iter().collect()).collect();
        let m = similarity_matrix(&sets);
        for i in 0..sets.len() {
            prop_assert!((m.get(i, i) - 1.0).abs() < 1e-12);
            for j in 0..sets.len() {
                prop_assert!((m.get(i, j) - m.get(j, i)).abs() < 1e-12);
            }
        }
    }

    /// Eq. 6: sizes are ≥ 1 always, exactly 1 at t_min, and monotone in
    /// count for fixed clique data.
    #[test]
    fn eq6_bounds(counts in prop::collection::vec(1usize..60, 2..20),
                  memberships in 0usize..5, order in 0usize..6, cliques in 0usize..8) {
        let scale = FontScale::from_counts(&counts, cliques, 10);
        let mut prev = 0usize;
        let mut sorted = counts.clone();
        sorted.sort_unstable();
        for &count in &sorted {
            let s = font_size(FontSizeInput {
                count,
                clique_memberships: memberships,
                max_clique_order: order,
            }, scale);
            prop_assert!(s >= 1);
            if count <= scale.t_min {
                prop_assert_eq!(s, 1);
            }
            prop_assert!(s >= prev, "monotonicity: {s} < {prev} at count {count}");
            prev = s;
        }
    }

    /// The full cloud pipeline: every tag appears exactly once, sizes ≥ 1,
    /// clique indices in range, and clique members really share pages.
    #[test]
    fn cloud_wellformed(store in arb_store()) {
        let cloud = compute_cloud(&store, &CloudParams::default());
        prop_assert_eq!(cloud.entries.len(), store.tag_count());
        let mut seen = BTreeSet::new();
        for e in &cloud.entries {
            prop_assert!(seen.insert(e.tag.clone()), "duplicate {}", e.tag);
            prop_assert!(e.font_size >= 1);
            prop_assert_eq!(e.count, store.frequency(&e.tag));
            for &c in &e.cliques {
                prop_assert!(c < cloud.cliques.len());
            }
        }
        for clique in &cloud.cliques {
            prop_assert!(clique.len() > 1, "singleton cliques are filtered");
        }
    }

    /// Cache coherence: a cached cloud equals a fresh computation for any
    /// mutation history.
    #[test]
    fn cache_coherence(ops in prop::collection::vec((0u8..6, 0u8..6, any::<bool>()), 1..30)) {
        let mut store = TagStore::new();
        let cache = CloudCache::new();
        let params = CloudParams::default();
        for (p, t, add) in ops {
            let page = format!("p{p}");
            let tag = format!("t{t}");
            if add {
                store.add(&page, &tag);
            } else {
                store.remove(&page, &tag);
            }
            let cached = cache.get(&store, &params);
            let fresh = compute_cloud(&store, &params);
            prop_assert_eq!(&*cached, &fresh);
        }
    }
}
