//! The Cache module of Fig. 4.
//!
//! "A Cache mechanism is also implemented to decrease the number of
//! computations and data exchanges." The cache memoizes computed clouds
//! keyed by the store's mutation version plus the cloud parameters, so
//! repeated renders of an unchanged tag set cost a lookup, and any mutation
//! invalidates naturally (the version moves on).

use crate::clique::BkVariant;
use crate::cloud::{compute_cloud, CloudParams, TagCloud};
use crate::store::TagStore;
use sensormeta_obs as obs;
use std::collections::HashMap;
use std::sync::Arc;

/// Cache keyed by (store version, parameter fingerprint).
#[derive(Debug, Default)]
pub struct CloudCache {
    entries: HashMap<(u64, ParamKey), Arc<TagCloud>>,
    hits: u64,
    misses: u64,
    /// Entries evicted because their version is stale.
    evicted: u64,
}

/// Hashable fingerprint of [`CloudParams`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct ParamKey {
    threshold_millis: u32,
    f_max: usize,
    variant: u8,
    clique_aware: bool,
}

impl From<&CloudParams> for ParamKey {
    fn from(p: &CloudParams) -> Self {
        ParamKey {
            threshold_millis: (p.threshold * 1000.0).round() as u32,
            f_max: p.f_max,
            variant: match p.variant {
                BkVariant::Naive => 0,
                BkVariant::Pivot => 1,
                BkVariant::Degeneracy => 2,
            },
            clique_aware: p.clique_aware,
        }
    }
}

/// Cache statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups answered from cache.
    pub hits: u64,
    /// Lookups that recomputed.
    pub misses: u64,
    /// Stale entries dropped.
    pub evicted: u64,
}

impl CloudCache {
    /// Creates an empty cache.
    pub fn new() -> CloudCache {
        CloudCache::default()
    }

    /// Returns the cloud for the store's current state, computing it only on
    /// miss. Stale versions of the same parameter set are evicted.
    pub fn get(&mut self, store: &TagStore, params: &CloudParams) -> Arc<TagCloud> {
        let key = (store.version(), ParamKey::from(params));
        if let Some(cloud) = self.entries.get(&key) {
            self.hits += 1;
            obs::counter("tagging_cloud_cache_hits_total").inc();
            return Arc::clone(cloud);
        }
        self.misses += 1;
        obs::counter("tagging_cloud_cache_misses_total").inc();
        // Evict entries for the same params at older versions.
        let before = self.entries.len();
        self.entries.retain(|(v, k), _| *k != key.1 || *v == key.0);
        let evicted_now = (before - self.entries.len()) as u64;
        self.evicted += evicted_now;
        obs::counter("tagging_cloud_cache_evicted_total").add(evicted_now);
        let cloud = {
            let _timing = obs::global().span("tagging_cloud_compute");
            Arc::new(compute_cloud(store, params))
        };
        self.entries.insert(key, Arc::clone(&cloud));
        cloud
    }

    /// Statistics so far.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits,
            misses: self.misses,
            evicted: self.evicted,
        }
    }

    /// Clears everything (stats included).
    pub fn clear(&mut self) {
        *self = CloudCache::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store() -> TagStore {
        let mut s = TagStore::new();
        s.ingest([("a", "snow"), ("b", "snow"), ("b", "wind")]);
        s
    }

    #[test]
    fn second_lookup_hits() {
        let s = store();
        let mut cache = CloudCache::new();
        let c1 = cache.get(&s, &CloudParams::default());
        let c2 = cache.get(&s, &CloudParams::default());
        assert!(Arc::ptr_eq(&c1, &c2));
        assert_eq!(cache.stats().hits, 1);
        assert_eq!(cache.stats().misses, 1);
    }

    #[test]
    fn mutation_invalidates() {
        let mut s = store();
        let mut cache = CloudCache::new();
        cache.get(&s, &CloudParams::default());
        s.add("c", "avalanche");
        let c2 = cache.get(&s, &CloudParams::default());
        assert_eq!(cache.stats().misses, 2);
        assert_eq!(cache.stats().evicted, 1, "stale version dropped");
        assert!(c2.entries.iter().any(|e| e.tag == "avalanche"));
    }

    #[test]
    fn different_params_cached_separately() {
        let s = store();
        let mut cache = CloudCache::new();
        cache.get(&s, &CloudParams::default());
        cache.get(
            &s,
            &CloudParams {
                f_max: 20,
                ..CloudParams::default()
            },
        );
        assert_eq!(cache.stats().misses, 2);
        assert_eq!(cache.stats().evicted, 0);
    }

    #[test]
    fn clear_resets() {
        let s = store();
        let mut cache = CloudCache::new();
        cache.get(&s, &CloudParams::default());
        cache.clear();
        assert_eq!(cache.stats(), CacheStats::default());
    }
}
