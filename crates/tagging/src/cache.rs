//! The Cache module of Fig. 4, on the shared `sensormeta-cache` subsystem.
//!
//! "A Cache mechanism is also implemented to decrease the number of
//! computations and data exchanges." Since PR 5 the bespoke
//! version-keyed map is gone: [`CloudCache`] is a thin facade over a shared
//! epoch-invalidated [`Cache`] namespace (`cache_tag_cloud_*` metrics),
//! keyed by the store's mutation version plus the cloud parameters and
//! invalidated through the [`Domain::TagIncidence`] epoch that every
//! [`TagStore`] mutation bumps. The PR 3 metric
//! names (`tagging_cloud_cache_hits_total` / `_misses_total` /
//! `_evicted_total`) keep emitting as legacy aliases so existing
//! dashboards and scrapes stay live.

use crate::clique::BkVariant;
use crate::cloud::{compute_cloud, try_compute_cloud, CloudParams, TagCloud};
use crate::store::TagStore;
use parking_lot::Mutex;
use sensormeta_cache::{
    Cache, CacheConfig, CacheError, Domain, EpochClock, Fingerprint, LegacyMetricNames, Status,
};
use sensormeta_obs as obs;
use sensormeta_resil::{self as resil, Interrupt};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Epoch domain a computed cloud depends on.
const DEPS: &[Domain] = &[Domain::TagIncidence];

/// Byte budget for memoized clouds.
const CAPACITY: usize = 1 << 20;

/// Default bound on how old a held-over cloud may be when served under
/// degradation (measured from the time it was computed or last validated).
const DEFAULT_STALE_GRACE: Duration = Duration::from_secs(60);

/// PR 3 metric names, kept emitting from the shared subsystem.
const LEGACY: LegacyMetricNames = LegacyMetricNames {
    hits: "tagging_cloud_cache_hits_total",
    misses: "tagging_cloud_cache_misses_total",
    evictions: "tagging_cloud_cache_evicted_total",
};

/// Cache statistics (the PR 3 shape, filled from the shared subsystem).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups answered from cache.
    pub hits: u64,
    /// Lookups that recomputed.
    pub misses: u64,
    /// Stale or pressure-dropped entries.
    pub evicted: u64,
}

/// Tag-cloud memoization over the shared result-cache subsystem.
///
/// Besides the epoch-validated cache proper, the facade holds the *last
/// good* cloud regardless of store version: cache keys include the store's
/// mutation version, so after a mutation the previous version's entry is
/// unreachable by key — yet it is exactly what serve-stale degradation
/// wants when the recompute fails or the tag-cloud breaker is open.
#[derive(Debug)]
pub struct CloudCache {
    cache: Cache<TagCloud>,
    last_good: Mutex<Option<(Arc<TagCloud>, Instant)>>,
    stale_grace: Option<Duration>,
}

impl Default for CloudCache {
    fn default() -> Self {
        Self::new()
    }
}

fn config() -> CacheConfig {
    let mut cfg = CacheConfig::new("tag_cloud", CAPACITY, DEPS);
    // One shard: clouds are few and the stale sweep then sees every entry,
    // preserving the PR 3 "stale version dropped on next compute" counts.
    cfg.shards = 1;
    cfg.legacy = Some(LEGACY);
    cfg
}

fn weigh(cloud: &TagCloud) -> usize {
    cloud
        .entries
        .iter()
        .map(|e| std::mem::size_of_val(e) + e.tag.len())
        .sum()
}

impl CloudCache {
    /// Creates an empty cache validated against the global epoch clock.
    pub fn new() -> CloudCache {
        CloudCache {
            cache: Cache::new(config(), weigh),
            last_good: Mutex::new(None),
            stale_grace: Some(DEFAULT_STALE_GRACE),
        }
    }

    /// Creates a cache validated against an explicit clock — test isolation
    /// from unrelated mutations bumping the process-global clock.
    pub fn with_clock(clock: Arc<EpochClock>) -> CloudCache {
        CloudCache {
            cache: Cache::with_clock(config(), weigh, clock),
            last_good: Mutex::new(None),
            stale_grace: Some(DEFAULT_STALE_GRACE),
        }
    }

    /// Overrides the staleness grace window for [`stale`](CloudCache::stale);
    /// `None` disables serve-stale degradation entirely.
    pub fn set_stale_grace(&mut self, grace: Option<Duration>) {
        self.stale_grace = grace;
    }

    /// Returns the cloud for the store's current state, computing it only
    /// on miss. Entries from older store versions go epoch-stale and are
    /// swept on the next compute.
    pub fn get(&self, store: &TagStore, params: &CloudParams) -> Arc<TagCloud> {
        self.get_with_status(store, params).0
    }

    /// Like [`get`](CloudCache::get) but also reports whether the cloud was
    /// served from cache — servers surface this as a `Cache-Status` header.
    pub fn get_with_status(
        &self,
        store: &TagStore,
        params: &CloudParams,
    ) -> (Arc<TagCloud>, Status) {
        let key = param_key(store.version(), params);
        let (result, status) = self.cache.get_or_compute(key, None, || {
            let _timing = obs::global().span("tagging_cloud_compute");
            Ok::<_, std::convert::Infallible>(compute_cloud(store, params))
        });
        match result {
            Ok(cloud) => {
                self.remember(&cloud);
                (cloud, status)
            }
            // Infallible compute, no deadline: unreachable; recompute
            // without caching rather than panic.
            Err(_) => (Arc::new(compute_cloud(store, params)), Status::Bypass),
        }
    }

    /// Like [`get_with_status`](CloudCache::get_with_status) but cooperative:
    /// the compute observes the ambient resil deadline (and chaos plan) and
    /// aborts with an [`Interrupt`] instead of burning CPU past it.
    /// Interrupted computes are never negatively cached, so the next request
    /// retries from scratch.
    pub fn try_get_with_status(
        &self,
        store: &TagStore,
        params: &CloudParams,
    ) -> Result<(Arc<TagCloud>, Status), Interrupt> {
        let key = param_key(store.version(), params);
        let wait = resil::current_deadline().remaining();
        let (result, status) = self.cache.get_or_compute_filtered(
            key,
            wait,
            || {
                let _timing = obs::global().span("tagging_cloud_compute");
                try_compute_cloud(store, params)
            },
            |_| false,
        );
        match result {
            Ok(cloud) => {
                self.remember(&cloud);
                Ok((cloud, status))
            }
            Err(CacheError::Compute(i)) => Err(i),
            // A poisoned flight or single-flight wait that outlived the
            // deadline degrades the same way an expired budget does.
            Err(CacheError::Negative(_) | CacheError::WaitTimeout) => {
                Err(Interrupt::DeadlineExceeded)
            }
        }
    }

    /// Returns the last successfully computed cloud — possibly for an older
    /// store version — if one exists within the staleness grace window,
    /// together with its age. This is the serve-stale degradation path for a
    /// failed or breaker-rejected recompute; callers must label the response
    /// as stale.
    pub fn stale(&self) -> Option<(Arc<TagCloud>, Duration)> {
        let grace = self.stale_grace?;
        let held = self.last_good.lock();
        let (cloud, at) = held.as_ref()?;
        let age = at.elapsed();
        if age < grace {
            obs::counter("tagging_cloud_stale_serves_total").inc();
            Some((Arc::clone(cloud), age))
        } else {
            None
        }
    }

    /// Records a successful result for serve-stale degradation. A cache hit
    /// refreshes the timestamp too: an epoch-valid hit proves the cloud still
    /// matches the store, so its staleness age legitimately restarts.
    fn remember(&self, cloud: &Arc<TagCloud>) {
        *self.last_good.lock() = Some((Arc::clone(cloud), Instant::now()));
    }

    /// Statistics so far (process-lifetime; `clear` does not reset them).
    pub fn stats(&self) -> CacheStats {
        let s = self.cache.stats();
        CacheStats {
            hits: s.hits,
            misses: s.misses,
            evicted: s.evictions,
        }
    }

    /// Drops every memoized cloud.
    pub fn clear(&self) {
        self.cache.clear();
    }
}

/// Stable fingerprint of (store version, cloud parameters).
fn param_key(version: u64, p: &CloudParams) -> u64 {
    Fingerprint::new()
        .u64(version)
        .f64(p.threshold)
        .usize(p.f_max)
        .u64(match p.variant {
            BkVariant::Naive => 0,
            BkVariant::Pivot => 1,
            BkVariant::Degeneracy => 2,
        })
        .bool(p.clique_aware)
        .finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store() -> TagStore {
        let mut s = TagStore::new();
        s.ingest([("a", "snow"), ("b", "snow"), ("b", "wind")]);
        s
    }

    fn isolated() -> (CloudCache, Arc<EpochClock>) {
        let clk = Arc::new(EpochClock::new());
        (CloudCache::with_clock(Arc::clone(&clk)), clk)
    }

    #[test]
    fn second_lookup_hits() {
        let s = store();
        let (cache, _clk) = isolated();
        let c1 = cache.get(&s, &CloudParams::default());
        let c2 = cache.get(&s, &CloudParams::default());
        assert!(Arc::ptr_eq(&c1, &c2));
        assert_eq!(cache.stats().hits, 1);
        assert_eq!(cache.stats().misses, 1);
    }

    #[test]
    fn mutation_invalidates() {
        let mut s = store();
        let (cache, clk) = isolated();
        let _ = cache.get(&s, &CloudParams::default());
        s.add("c", "avalanche"); // bumps the global clock; mirror it here
        clk.bump(Domain::TagIncidence);
        let c2 = cache.get(&s, &CloudParams::default());
        assert_eq!(cache.stats().misses, 2);
        assert_eq!(cache.stats().evicted, 1, "stale version swept on insert");
        assert!(c2.entries.iter().any(|e| e.tag == "avalanche"));
    }

    #[test]
    fn different_params_cached_separately() {
        let s = store();
        let (cache, _clk) = isolated();
        let _ = cache.get(&s, &CloudParams::default());
        let _ = cache.get(
            &s,
            &CloudParams {
                f_max: 20,
                ..CloudParams::default()
            },
        );
        assert_eq!(cache.stats().misses, 2);
        assert_eq!(cache.stats().evicted, 0);
    }

    #[test]
    fn stale_holdover_survives_mutation_and_respects_grace() {
        let mut s = store();
        let (mut cache, _clk) = isolated();
        assert!(cache.stale().is_none(), "nothing computed yet");
        let c1 = cache.get(&s, &CloudParams::default());
        s.add("c", "avalanche"); // old version's entry now unreachable by key
        let (held, age) = cache.stale().expect("last good cloud held over");
        assert!(Arc::ptr_eq(&c1, &held));
        assert!(age < DEFAULT_STALE_GRACE);
        cache.set_stale_grace(Some(Duration::ZERO));
        assert!(cache.stale().is_none(), "zero grace serves nothing");
        cache.set_stale_grace(None);
        assert!(cache.stale().is_none(), "disabled grace serves nothing");
    }

    #[test]
    fn try_get_respects_expired_deadline_and_is_not_negatively_cached() {
        let s = store();
        let (cache, _clk) = isolated();
        let expired = resil::Deadline::within(Duration::ZERO);
        let err = {
            let _scope = resil::deadline_scope(expired);
            cache
                .try_get_with_status(&s, &CloudParams::default())
                .expect_err("expired budget interrupts the compute")
        };
        assert_eq!(err, Interrupt::DeadlineExceeded);
        // The interrupt was not cached as a negative result: with headroom
        // the same key computes fine.
        let (cloud, status) = cache
            .try_get_with_status(&s, &CloudParams::default())
            .expect("retry succeeds");
        assert_eq!(status, Status::Miss);
        assert!(!cloud.entries.is_empty());
        assert!(cache.stale().is_some(), "success recorded for serve-stale");
    }

    #[test]
    fn clear_drops_entries_but_keeps_counters() {
        let s = store();
        let (cache, _clk) = isolated();
        let _ = cache.get(&s, &CloudParams::default());
        cache.clear();
        let _ = cache.get(&s, &CloudParams::default());
        assert_eq!(cache.stats().misses, 2, "cleared entry recomputes");
        assert_eq!(cache.stats().hits, 0);
    }
}
