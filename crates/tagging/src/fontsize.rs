//! The Font Size Calculation module — Eq. 6 of the paper.
//!
//! ```text
//! s_i = ⌈ c_i·ω(maxclique_i)/C  +  f_max·(t_i − t_min)/(t_max − t_min) ⌉   for t_i > t_min
//! s_i = 1                                                                  otherwise
//! ```
//!
//! where `c_i` is the number of cliques tag i belongs to, `ω(maxclique_i)`
//! the order (node count) of the largest clique containing it, `C` the total
//! number of cliques (always ≥ 1), `t_i` the tag's count, and
//! `t_min`/`t_max` the minimum/maximum frequencies.

/// Inputs to Eq. 6 for one tag.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FontSizeInput {
    /// `t_i` — frequency of the tag.
    pub count: usize,
    /// `c_i` — number of cliques the tag belongs to.
    pub clique_memberships: usize,
    /// `ω(maxclique_i)` — order of the largest clique containing the tag.
    pub max_clique_order: usize,
}

/// Global parameters of Eq. 6.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FontScale {
    /// `f_max` — maximum font size.
    pub f_max: usize,
    /// `t_min` — minimum tag frequency in the cloud.
    pub t_min: usize,
    /// `t_max` — maximum tag frequency in the cloud.
    pub t_max: usize,
    /// `C` — total number of cliques (clamped to ≥ 1).
    pub total_cliques: usize,
}

impl FontScale {
    /// Derives the scale from the tag counts and the clique count.
    pub fn from_counts(counts: &[usize], total_cliques: usize, f_max: usize) -> FontScale {
        FontScale {
            f_max,
            t_min: counts.iter().copied().min().unwrap_or(0),
            t_max: counts.iter().copied().max().unwrap_or(0),
            total_cliques: total_cliques.max(1),
        }
    }
}

/// Computes `s_i` per Eq. 6.
pub fn font_size(input: FontSizeInput, scale: FontScale) -> usize {
    if input.count <= scale.t_min {
        return 1;
    }
    let c = scale.total_cliques.max(1) as f64;
    let clique_term = (input.clique_memberships * input.max_clique_order) as f64 / c;
    let span = (scale.t_max - scale.t_min).max(1) as f64;
    let freq_term = scale.f_max as f64 * (input.count - scale.t_min) as f64 / span;
    (clique_term + freq_term).ceil() as usize
}

/// The frequency-only baseline (linear normalization without the clique
/// term) — ablation E8's comparator and the classic tag-cloud formula.
pub fn font_size_frequency_only(count: usize, scale: FontScale) -> usize {
    if count <= scale.t_min {
        return 1;
    }
    let span = (scale.t_max - scale.t_min).max(1) as f64;
    ((scale.f_max as f64) * (count - scale.t_min) as f64 / span).ceil() as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scale() -> FontScale {
        FontScale {
            f_max: 10,
            t_min: 1,
            t_max: 21,
            total_cliques: 4,
        }
    }

    #[test]
    fn minimum_frequency_gets_size_one() {
        let s = font_size(
            FontSizeInput {
                count: 1,
                clique_memberships: 3,
                max_clique_order: 5,
            },
            scale(),
        );
        assert_eq!(s, 1, "t_i = t_min → 1 regardless of cliques");
    }

    #[test]
    fn max_frequency_reaches_fmax_plus_clique_bonus() {
        let s = font_size(
            FontSizeInput {
                count: 21,
                clique_memberships: 2,
                max_clique_order: 4,
            },
            scale(),
        );
        // freq term = 10, clique term = 2*4/4 = 2 → ceil(12) = 12.
        assert_eq!(s, 12);
    }

    #[test]
    fn clique_membership_promotes_equal_frequency_tags() {
        let in_clique = font_size(
            FontSizeInput {
                count: 11,
                clique_memberships: 2,
                max_clique_order: 3,
            },
            scale(),
        );
        let loner = font_size(
            FontSizeInput {
                count: 11,
                clique_memberships: 0,
                max_clique_order: 0,
            },
            scale(),
        );
        assert!(in_clique > loner, "{in_clique} vs {loner}");
        assert_eq!(loner, font_size_frequency_only(11, scale()));
    }

    #[test]
    fn monotone_in_frequency() {
        let mut prev = 0;
        for count in 2..=21 {
            let s = font_size(
                FontSizeInput {
                    count,
                    clique_memberships: 1,
                    max_clique_order: 2,
                },
                scale(),
            );
            assert!(s >= prev, "font size must not shrink as counts grow");
            prev = s;
        }
    }

    #[test]
    fn degenerate_scales() {
        // All tags share one frequency: everything is size 1.
        let flat = FontScale {
            f_max: 8,
            t_min: 5,
            t_max: 5,
            total_cliques: 1,
        };
        assert_eq!(
            font_size(
                FontSizeInput {
                    count: 5,
                    clique_memberships: 1,
                    max_clique_order: 2
                },
                flat
            ),
            1
        );
        // Zero cliques: C clamps to 1, no division by zero.
        let s = FontScale::from_counts(&[1, 3], 0, 10);
        assert_eq!(s.total_cliques, 1);
    }

    #[test]
    fn from_counts_derives_extrema() {
        let s = FontScale::from_counts(&[4, 9, 2, 7], 3, 10);
        assert_eq!(s.t_min, 2);
        assert_eq!(s.t_max, 9);
    }
}
