//! Packed symmetric matrix: one flat allocation for the upper triangle.
//!
//! The tag-similarity matrix is symmetric with a unit diagonal, so storing
//! the full dense `n × n` as `Vec<Vec<f64>>` wastes half the memory and
//! costs `n` allocations. [`SymMatrix`] packs the upper triangle
//! (diagonal included) row-major into a single `Vec<f64>` — and because
//! that flat array enumerates the `(i ≤ j)` pairs contiguously, fixed-size
//! chunks of it are exactly the disjoint work units the parallel fill in
//! [`crate::similarity::similarity_matrix_in`] needs.

/// A symmetric `n × n` matrix stored as the packed row-major upper
/// triangle: entry `(i, j)` with `i ≤ j` lives at
/// `i·n − i·(i−1)/2 + (j − i)`.
#[derive(Debug, Clone, PartialEq)]
pub struct SymMatrix {
    n: usize,
    data: Vec<f64>,
}

impl SymMatrix {
    /// An `n × n` zero matrix (one allocation of `n·(n+1)/2` floats).
    pub fn zeros(n: usize) -> SymMatrix {
        SymMatrix {
            n,
            data: vec![0.0; n * (n + 1) / 2],
        }
    }

    /// Matrix dimension.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of stored entries (`n·(n+1)/2`).
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True for the `0 × 0` matrix.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Entry `(i, j)`; symmetric, so argument order is irrelevant.
    pub fn get(&self, i: usize, j: usize) -> f64 {
        assert!(
            i < self.n && j < self.n,
            "index ({i}, {j}) out of {}",
            self.n
        );
        let (i, j) = if i <= j { (i, j) } else { (j, i) };
        self.data[Self::flat_index(self.n, i, j)]
    }

    /// Sets entry `(i, j)` (and its mirror).
    pub fn set(&mut self, i: usize, j: usize, value: f64) {
        assert!(
            i < self.n && j < self.n,
            "index ({i}, {j}) out of {}",
            self.n
        );
        let (i, j) = if i <= j { (i, j) } else { (j, i) };
        let k = Self::flat_index(self.n, i, j);
        self.data[k] = value;
    }

    /// Flat index of `(i, j)` with `i ≤ j`.
    fn flat_index(n: usize, i: usize, j: usize) -> usize {
        debug_assert!(i <= j && j < n);
        i * n - i * (i + 1) / 2 + j
    }

    /// Inverse of the packed flat index: the `(i, j)` pair (with `i ≤ j`)
    /// stored at flat offset `k` of an `n × n` packed matrix. Binary search
    /// over row offsets — deterministic, used by the parallel pair fill.
    pub fn coords_for(n: usize, k: usize) -> (usize, usize) {
        debug_assert!(k < n * (n + 1) / 2);
        // offset(i) = flat_index(n, i, i) is strictly increasing in i; find
        // the largest i with offset(i) <= k.
        let offset = |i: usize| i * n - i * (i + 1) / 2 + i;
        let (mut lo, mut hi) = (0usize, n);
        while hi - lo > 1 {
            let mid = lo + (hi - lo) / 2;
            if offset(mid) <= k {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        (lo, lo + (k - offset(lo)))
    }

    /// The packed storage, flat-indexed; see [`Self::coords_for`].
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable packed storage for bulk fills.
    pub(crate) fn data_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_roundtrip_and_symmetry() {
        let mut m = SymMatrix::zeros(4);
        m.set(1, 3, 0.25);
        m.set(2, 0, 0.5);
        assert_eq!(m.get(3, 1), 0.25);
        assert_eq!(m.get(1, 3), 0.25);
        assert_eq!(m.get(0, 2), 0.5);
        assert_eq!(m.get(2, 2), 0.0);
        assert_eq!(m.len(), 10);
    }

    #[test]
    fn coords_roundtrip_every_flat_index() {
        for n in [1usize, 2, 3, 7, 20] {
            let mut k = 0usize;
            for i in 0..n {
                for j in i..n {
                    assert_eq!(SymMatrix::coords_for(n, k), (i, j), "n={n} k={k}");
                    k += 1;
                }
            }
            assert_eq!(k, n * (n + 1) / 2);
        }
    }

    #[test]
    fn empty_matrix() {
        let m = SymMatrix::zeros(0);
        assert!(m.is_empty());
        assert_eq!(m.n(), 0);
    }

    #[test]
    #[should_panic(expected = "out of")]
    fn out_of_range_panics() {
        SymMatrix::zeros(3).get(0, 3);
    }
}
