//! Tag-cloud assembly: the full Fig. 4 pipeline.
//!
//! store (Parser) → similarity matrix (Matrix Transformation) → tag graph
//! (Graph) → maximal cliques (Max Clique Algorithm) → Eq. 6 (Font Size
//! Calculation) → a renderable [`TagCloud`].

use crate::clique::{clique_membership, maximal_cliques, try_maximal_cliques, BkVariant};
use crate::fontsize::{font_size, font_size_frequency_only, FontScale, FontSizeInput};
use crate::similarity::{similarity_graph_from, similarity_matrix};
use crate::store::TagStore;
use sensormeta_resil::{self as resil, Interrupt};

/// Checkpoint site name guarding the whole cloud pipeline.
const CHECKPOINT_SITE: &str = "tagcloud_compute";

/// Parameters of a cloud computation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CloudParams {
    /// Cosine similarity threshold (paper default 0.5, strict >).
    pub threshold: f64,
    /// Maximum font size `f_max`.
    pub f_max: usize,
    /// Bron–Kerbosch variant.
    pub variant: BkVariant,
    /// If false, skip the clique term (frequency-only baseline).
    pub clique_aware: bool,
}

impl Default for CloudParams {
    fn default() -> Self {
        CloudParams {
            threshold: crate::similarity::DEFAULT_THRESHOLD,
            f_max: 10,
            variant: BkVariant::Pivot,
            clique_aware: true,
        }
    }
}

/// One rendered tag.
#[derive(Debug, Clone, PartialEq)]
pub struct TagEntry {
    /// The tag text.
    pub tag: String,
    /// Frequency `t_i`.
    pub count: usize,
    /// Computed font size `s_i`.
    pub font_size: usize,
    /// Indices (into [`TagCloud::cliques`]) of cliques containing this tag —
    /// the Fig. 5 coloring information.
    pub cliques: Vec<usize>,
}

/// A computed tag cloud.
#[derive(Debug, Clone, PartialEq)]
pub struct TagCloud {
    /// Entries sorted alphabetically (display order is the renderer's
    /// concern).
    pub entries: Vec<TagEntry>,
    /// Maximal cliques over tag indices (into `entries`).
    pub cliques: Vec<Vec<usize>>,
    /// Recursion-step count of the clique enumeration (paper's efficiency
    /// metric).
    pub clique_calls: usize,
}

impl TagCloud {
    /// Entries sorted by descending font size, then tag.
    pub fn by_prominence(&self) -> Vec<&TagEntry> {
        let mut v: Vec<&TagEntry> = self.entries.iter().collect();
        v.sort_by(|a, b| b.font_size.cmp(&a.font_size).then(a.tag.cmp(&b.tag)));
        v
    }
}

/// Runs the full pipeline over the store's current contents.
/// Uncancellable: runs to completion regardless of the ambient deadline
/// (see [`try_compute_cloud`] for the cooperative variant).
pub fn compute_cloud(store: &TagStore, params: &CloudParams) -> TagCloud {
    match cloud_pipeline(store, params, false) {
        Ok(cloud) => cloud,
        // The unchecked pipeline never hits a checkpoint.
        Err(_) => TagCloud {
            entries: Vec::new(),
            cliques: Vec::new(),
            clique_calls: 0,
        },
    }
}

/// [`compute_cloud`] with cooperative cancellation: checkpoints at the
/// pipeline entry and inside the clique enumeration, so an expired or
/// chaos-faulted request aborts instead of burning CPU.
pub fn try_compute_cloud(store: &TagStore, params: &CloudParams) -> Result<TagCloud, Interrupt> {
    cloud_pipeline(store, params, true)
}

fn cloud_pipeline(
    store: &TagStore,
    params: &CloudParams,
    checked: bool,
) -> Result<TagCloud, Interrupt> {
    if checked {
        resil::checkpoint(CHECKPOINT_SITE)?;
    }
    let (tags, sets) = store.incidence();
    let counts: Vec<usize> = tags.iter().map(|t| store.frequency(t)).collect();
    // Compute the similarity matrix once (parallel fill) and threshold it,
    // instead of recomputing every cosine inside the graph build.
    let graph = similarity_graph_from(&similarity_matrix(&sets), params.threshold);
    let (cliques, stats) = if checked {
        try_maximal_cliques(&graph, params.variant)?
    } else {
        maximal_cliques(&graph, params.variant)
    };
    // Only multi-tag cliques carry semantic information for the cloud;
    // singleton "cliques" are isolated tags.
    let cliques: Vec<Vec<usize>> = cliques.into_iter().filter(|c| c.len() > 1).collect();
    let membership = clique_membership(tags.len(), &cliques);
    let scale = FontScale::from_counts(&counts, cliques.len(), params.f_max);
    let entries = tags
        .into_iter()
        .enumerate()
        .map(|(i, tag)| {
            let max_order = membership[i]
                .iter()
                .map(|&c| cliques[c].len())
                .max()
                .unwrap_or(0);
            let size = if params.clique_aware {
                font_size(
                    FontSizeInput {
                        count: counts[i],
                        clique_memberships: membership[i].len(),
                        max_clique_order: max_order,
                    },
                    scale,
                )
            } else {
                font_size_frequency_only(counts[i], scale)
            };
            TagEntry {
                tag,
                count: counts[i],
                font_size: size,
                cliques: membership[i].clone(),
            }
        })
        .collect();
    Ok(TagCloud {
        entries,
        cliques,
        clique_calls: stats.calls,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds the paper's Fig. 5 shape: "apple" co-occurs strongly with two
    /// separate groups (fruit tags and computer tags), so it lands in two
    /// cliques.
    fn apple_store() -> TagStore {
        let mut s = TagStore::new();
        // Fruit pages.
        for p in ["f1", "f2", "f3"] {
            s.add(p, "apple");
            s.add(p, "banana");
            s.add(p, "fruit");
        }
        // Computer pages.
        for p in ["c1", "c2", "c3"] {
            s.add(p, "apple");
            s.add(p, "mac");
            s.add(p, "laptop");
        }
        // Unrelated singleton tag.
        s.add("x1", "zebra");
        s
    }

    #[test]
    fn apple_belongs_to_two_cliques() {
        let cloud = compute_cloud(&apple_store(), &CloudParams::default());
        let apple = cloud.entries.iter().find(|e| e.tag == "apple").unwrap();
        assert_eq!(apple.cliques.len(), 2, "Fig. 5: apple sits in two cliques");
        let zebra = cloud.entries.iter().find(|e| e.tag == "zebra").unwrap();
        assert!(zebra.cliques.is_empty());
    }

    #[test]
    fn apple_is_most_prominent() {
        let cloud = compute_cloud(&apple_store(), &CloudParams::default());
        let top = cloud.by_prominence();
        assert_eq!(top[0].tag, "apple", "highest count + two cliques");
        // Everything has size ≥ 1.
        assert!(cloud.entries.iter().all(|e| e.font_size >= 1));
    }

    #[test]
    fn clique_aware_beats_frequency_only_for_clustered_tags() {
        let store = apple_store();
        let aware = compute_cloud(&store, &CloudParams::default());
        let flat = compute_cloud(
            &store,
            &CloudParams {
                clique_aware: false,
                ..CloudParams::default()
            },
        );
        let get = |cloud: &TagCloud, tag: &str| {
            cloud
                .entries
                .iter()
                .find(|e| e.tag == tag)
                .map(|e| e.font_size)
                .unwrap()
        };
        assert!(get(&aware, "banana") >= get(&flat, "banana"));
        assert!(get(&aware, "apple") > get(&flat, "apple"));
    }

    #[test]
    fn empty_store_gives_empty_cloud() {
        let cloud = compute_cloud(&TagStore::new(), &CloudParams::default());
        assert!(cloud.entries.is_empty());
        assert!(cloud.cliques.is_empty());
    }

    #[test]
    fn variants_agree_on_cloud_content() {
        let store = apple_store();
        let base = compute_cloud(&store, &CloudParams::default());
        for variant in [BkVariant::Naive, BkVariant::Degeneracy] {
            let other = compute_cloud(
                &store,
                &CloudParams {
                    variant,
                    ..CloudParams::default()
                },
            );
            assert_eq!(base.entries, other.entries, "{variant:?}");
            assert_eq!(base.cliques, other.cliques, "{variant:?}");
        }
    }
}
