//! # sensormeta-tagging
//!
//! The paper's Dynamic Tagging System (Section IV, Fig. 4): a tag store fed
//! from the SMR, cosine-similarity matrix transformation with the 0.5
//! threshold, tag graphs, Bron–Kerbosch maximal-clique enumeration (naive /
//! pivoting / degeneracy variants), the Eq. 6 font-size formula with its
//! clique-promotion term, and a version-keyed cloud cache.
//!
//! ```
//! use sensormeta_tagging::{TagStore, CloudParams, compute_cloud};
//!
//! let mut store = TagStore::new();
//! store.ingest([("page1", "snow"), ("page2", "snow"), ("page2", "avalanche")]);
//! let cloud = compute_cloud(&store, &CloudParams::default());
//! assert_eq!(cloud.entries.len(), 2);
//! ```

#![warn(missing_docs)]

pub mod cache;
pub mod clique;
pub mod cloud;
pub mod fontsize;
pub mod similarity;
pub mod store;
pub mod suggest;
pub mod symmatrix;

pub use cache::{CacheStats, CloudCache};
pub use clique::{
    brute_force_maximal_cliques, clique_membership, maximal_cliques, BkStats, BkVariant,
};
pub use cloud::{compute_cloud, CloudParams, TagCloud, TagEntry};
pub use fontsize::{font_size, font_size_frequency_only, FontScale, FontSizeInput};
pub use similarity::{
    check_similarity_graph, cosine, similarity_graph, similarity_graph_from, similarity_matrix,
    similarity_matrix_in, DEFAULT_THRESHOLD,
};
pub use store::TagStore;
pub use suggest::{suggest_tags, TagSuggestion};
pub use symmatrix::SymMatrix;
