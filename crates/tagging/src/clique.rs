//! The Max Clique Algorithm module: Bron–Kerbosch maximal-clique
//! enumeration.
//!
//! The paper uses "the Bron-Kerbosch algorithm for finding maximal cliques in
//! an undirected graph \[11\] which is frequently reported as being more
//! efficient than alternatives" \[12\], in an implementation "extended to
//! optimize candidate tag selection and minimize recursion steps". We provide
//! three variants — naive (Algorithm 457 as published), with pivoting
//! (Tomita-style candidate optimization), and with degeneracy ordering at the
//! outer level — so the optimization's effect is measurable (ablation E11).

use sensormeta_graph::UndirectedGraph;
use sensormeta_resil::{self as resil, Interrupt};
use std::collections::BTreeSet;

/// Checkpoint site name for cooperative cancellation of the enumeration.
const CHECKPOINT_SITE: &str = "clique_enum";

/// Recursive calls between deadline checkpoints on the checked path.
const CALLS_PER_CHECK: usize = 128;

/// Which Bron–Kerbosch variant to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BkVariant {
    /// Algorithm 457 without pivoting.
    Naive,
    /// Pivot on the vertex of P ∪ X with most neighbors in P — the
    /// "optimized candidate tag selection" of the paper's implementation.
    Pivot,
    /// Degeneracy ordering outer loop + pivoting inner recursion.
    Degeneracy,
}

/// Statistics from one enumeration run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BkStats {
    /// Number of recursive calls ("recursion steps" the paper minimizes).
    pub calls: usize,
    /// Number of maximal cliques reported.
    pub cliques: usize,
}

/// Enumerates all maximal cliques; returns them sorted (each clique sorted,
/// cliques in lexicographic order) together with run statistics.
/// Uncancellable: runs to completion regardless of the ambient deadline
/// (see [`try_maximal_cliques`] for the cooperative variant).
pub fn maximal_cliques(g: &UndirectedGraph, variant: BkVariant) -> (Vec<Vec<usize>>, BkStats) {
    // The unchecked pass never hits a checkpoint, so Err is unreachable.
    enumerate(g, variant, false).unwrap_or_default()
}

/// [`maximal_cliques`] with cooperative cancellation: observes the ambient
/// resil deadline (and chaos plan) every `CALLS_PER_CHECK` (128) recursion
/// steps, so an expired request stops an exponential enumeration early.
pub fn try_maximal_cliques(
    g: &UndirectedGraph,
    variant: BkVariant,
) -> Result<(Vec<Vec<usize>>, BkStats), Interrupt> {
    enumerate(g, variant, true)
}

fn enumerate(
    g: &UndirectedGraph,
    variant: BkVariant,
    checked: bool,
) -> Result<(Vec<Vec<usize>>, BkStats), Interrupt> {
    let _timing = sensormeta_obs::span("tagging_clique_enumeration");
    let mut out = Vec::new();
    let mut stats = BkStats::default();
    let all: BTreeSet<usize> = (0..g.node_count()).collect();
    match variant {
        BkVariant::Naive => {
            bk(
                g,
                &mut Vec::new(),
                all,
                BTreeSet::new(),
                false,
                checked,
                &mut out,
                &mut stats,
            )?;
        }
        BkVariant::Pivot => {
            bk(
                g,
                &mut Vec::new(),
                all,
                BTreeSet::new(),
                true,
                checked,
                &mut out,
                &mut stats,
            )?;
        }
        BkVariant::Degeneracy => {
            let order = g.degeneracy_ordering();
            let mut pos = vec![0usize; g.node_count()];
            for (i, &v) in order.iter().enumerate() {
                pos[v] = i;
            }
            for &v in &order {
                let p: BTreeSet<usize> = g
                    .neighbors(v)
                    .iter()
                    .copied()
                    .filter(|&w| pos[w] > pos[v])
                    .collect();
                let x: BTreeSet<usize> = g
                    .neighbors(v)
                    .iter()
                    .copied()
                    .filter(|&w| pos[w] < pos[v])
                    .collect();
                let mut r = vec![v];
                bk(g, &mut r, p, x, true, checked, &mut out, &mut stats)?;
            }
        }
    }
    for c in &mut out {
        c.sort_unstable();
    }
    out.sort();
    stats.cliques = out.len();
    Ok((out, stats))
}

#[allow(clippy::too_many_arguments)]
fn bk(
    g: &UndirectedGraph,
    r: &mut Vec<usize>,
    mut p: BTreeSet<usize>,
    mut x: BTreeSet<usize>,
    pivot: bool,
    checked: bool,
    out: &mut Vec<Vec<usize>>,
    stats: &mut BkStats,
) -> Result<(), Interrupt> {
    stats.calls += 1;
    if checked && stats.calls.is_multiple_of(CALLS_PER_CHECK) {
        resil::checkpoint(CHECKPOINT_SITE)?;
    }
    if p.is_empty() && x.is_empty() {
        if !r.is_empty() {
            out.push(r.clone());
        }
        return Ok(());
    }
    // Choose pivot u maximizing |P ∩ N(u)|; recurse only on P \ N(u). The
    // early return above guarantees P ∪ X is non-empty here, but if the
    // pivot search ever came up empty we'd just fall back to plain BK.
    let pivot_u = if pivot {
        p.iter()
            .chain(x.iter())
            .copied()
            .max_by_key(|&u| g.neighbors(u).iter().filter(|w| p.contains(w)).count())
    } else {
        None
    };
    let candidates: Vec<usize> = match pivot_u {
        Some(u) => p
            .iter()
            .copied()
            .filter(|v| !g.neighbors(u).contains(v))
            .collect(),
        None => p.iter().copied().collect(),
    };
    for v in candidates {
        let nv = g.neighbors(v);
        let p2: BTreeSet<usize> = p.iter().copied().filter(|w| nv.contains(w)).collect();
        let x2: BTreeSet<usize> = x.iter().copied().filter(|w| nv.contains(w)).collect();
        r.push(v);
        let step = bk(g, r, p2, x2, pivot, checked, out, stats);
        r.pop();
        step?;
        p.remove(&v);
        x.insert(v);
    }
    Ok(())
}

/// Brute-force maximal-clique enumeration for cross-checking (exponential —
/// test-size graphs only).
pub fn brute_force_maximal_cliques(g: &UndirectedGraph) -> Vec<Vec<usize>> {
    let n = g.node_count();
    assert!(n <= 20, "brute force is for test graphs");
    let mut cliques: Vec<BTreeSet<usize>> = Vec::new();
    for mask in 1u32..(1 << n) {
        let members: Vec<usize> = (0..n).filter(|&i| mask & (1 << i) != 0).collect();
        let is_clique = members
            .iter()
            .enumerate()
            .all(|(ix, &u)| members[ix + 1..].iter().all(|&v| g.has_edge(u, v)));
        if is_clique {
            cliques.push(members.into_iter().collect());
        }
    }
    // Keep only maximal ones.
    let maximal: Vec<Vec<usize>> = cliques
        .iter()
        .filter(|c| {
            !cliques
                .iter()
                .any(|other| other.len() > c.len() && c.is_subset(other))
        })
        .map(|c| c.iter().copied().collect())
        .collect();
    let mut out = maximal;
    out.sort();
    out.dedup();
    out
}

/// Per-node clique membership: for each node, the indices (into `cliques`)
/// of the cliques containing it.
pub fn clique_membership(n: usize, cliques: &[Vec<usize>]) -> Vec<Vec<usize>> {
    let mut member = vec![Vec::new(); n];
    for (ci, clique) in cliques.iter().enumerate() {
        for &v in clique {
            member[v].push(ci);
        }
    }
    member
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_variants() -> [BkVariant; 3] {
        [BkVariant::Naive, BkVariant::Pivot, BkVariant::Degeneracy]
    }

    #[test]
    fn triangle_plus_pendant() {
        let g = UndirectedGraph::from_edges(4, &[(0, 1), (1, 2), (0, 2), (2, 3)]);
        for v in all_variants() {
            let (cliques, _) = maximal_cliques(&g, v);
            assert_eq!(cliques, vec![vec![0, 1, 2], vec![2, 3]], "{v:?}");
        }
    }

    #[test]
    fn matches_brute_force_on_random_graphs() {
        // Deterministic pseudo-random graphs over 10 nodes.
        let mut state = 99u64;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as usize
        };
        for trial in 0..20 {
            let n = 8 + trial % 3;
            let mut edges = Vec::new();
            for u in 0..n {
                for v in u + 1..n {
                    if next() % 100 < 40 {
                        edges.push((u, v));
                    }
                }
            }
            let g = UndirectedGraph::from_edges(n, &edges);
            let want = brute_force_maximal_cliques(&g);
            for variant in all_variants() {
                let (got, _) = maximal_cliques(&g, variant);
                assert_eq!(got, want, "variant {variant:?} trial {trial}");
            }
        }
    }

    #[test]
    fn pivoting_reduces_recursion_steps() {
        // A moderately dense graph where pivoting pays off.
        let mut edges = Vec::new();
        let n = 14;
        for u in 0..n {
            for v in u + 1..n {
                if (u + v) % 3 != 0 {
                    edges.push((u, v));
                }
            }
        }
        let g = UndirectedGraph::from_edges(n, &edges);
        let (_, naive) = maximal_cliques(&g, BkVariant::Naive);
        let (_, pivot) = maximal_cliques(&g, BkVariant::Pivot);
        assert!(
            pivot.calls < naive.calls,
            "pivot {} vs naive {}",
            pivot.calls,
            naive.calls
        );
    }

    #[test]
    fn empty_and_edgeless_graphs() {
        let g = UndirectedGraph::new(0);
        for v in all_variants() {
            let (cliques, _) = maximal_cliques(&g, v);
            assert!(cliques.is_empty(), "{v:?}");
        }
        // Three isolated nodes: each is its own maximal clique.
        let g = UndirectedGraph::new(3);
        for v in all_variants() {
            let (cliques, _) = maximal_cliques(&g, v);
            assert_eq!(cliques, vec![vec![0], vec![1], vec![2]], "{v:?}");
        }
    }

    #[test]
    fn complete_graph_single_clique() {
        let mut edges = Vec::new();
        for u in 0..6 {
            for v in u + 1..6 {
                edges.push((u, v));
            }
        }
        let g = UndirectedGraph::from_edges(6, &edges);
        for v in all_variants() {
            let (cliques, _) = maximal_cliques(&g, v);
            assert_eq!(cliques, vec![vec![0, 1, 2, 3, 4, 5]], "{v:?}");
        }
    }

    #[test]
    fn membership_mapping() {
        // The paper's Fig. 5: a tag ("Apple") belonging to two cliques.
        let g = UndirectedGraph::from_edges(5, &[(0, 1), (1, 2), (0, 2), (2, 3), (3, 4), (2, 4)]);
        let (cliques, _) = maximal_cliques(&g, BkVariant::Pivot);
        let membership = clique_membership(5, &cliques);
        // Node 2 sits in both triangles.
        assert_eq!(membership[2].len(), 2);
        assert_eq!(membership[0].len(), 1);
    }
}
