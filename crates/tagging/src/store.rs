//! Tag storage and the Parser-module interface.
//!
//! In Fig. 4 the Parser module "connects to the SMR, exchanging data,
//! fetching and storing tags". Here the store ingests (page, tag) pairs from
//! any source (the SMR's tag table, user input, annotation values — the
//! paper notes "as tags can also be considered the values of metadata
//! properties") and maintains per-tag frequencies and per-page incidence.

use std::collections::{BTreeMap, BTreeSet};

/// In-memory tag store.
#[derive(Debug, Default, Clone)]
pub struct TagStore {
    /// tag → set of pages carrying it.
    tag_pages: BTreeMap<String, BTreeSet<String>>,
    /// page → set of tags.
    page_tags: BTreeMap<String, BTreeSet<String>>,
    /// Monotonic version, bumped on every mutation (drives cache
    /// invalidation).
    version: u64,
}

impl TagStore {
    /// Creates an empty store.
    pub fn new() -> TagStore {
        TagStore::default()
    }

    /// Adds one (page, tag) assignment. Tags are normalized to lowercase.
    /// Returns true if it was new.
    pub fn add(&mut self, page: &str, tag: &str) -> bool {
        let tag = tag.trim().to_lowercase();
        if tag.is_empty() || page.is_empty() {
            return false;
        }
        let fresh = self
            .tag_pages
            .entry(tag.clone())
            .or_default()
            .insert(page.to_owned());
        if fresh {
            self.page_tags
                .entry(page.to_owned())
                .or_default()
                .insert(tag);
            self.version += 1;
            sensormeta_cache::clock().bump(sensormeta_cache::Domain::TagIncidence);
        }
        fresh
    }

    /// Bulk ingestion from (page, tag) pairs — the Parser module's SMR fetch.
    pub fn ingest<'a>(&mut self, pairs: impl IntoIterator<Item = (&'a str, &'a str)>) -> usize {
        pairs.into_iter().filter(|(p, t)| self.add(p, t)).count()
    }

    /// Removes one assignment. Returns true if it existed.
    pub fn remove(&mut self, page: &str, tag: &str) -> bool {
        let tag = tag.trim().to_lowercase();
        let removed = self.tag_pages.get_mut(&tag).is_some_and(|s| s.remove(page));
        if removed {
            if self.tag_pages[&tag].is_empty() {
                self.tag_pages.remove(&tag);
            }
            if let Some(s) = self.page_tags.get_mut(page) {
                s.remove(&tag);
                if s.is_empty() {
                    self.page_tags.remove(page);
                }
            }
            self.version += 1;
            sensormeta_cache::clock().bump(sensormeta_cache::Domain::TagIncidence);
        }
        removed
    }

    /// Distinct tags, sorted.
    pub fn tags(&self) -> Vec<&str> {
        self.tag_pages.keys().map(String::as_str).collect()
    }

    /// Frequency of a tag: "the number of entries that are assigned to each
    /// page" — i.e., how many pages carry it.
    pub fn frequency(&self, tag: &str) -> usize {
        self.tag_pages.get(tag).map(BTreeSet::len).unwrap_or(0)
    }

    /// Pages carrying a tag.
    pub fn pages_of(&self, tag: &str) -> Vec<&str> {
        self.tag_pages
            .get(tag)
            .map(|s| s.iter().map(String::as_str).collect())
            .unwrap_or_default()
    }

    /// Tags of a page.
    pub fn tags_of(&self, page: &str) -> Vec<&str> {
        self.page_tags
            .get(page)
            .map(|s| s.iter().map(String::as_str).collect())
            .unwrap_or_default()
    }

    /// Number of distinct tags.
    pub fn tag_count(&self) -> usize {
        self.tag_pages.len()
    }

    /// Mutation counter for cache invalidation.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// The tag-page incidence as (tags, sorted page-id lists over a dense
    /// page index) — input to the Matrix Transformation module. Page ids in
    /// each list are strictly ascending (the `BTreeSet` of page names maps
    /// through a monotone index), which the sorted-merge cosine kernel in
    /// [`crate::similarity::cosine`] relies on.
    pub fn incidence(&self) -> (Vec<String>, Vec<Vec<usize>>) {
        let page_index: BTreeMap<&str, usize> = self
            .page_tags
            .keys()
            .enumerate()
            .map(|(i, p)| (p.as_str(), i))
            .collect();
        let tags: Vec<String> = self.tag_pages.keys().cloned().collect();
        let sets = tags
            .iter()
            .map(|t| {
                self.tag_pages[t]
                    .iter()
                    .map(|p| page_index[p.as_str()])
                    .collect()
            })
            .collect();
        (tags, sets)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_frequency() {
        let mut s = TagStore::new();
        assert!(s.add("PageA", "Snow"));
        assert!(!s.add("PageA", "snow"), "case-insensitive dedupe");
        assert!(s.add("PageB", "snow"));
        assert_eq!(s.frequency("snow"), 2);
        assert_eq!(s.tags_of("PageA"), vec!["snow"]);
    }

    #[test]
    fn remove_cleans_up() {
        let mut s = TagStore::new();
        s.add("P", "x");
        assert!(s.remove("P", "x"));
        assert!(!s.remove("P", "x"));
        assert_eq!(s.tag_count(), 0);
        assert!(s.tags_of("P").is_empty());
    }

    #[test]
    fn version_bumps_on_mutation_only() {
        let mut s = TagStore::new();
        let v0 = s.version();
        s.add("P", "x");
        let v1 = s.version();
        assert!(v1 > v0);
        s.add("P", "x"); // no-op
        assert_eq!(s.version(), v1);
        s.remove("P", "x");
        assert!(s.version() > v1);
    }

    #[test]
    fn blank_inputs_rejected() {
        let mut s = TagStore::new();
        assert!(!s.add("P", "  "));
        assert!(!s.add("", "tag"));
        assert_eq!(s.tag_count(), 0);
    }

    #[test]
    fn incidence_is_consistent() {
        let mut s = TagStore::new();
        s.ingest([("A", "snow"), ("B", "snow"), ("B", "wind"), ("C", "wind")]);
        let (tags, sets) = s.incidence();
        assert_eq!(tags, vec!["snow", "wind"]);
        assert_eq!(sets[0].len(), 2);
        assert_eq!(sets[1].len(), 2);
        // Page lists are sorted ascending, as the cosine kernel requires.
        assert!(sets.iter().all(|s| s.windows(2).all(|w| w[0] < w[1])));
        // snow ∩ wind = {B}: exactly one shared page.
        let shared = sets[0].iter().filter(|p| sets[1].contains(p)).count();
        assert_eq!(shared, 1);
    }
}
