//! Tag suggestions for a page, from tag co-occurrence.
//!
//! The demo lets "users … create tags in each webpage"; a natural assist
//! (and the modular extension the paper's architecture invites) is
//! suggesting tags: given the page's current tags, propose tags that
//! co-occur with them elsewhere, scored by cosine similarity times global
//! frequency.

use crate::similarity::cosine;
use crate::store::TagStore;

/// One suggested tag.
#[derive(Debug, Clone, PartialEq)]
pub struct TagSuggestion {
    /// The proposed tag.
    pub tag: String,
    /// Combined affinity score (higher = better).
    pub score: f64,
    /// The page's existing tag it is most similar to.
    pub because_of: String,
}

/// Suggests up to `k` tags for `page`, excluding tags it already carries.
/// Pages with no tags yet receive the globally most-frequent tags.
pub fn suggest_tags(store: &TagStore, page: &str, k: usize) -> Vec<TagSuggestion> {
    let current: Vec<String> = store.tags_of(page).into_iter().map(str::to_owned).collect();
    let (tags, sets) = store.incidence();
    let index_of = |name: &str| tags.iter().position(|t| t == name);

    let mut scored: Vec<TagSuggestion> = Vec::new();
    if current.is_empty() {
        // Cold start: most-frequent tags.
        let mut by_freq: Vec<&String> = tags.iter().collect();
        by_freq.sort_by_key(|t| std::cmp::Reverse(store.frequency(t)));
        return by_freq
            .into_iter()
            .take(k)
            .map(|t| TagSuggestion {
                tag: t.clone(),
                score: store.frequency(t) as f64,
                because_of: String::new(),
            })
            .collect();
    }
    let current_ix: Vec<usize> = current.iter().filter_map(|t| index_of(t)).collect();
    for (ci, candidate) in tags.iter().enumerate() {
        if current.iter().any(|t| t == candidate) {
            continue;
        }
        let mut best_sim = 0.0f64;
        let mut because = "";
        for &own in &current_ix {
            let sim = cosine(&sets[own], &sets[ci]);
            if sim > best_sim {
                best_sim = sim;
                because = &tags[own];
            }
        }
        if best_sim > 0.0 {
            scored.push(TagSuggestion {
                tag: candidate.clone(),
                score: best_sim * (1.0 + (store.frequency(candidate) as f64).ln()),
                because_of: because.to_owned(),
            });
        }
    }
    scored.sort_by(|a, b| {
        b.score
            .partial_cmp(&a.score)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.tag.cmp(&b.tag))
    });
    scored.truncate(k);
    scored
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store() -> TagStore {
        let mut s = TagStore::new();
        for p in ["a", "b", "c", "d"] {
            s.add(p, "snow");
            s.add(p, "avalanche");
        }
        for p in ["a", "b"] {
            s.add(p, "winter");
        }
        for p in ["x", "y"] {
            s.add(p, "hydrology");
            s.add(p, "discharge");
        }
        // The page we suggest for: has "snow" only.
        s.add("target", "snow");
        s
    }

    #[test]
    fn suggests_cooccurring_tags_first() {
        let s = store();
        let suggestions = suggest_tags(&s, "target", 3);
        assert_eq!(suggestions[0].tag, "avalanche");
        assert_eq!(suggestions[0].because_of, "snow");
        // Unrelated hydrology tags score zero similarity and are absent.
        assert!(suggestions.iter().all(|sg| sg.tag != "hydrology"));
    }

    #[test]
    fn never_suggests_existing_tags() {
        let s = store();
        let suggestions = suggest_tags(&s, "target", 10);
        assert!(suggestions.iter().all(|sg| sg.tag != "snow"));
    }

    #[test]
    fn cold_start_falls_back_to_frequency() {
        let s = store();
        let suggestions = suggest_tags(&s, "brand-new-page", 2);
        assert_eq!(suggestions.len(), 2);
        assert_eq!(suggestions[0].tag, "snow", "most frequent first");
    }

    #[test]
    fn respects_k_and_empty_store() {
        let s = store();
        assert_eq!(suggest_tags(&s, "target", 1).len(), 1);
        let empty = TagStore::new();
        assert!(suggest_tags(&empty, "p", 5).is_empty());
    }
}
