//! The Matrix Transformation module: cosine similarity between tags.
//!
//! Each tag is a binary vector over pages; two tags are "considered similar
//! for a threshold above 50%" (the paper's default). The resulting 0/1
//! matrix is handed to the Graph module as an undirected tag graph.

use sensormeta_graph::UndirectedGraph;
use std::collections::BTreeSet;

/// The paper's similarity threshold.
pub const DEFAULT_THRESHOLD: f64 = 0.5;

/// Cosine similarity of two page sets (binary occurrence vectors):
/// `|A ∩ B| / sqrt(|A|·|B|)`.
pub fn cosine(a: &BTreeSet<usize>, b: &BTreeSet<usize>) -> f64 {
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    let inter = a.intersection(b).count() as f64;
    // sqrt(|A|)·sqrt(|B|) can round just below |A∩B| for identical sets,
    // nudging the quotient above 1; clamp to the mathematical range.
    (inter / ((a.len() as f64).sqrt() * (b.len() as f64).sqrt())).min(1.0)
}

/// Computes the full tag-similarity matrix (dense, symmetric).
pub fn similarity_matrix(sets: &[BTreeSet<usize>]) -> Vec<Vec<f64>> {
    let n = sets.len();
    let mut m = vec![vec![0.0; n]; n];
    #[allow(clippy::needless_range_loop)]
    for i in 0..n {
        m[i][i] = 1.0;
        for j in i + 1..n {
            let s = cosine(&sets[i], &sets[j]);
            m[i][j] = s;
            m[j][i] = s;
        }
    }
    m
}

/// Thresholds the similarity matrix into the undirected tag graph
/// ("1 denotes a link from one tag to another and 0 denotes no linking").
pub fn similarity_graph(sets: &[BTreeSet<usize>], threshold: f64) -> UndirectedGraph {
    let n = sets.len();
    let mut g = UndirectedGraph::new(n);
    for i in 0..n {
        for j in i + 1..n {
            if cosine(&sets[i], &sets[j]) > threshold {
                g.add_edge(i, j);
            }
        }
    }
    g
}

/// Deep semantic check (fsck) of a thresholded tag graph against the page
/// sets it was built from: the graph must be structurally sound (symmetric,
/// loop-free, in range), every cosine must lie in `[0, 1]`, and an edge must
/// exist exactly when the similarity exceeds the threshold. Returns every
/// violated invariant.
pub fn check_similarity_graph(
    sets: &[BTreeSet<usize>],
    threshold: f64,
    g: &UndirectedGraph,
) -> Result<(), Vec<String>> {
    let mut problems = g.check_invariants().err().unwrap_or_default();
    if g.node_count() != sets.len() {
        problems.push(format!(
            "graph has {} nodes for {} tag sets",
            g.node_count(),
            sets.len()
        ));
        return Err(problems);
    }
    for i in 0..sets.len() {
        for j in i + 1..sets.len() {
            let s = cosine(&sets[i], &sets[j]);
            if !(0.0..=1.0).contains(&s) || s.is_nan() {
                problems.push(format!("cosine({i}, {j}) = {s} outside [0, 1]"));
            }
            let should_link = s > threshold;
            if should_link != g.has_edge(i, j) {
                problems.push(format!(
                    "edge ({i}, {j}) disagrees with cosine {s:.4} at threshold {threshold}"
                ));
            }
        }
    }
    if problems.is_empty() {
        Ok(())
    } else {
        Err(problems)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(v: &[usize]) -> BTreeSet<usize> {
        v.iter().copied().collect()
    }

    #[test]
    fn cosine_identical_and_disjoint() {
        let a = set(&[1, 2, 3]);
        assert!((cosine(&a, &a) - 1.0).abs() < 1e-12);
        assert_eq!(cosine(&a, &set(&[4, 5])), 0.0);
        assert_eq!(cosine(&a, &set(&[])), 0.0);
    }

    #[test]
    fn cosine_partial_overlap() {
        // |A∩B|=1, |A|=2, |B|=2 → 1/2.
        let s = cosine(&set(&[1, 2]), &set(&[2, 3]));
        assert!((s - 0.5).abs() < 1e-12);
    }

    #[test]
    fn matrix_is_symmetric_with_unit_diagonal() {
        let sets = vec![set(&[0, 1]), set(&[1, 2]), set(&[5])];
        let m = similarity_matrix(&sets);
        for (i, row) in m.iter().enumerate() {
            assert!((row[i] - 1.0).abs() < 1e-12);
            for (j, v) in row.iter().enumerate() {
                assert!((v - m[j][i]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn graph_uses_strict_threshold() {
        // Similarity exactly 0.5 must NOT create an edge ("above 50%").
        let sets = vec![set(&[1, 2]), set(&[2, 3]), set(&[1, 2, 3])];
        let g = similarity_graph(&sets, DEFAULT_THRESHOLD);
        assert!(!g.has_edge(0, 1), "cos=0.5 exactly, excluded");
        // cos({1,2},{1,2,3}) = 2/sqrt(6) ≈ 0.816 > 0.5.
        assert!(g.has_edge(0, 2));
        assert!(g.has_edge(1, 2));
    }

    #[test]
    fn empty_input() {
        let g = similarity_graph(&[], DEFAULT_THRESHOLD);
        assert_eq!(g.node_count(), 0);
    }

    #[test]
    fn fsck_detects_corruption() {
        let sets = vec![set(&[1, 2]), set(&[2, 3]), set(&[1, 2, 3]), set(&[9])];
        let g = similarity_graph(&sets, DEFAULT_THRESHOLD);
        assert_eq!(check_similarity_graph(&sets, DEFAULT_THRESHOLD, &g), Ok(()));

        // An extra edge the similarities do not justify.
        let mut extra = g.clone();
        extra.add_edge(0, 3);
        let problems = check_similarity_graph(&sets, DEFAULT_THRESHOLD, &extra).unwrap_err();
        assert!(
            problems.iter().any(|m| m.contains("edge (0, 3)")),
            "{problems:?}"
        );

        // A missing edge (rebuild at a higher threshold, check at the lower).
        let sparse = similarity_graph(&sets, 0.99);
        let problems = check_similarity_graph(&sets, DEFAULT_THRESHOLD, &sparse).unwrap_err();
        assert!(
            problems.iter().any(|m| m.contains("disagrees")),
            "{problems:?}"
        );

        // Node-count mismatch is reported rather than panicking.
        let problems = check_similarity_graph(&sets[..2], DEFAULT_THRESHOLD, &g).unwrap_err();
        assert!(
            problems.iter().any(|m| m.contains("nodes for")),
            "{problems:?}"
        );
    }
}
