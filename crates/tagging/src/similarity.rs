//! The Matrix Transformation module: cosine similarity between tags.
//!
//! Each tag is a binary vector over pages; two tags are "considered similar
//! for a threshold above 50%" (the paper's default). The resulting 0/1
//! matrix is handed to the Graph module as an undirected tag graph.
//!
//! Page sets are **sorted slices** (`&[usize]`), so the cosine kernel is a
//! cache-friendly sorted-merge intersection, and the `O(n²)` pair fill is
//! partitioned into fixed-size chunks of the packed [`SymMatrix`] triangle
//! and computed in parallel with bit-deterministic results.

use crate::symmatrix::SymMatrix;
use sensormeta_graph::UndirectedGraph;
use sensormeta_par::Pool;

/// The paper's similarity threshold.
pub const DEFAULT_THRESHOLD: f64 = 0.5;

/// Tag pairs per parallel fill chunk (fixed: determinism contract of
/// `sensormeta-par` — boundaries never depend on the thread count).
const PAIR_CHUNK: usize = 4096;

/// Cosine similarity of two page sets (binary occurrence vectors):
/// `|A ∩ B| / sqrt(|A|·|B|)`. Both slices must be sorted ascending (as
/// produced by [`crate::TagStore::incidence`]); the intersection is a
/// two-pointer sorted merge.
pub fn cosine(a: &[usize], b: &[usize]) -> f64 {
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    debug_assert!(a.windows(2).all(|w| w[0] < w[1]), "unsorted page set");
    debug_assert!(b.windows(2).all(|w| w[0] < w[1]), "unsorted page set");
    let mut inter = 0usize;
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                inter += 1;
                i += 1;
                j += 1;
            }
        }
    }
    // sqrt(|A|)·sqrt(|B|) can round just below |A∩B| for identical sets,
    // nudging the quotient above 1; clamp to the mathematical range.
    (inter as f64 / ((a.len() as f64).sqrt() * (b.len() as f64).sqrt())).min(1.0)
}

/// Computes the full tag-similarity matrix (packed symmetric) on the
/// global pool.
pub fn similarity_matrix(sets: &[Vec<usize>]) -> SymMatrix {
    similarity_matrix_in(Pool::global(), sets)
}

/// [`similarity_matrix`] on an explicit pool. The packed upper triangle is
/// a flat pair array, so fixed-size chunks of it are disjoint `&mut`
/// ranges filled in parallel; each entry is computed exactly once, making
/// the result identical at every thread count.
pub fn similarity_matrix_in(pool: &Pool, sets: &[Vec<usize>]) -> SymMatrix {
    let n = sets.len();
    let mut m = SymMatrix::zeros(n);
    pool.par_chunks_mut(m.data_mut(), PAIR_CHUNK, |_, base, chunk| {
        for (off, slot) in chunk.iter_mut().enumerate() {
            let (i, j) = SymMatrix::coords_for(n, base + off);
            *slot = if i == j {
                1.0
            } else {
                cosine(&sets[i], &sets[j])
            };
        }
    });
    m
}

/// Thresholds the similarity matrix into the undirected tag graph
/// ("1 denotes a link from one tag to another and 0 denotes no linking").
/// Computes the matrix (in parallel) and delegates to
/// [`similarity_graph_from`] — callers that already hold the matrix should
/// use that directly instead of recomputing every cosine.
pub fn similarity_graph(sets: &[Vec<usize>], threshold: f64) -> UndirectedGraph {
    similarity_graph_from(&similarity_matrix(sets), threshold)
}

/// Thresholds an already-computed similarity matrix into the tag graph.
pub fn similarity_graph_from(m: &SymMatrix, threshold: f64) -> UndirectedGraph {
    let n = m.n();
    let mut g = UndirectedGraph::new(n);
    for i in 0..n {
        for j in i + 1..n {
            if m.get(i, j) > threshold {
                g.add_edge(i, j);
            }
        }
    }
    g
}

/// Deep semantic check (fsck) of a thresholded tag graph against the page
/// sets it was built from: the graph must be structurally sound (symmetric,
/// loop-free, in range), every cosine must lie in `[0, 1]`, and an edge must
/// exist exactly when the similarity exceeds the threshold. Recomputes each
/// cosine directly from the page sets — deliberately independent of the
/// [`SymMatrix`] fill — using the same kernel the shared path uses.
/// Returns every violated invariant.
pub fn check_similarity_graph(
    sets: &[Vec<usize>],
    threshold: f64,
    g: &UndirectedGraph,
) -> Result<(), Vec<String>> {
    let mut problems = g.check_invariants().err().unwrap_or_default();
    if g.node_count() != sets.len() {
        problems.push(format!(
            "graph has {} nodes for {} tag sets",
            g.node_count(),
            sets.len()
        ));
        return Err(problems);
    }
    for i in 0..sets.len() {
        for j in i + 1..sets.len() {
            let s = cosine(&sets[i], &sets[j]);
            if !(0.0..=1.0).contains(&s) || s.is_nan() {
                problems.push(format!("cosine({i}, {j}) = {s} outside [0, 1]"));
            }
            let should_link = s > threshold;
            if should_link != g.has_edge(i, j) {
                problems.push(format!(
                    "edge ({i}, {j}) disagrees with cosine {s:.4} at threshold {threshold}"
                ));
            }
        }
    }
    if problems.is_empty() {
        Ok(())
    } else {
        Err(problems)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(v: &[usize]) -> Vec<usize> {
        let mut s = v.to_vec();
        s.sort_unstable();
        s.dedup();
        s
    }

    #[test]
    fn cosine_identical_and_disjoint() {
        let a = set(&[1, 2, 3]);
        assert!((cosine(&a, &a) - 1.0).abs() < 1e-12);
        assert_eq!(cosine(&a, &set(&[4, 5])), 0.0);
        assert_eq!(cosine(&a, &set(&[])), 0.0);
    }

    #[test]
    fn cosine_partial_overlap() {
        // |A∩B|=1, |A|=2, |B|=2 → 1/2.
        let s = cosine(&set(&[1, 2]), &set(&[2, 3]));
        assert!((s - 0.5).abs() < 1e-12);
    }

    #[test]
    fn matrix_is_symmetric_with_unit_diagonal() {
        let sets = vec![set(&[0, 1]), set(&[1, 2]), set(&[5])];
        let m = similarity_matrix(&sets);
        for i in 0..sets.len() {
            assert!((m.get(i, i) - 1.0).abs() < 1e-12);
            for j in 0..sets.len() {
                assert!((m.get(i, j) - m.get(j, i)).abs() < 1e-12);
                assert!((m.get(i, j) - cosine(&sets[i], &sets[j])).abs() < 1e-12 || i == j);
            }
        }
    }

    #[test]
    fn graph_uses_strict_threshold() {
        // Similarity exactly 0.5 must NOT create an edge ("above 50%").
        let sets = vec![set(&[1, 2]), set(&[2, 3]), set(&[1, 2, 3])];
        let g = similarity_graph(&sets, DEFAULT_THRESHOLD);
        assert!(!g.has_edge(0, 1), "cos=0.5 exactly, excluded");
        // cos({1,2},{1,2,3}) = 2/sqrt(6) ≈ 0.816 > 0.5.
        assert!(g.has_edge(0, 2));
        assert!(g.has_edge(1, 2));
    }

    #[test]
    fn graph_from_matrix_matches_direct_build() {
        let sets = vec![set(&[1, 2]), set(&[2, 3]), set(&[1, 2, 3]), set(&[9])];
        let m = similarity_matrix(&sets);
        let from_matrix = similarity_graph_from(&m, DEFAULT_THRESHOLD);
        assert_eq!(
            check_similarity_graph(&sets, DEFAULT_THRESHOLD, &from_matrix),
            Ok(())
        );
    }

    #[test]
    fn empty_input() {
        let g = similarity_graph(&[], DEFAULT_THRESHOLD);
        assert_eq!(g.node_count(), 0);
    }

    #[test]
    fn fsck_detects_corruption() {
        let sets = vec![set(&[1, 2]), set(&[2, 3]), set(&[1, 2, 3]), set(&[9])];
        let g = similarity_graph(&sets, DEFAULT_THRESHOLD);
        assert_eq!(check_similarity_graph(&sets, DEFAULT_THRESHOLD, &g), Ok(()));

        // An extra edge the similarities do not justify.
        let mut extra = g.clone();
        extra.add_edge(0, 3);
        let problems = check_similarity_graph(&sets, DEFAULT_THRESHOLD, &extra).unwrap_err();
        assert!(
            problems.iter().any(|m| m.contains("edge (0, 3)")),
            "{problems:?}"
        );

        // A missing edge (rebuild at a higher threshold, check at the lower).
        let sparse = similarity_graph(&sets, 0.99);
        let problems = check_similarity_graph(&sets, DEFAULT_THRESHOLD, &sparse).unwrap_err();
        assert!(
            problems.iter().any(|m| m.contains("disagrees")),
            "{problems:?}"
        );

        // Node-count mismatch is reported rather than panicking.
        let problems = check_similarity_graph(&sets[..2], DEFAULT_THRESHOLD, &g).unwrap_err();
        assert!(
            problems.iter().any(|m| m.contains("nodes for")),
            "{problems:?}"
        );
    }
}
