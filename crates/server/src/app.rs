//! The demo web application: routing and handlers.
//!
//! Endpoints mirror the paper's demonstration (Section V): the advanced
//! search interface with autocomplete and dynamic drop-downs, the
//! bulk-loading interface, per-page views, real-time visualizations
//! (bar/pie/map/graph/hypergraph), recommendations, and live tag clouds.

use crate::http::{url_encode, Request, Response};
use parking_lot::Mutex;
use sensormeta_cache::{Domain, Status, ALL_DOMAINS};
use sensormeta_cluster::{Replica, Router, ShardSet, Topology};
use sensormeta_obs as obs;
use sensormeta_query::{
    CondOp, Condition, QueryEngine, QueryError, SearchForm, SearchOptions, SortBy,
};
use sensormeta_resil::{self as resil, Admission, Breaker, BreakerConfig, Deadline};
use sensormeta_smr::{parse_csv, parse_jsonl};
use sensormeta_tagging::{suggest_tags, CloudCache, CloudParams, TagCloud, TagStore};
use sensormeta_tx::{Mvcc, Snapshot};
use sensormeta_viz as viz;
use serde_json::json;
use std::sync::Arc;
use std::time::Duration;

/// Default bound on how long a request blocks behind an identical in-flight
/// query before giving up with `503` (overridden by `SENSORMETA_CACHE_WAIT_MS`).
const DEFAULT_CACHE_WAIT: Duration = Duration::from_millis(2000);

/// Default end-to-end compute budget per admitted request (overridden by
/// `SENSORMETA_DEADLINE_MS`; `0` disables).
const DEFAULT_DEADLINE: Duration = Duration::from_millis(5000);

/// Default bound on concurrently executing requests (overridden by
/// `SENSORMETA_MAX_INFLIGHT`; `0` means unbounded).
const DEFAULT_MAX_INFLIGHT: usize = 256;

/// `Warning` header attached to every response served from stale cache, so
/// no degraded answer can masquerade as a fresh one (RFC 9111 §5.5 code 110).
const WARNING_STALE: &str = "110 sensormeta \"response is stale\"";

/// Overload-protection knobs for [`App::with_config`]. [`AppConfig::from_env`]
/// reads the `SENSORMETA_*` variables; tests pass explicit values so they
/// never race on process-global env state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AppConfig {
    /// Single-flight wait bound for cached query paths (`None` = unbounded).
    pub cache_wait: Option<Duration>,
    /// Per-request compute budget (`None` = no deadline).
    pub deadline: Option<Duration>,
    /// Max concurrently executing requests (`0` = unbounded).
    pub max_inflight: usize,
    /// Circuit-breaker tuning shared by the query and tag-cloud backends.
    pub breaker: BreakerConfig,
    /// Serving topology: in-process shards and WAL-shipped read replicas.
    pub topology: Topology,
}

impl Default for AppConfig {
    fn default() -> Self {
        AppConfig {
            cache_wait: Some(DEFAULT_CACHE_WAIT),
            deadline: Some(DEFAULT_DEADLINE),
            max_inflight: DEFAULT_MAX_INFLIGHT,
            breaker: BreakerConfig::default(),
            topology: Topology::default(),
        }
    }
}

impl AppConfig {
    /// Reads `SENSORMETA_CACHE_WAIT_MS`, `SENSORMETA_DEADLINE_MS` and
    /// `SENSORMETA_MAX_INFLIGHT`; unset or unparsable values fall back to
    /// the defaults, `0` disables the respective bound.
    pub fn from_env() -> AppConfig {
        AppConfig {
            cache_wait: cache_wait_from_env(),
            deadline: parse_opt_ms(
                std::env::var("SENSORMETA_DEADLINE_MS").ok().as_deref(),
                DEFAULT_DEADLINE,
            ),
            max_inflight: parse_max_inflight(
                std::env::var("SENSORMETA_MAX_INFLIGHT").ok().as_deref(),
            ),
            breaker: BreakerConfig::default(),
            topology: Topology::from_env(),
        }
    }
}

/// Shared application state, organized around MVCC snapshot isolation:
/// every read request opens a [`Snapshot`] of the published engine at
/// admission and sees one epoch-consistent generation for its whole
/// lifetime, while writers mutate the private `primary` copy (which owns
/// the WAL) and publish a new version when done — readers are never
/// blocked by a writer, and a writer never waits for readers to drain.
pub struct App {
    /// The writer's engine: the only mutable copy, owner of the durability
    /// handle. The mutex serializes committers; read paths never touch it.
    primary: Mutex<QueryEngine>,
    /// Published engine versions; committers swap in `primary.clone_reader()`
    /// here and old versions are GC'd once no snapshot pins them.
    engine: Mvcc<QueryEngine>,
    tags: Mvcc<TagStore>,
    cloud_cache: CloudCache,
    /// Single-flight wait deadline for cached query paths; `None` disables
    /// the bound (`SENSORMETA_CACHE_WAIT_MS=0`).
    cache_wait: Option<Duration>,
    /// Per-request compute budget installed as the ambient deadline.
    deadline: Option<Duration>,
    admission: Admission,
    breaker_query: Breaker,
    breaker_cloud: Breaker,
    /// Serving topology (shards, replicas, staleness bound).
    topology: Topology,
    /// Scatter-gather executor when `topology.shards > 1`.
    shards: Option<ShardSet>,
    /// Read routing over WAL-shipped replicas; empty until
    /// [`App::attach_replicas`] is called.
    router: Router,
}

/// Reads the single-flight wait bound from `SENSORMETA_CACHE_WAIT_MS`:
/// unset or unparsable → the default, `0` → unbounded.
fn cache_wait_from_env() -> Option<Duration> {
    parse_cache_wait(std::env::var("SENSORMETA_CACHE_WAIT_MS").ok().as_deref())
}

fn parse_cache_wait(raw: Option<&str>) -> Option<Duration> {
    parse_opt_ms(raw, DEFAULT_CACHE_WAIT)
}

fn parse_opt_ms(raw: Option<&str>, default: Duration) -> Option<Duration> {
    match raw.map(|s| s.trim().parse::<u64>()) {
        Some(Ok(0)) => None,
        Some(Ok(ms)) => Some(Duration::from_millis(ms)),
        Some(Err(_)) | None => Some(default),
    }
}

fn parse_max_inflight(raw: Option<&str>) -> usize {
    match raw.map(|s| s.trim().parse::<usize>()) {
        Some(Ok(n)) => n,
        Some(Err(_)) | None => DEFAULT_MAX_INFLIGHT,
    }
}

/// An honest `Retry-After` for shed or busy responses: twice the observed
/// end-to-end p95 (the time a retry is likely to need), clamped to 1–30 s.
fn retry_after_secs() -> u64 {
    let p95_us = obs::histogram("http_request_us").quantile(0.95);
    (2 * p95_us).div_ceil(1_000_000).clamp(1, 30)
}

/// Finishes a JSON response; a serialization failure becomes a 500
/// instead of a panic in the request path.
fn json_or_500(body: Result<String, serde_json::Error>) -> Response {
    match body {
        Ok(body) => Response::json(body),
        Err(e) => Response::error(500, e.to_string()),
    }
}

impl App {
    /// Builds the app with knobs from the environment, seeding the tag
    /// store from the SMR.
    pub fn new(engine: QueryEngine) -> App {
        Self::with_config(engine, AppConfig::from_env())
    }

    /// Builds the app with explicit overload-protection knobs.
    pub fn with_config(engine: QueryEngine, cfg: AppConfig) -> App {
        let mut tags = TagStore::new();
        if let Ok(pairs) = engine.smr().all_tags() {
            tags.ingest(pairs.iter().map(|(p, t)| (p.as_str(), t.as_str())));
        }
        let shards = if cfg.topology.shards > 1 {
            match ShardSet::build(&engine, cfg.topology.shards) {
                Ok(set) => Some(set),
                Err(_) => {
                    // Fall back to unsharded serving rather than refusing
                    // to start; the counter makes the degradation visible.
                    obs::counter("cluster_shard_build_failures_total").inc();
                    None
                }
            }
        } else {
            None
        };
        App {
            engine: Mvcc::new(engine.clone_reader()),
            primary: Mutex::new(engine),
            tags: Mvcc::new(tags),
            cloud_cache: CloudCache::new(),
            cache_wait: cfg.cache_wait,
            deadline: cfg.deadline,
            admission: Admission::new(cfg.max_inflight),
            breaker_query: Breaker::new("query", cfg.breaker),
            breaker_cloud: Breaker::new("tagcloud", cfg.breaker),
            topology: cfg.topology,
            shards,
            router: Router::new(Vec::new(), cfg.topology.staleness_epochs),
        }
    }

    /// Opens `topology.replicas` WAL-shipped read replicas of the durable
    /// store at `primary_path`, starts their tail loops, and installs them
    /// behind the read router. The primary engine must own that store (its
    /// commits write the log the replicas tail). Returns the replica count.
    pub fn attach_replicas(&mut self, primary_path: &std::path::Path) -> Result<usize, QueryError> {
        let mut replicas = Vec::new();
        for i in 0..self.topology.replicas {
            let replica = Replica::open(&format!("r{i}"), primary_path)?;
            replica.start(self.topology.poll_interval);
            replicas.push(replica);
        }
        let attached = replicas.len();
        self.router = Router::new(replicas, self.topology.staleness_epochs);
        Ok(attached)
    }

    /// The serving topology this app was built with.
    pub fn topology(&self) -> Topology {
        self.topology
    }

    /// The query-path circuit breaker (exposed for tests and diagnostics).
    pub fn query_breaker(&self) -> &Breaker {
        &self.breaker_query
    }

    /// The tag-cloud circuit breaker (exposed for tests and diagnostics).
    pub fn cloud_breaker(&self) -> &Breaker {
        &self.breaker_cloud
    }

    /// Opens a read snapshot of the published engine — exactly what every
    /// read request does at admission. Exposed for the isolation tests and
    /// the concurrency bench.
    pub fn engine_snapshot(&self) -> Snapshot<QueryEngine> {
        self.engine.snapshot()
    }

    /// Sequence number of the currently published engine version.
    pub fn engine_seq(&self) -> u64 {
        self.engine.seq()
    }

    /// Runs `mutate` on the primary engine under the committer lock, then
    /// rebuilds derived structures and publishes the next version. This is
    /// the programmatic write path (tests, bench) — `POST /bulkload` is the
    /// HTTP spelling of the same sequence.
    pub fn commit_engine<E>(
        &self,
        mutate: impl FnOnce(&mut QueryEngine) -> std::result::Result<(), E>,
    ) -> std::result::Result<u64, E> {
        let mut primary = self.primary.lock();
        mutate(&mut primary)?;
        let seq = self
            .engine
            .begin()
            .publish(&ALL_DOMAINS, primary.clone_reader());
        self.republish_shards(&primary);
        Ok(seq)
    }

    /// Re-partitions the shard set from the primary after a commit; a
    /// partitioning failure keeps the previous shard generation serving
    /// (scatter reads lag one commit instead of failing).
    fn republish_shards(&self, primary: &QueryEngine) {
        if let Some(set) = &self.shards {
            if set.republish(primary).is_err() {
                obs::counter("cluster_shard_build_failures_total").inc();
            }
        }
    }

    /// Stable route label for metric names (`http_route_<label>_…`). Unknown
    /// paths collapse into one label so metrics stay bounded.
    fn route_label(req: &Request) -> &'static str {
        match (req.method.as_str(), req.path.as_str()) {
            ("GET", "/") => "home",
            ("GET", "/search") => "search",
            ("GET", "/autocomplete") => "autocomplete",
            ("GET", "/attributes") => "attributes",
            ("GET", "/recommend") => "recommend",
            ("GET", "/tags") => "tags",
            ("GET", "/tags.json") => "tags_json",
            ("GET", "/viz/bar") => "viz_bar",
            ("GET", "/viz/pie") => "viz_pie",
            ("GET", "/viz/map") => "viz_map",
            ("GET", "/viz/graph") => "viz_graph",
            ("GET", "/viz/hypergraph") => "viz_hypergraph",
            ("GET", "/sql") => "sql",
            ("GET", "/sparql") => "sparql",
            ("GET", "/export.ttl") => "export_ttl",
            ("GET", "/suggest_tags") => "suggest_tags",
            ("GET", "/metrics") => "metrics",
            ("GET", "/metrics.json") => "metrics",
            ("GET", "/healthz") => "healthz",
            ("GET", "/cluster") => "cluster",
            ("POST", "/bulkload") => "bulkload",
            ("POST", "/tag") => "tag",
            ("POST", "/admin/cache/clear") => "admin_cache_clear",
            ("GET", p) if p.starts_with("/page/") => "page",
            _ => "other",
        }
    }

    /// Routes one request to its handler behind admission control and the
    /// per-request deadline, recording per-route request counters,
    /// status-class counters and latency histograms.
    pub fn handle(&self, req: &Request) -> Response {
        let start = std::time::Instant::now();
        let route = Self::route_label(req);
        // Probes and exposition stay exempt: an operator debugging an
        // overload needs /healthz and /metrics more than ever.
        let resp = if matches!(route, "healthz" | "metrics") {
            self.dispatch(req)
        } else {
            match self.admission.try_acquire() {
                Some(_permit) => {
                    let _scope = resil::deadline_scope(Deadline::from_budget(self.deadline));
                    self.dispatch(req)
                }
                None => Response::error(429, "server at capacity; retry later")
                    .with_header("Retry-After", retry_after_secs().to_string()),
            }
        };
        obs::counter("http_requests_total").inc();
        obs::counter(&format!("http_route_{route}_requests_total")).inc();
        obs::counter(&format!(
            "http_route_{route}_status_{}xx_total",
            resp.status / 100
        ))
        .inc();
        obs::histogram(&format!("http_route_{route}_us")).record_duration(start.elapsed());
        obs::histogram("http_request_us").record_duration(start.elapsed());
        resp
    }

    fn dispatch(&self, req: &Request) -> Response {
        match (req.method.as_str(), req.path.as_str()) {
            ("GET", "/") => self.home(),
            ("GET", "/search") => self.search(req),
            ("GET", "/autocomplete") => self.autocomplete(req),
            ("GET", "/attributes") => self.attributes(),
            ("GET", "/recommend") => self.recommend(req),
            ("GET", "/tags") => self.tag_cloud_svg(),
            ("GET", "/tags.json") => self.tag_cloud_json(),
            ("GET", "/viz/bar") => self.viz_bar(req),
            ("GET", "/viz/pie") => self.viz_pie(req),
            ("GET", "/viz/map") => self.viz_map(req),
            ("GET", "/viz/graph") => self.viz_graph(req),
            ("GET", "/viz/hypergraph") => self.viz_hypergraph(req),
            ("GET", "/sql") => self.sql_console(req),
            ("GET", "/sparql") => self.sparql_console(req),
            ("GET", "/export.ttl") => self.export_turtle(),
            ("GET", "/suggest_tags") => self.suggest_tags(req),
            ("GET", "/metrics") => Self::metrics(req, false),
            ("GET", "/metrics.json") => Self::metrics(req, true),
            ("GET", "/healthz") => self.healthz(),
            ("GET", "/cluster") => self.cluster_status(),
            ("POST", "/bulkload") => self.bulkload(req),
            ("POST", "/tag") => self.add_tag(req),
            ("POST", "/admin/cache/clear") => self.admin_cache_clear(),
            ("GET", p) if p.starts_with("/page/") => self.page(&p["/page/".len()..]),
            ("GET", _) => Response::error(404, "not found"),
            _ => Response::error(405, "method not allowed"),
        }
    }

    /// Exposition endpoint: Prometheus text format by default, JSON via
    /// `/metrics.json` or `?format=json`.
    fn metrics(req: &Request, json: bool) -> Response {
        let reg = obs::global();
        if json || req.param_or("format", "prometheus") == "json" {
            Response::json(reg.render_json())
        } else {
            Response {
                status: 200,
                content_type: "text/plain; version=0.0.4; charset=utf-8".into(),
                body: reg.render_prometheus().into_bytes(),
                headers: Vec::new(),
            }
        }
    }

    /// Liveness probe: cheap repository touch, plain-text `ok`.
    fn healthz(&self) -> Response {
        let pages = self.engine.snapshot().smr().page_count();
        Response {
            status: 200,
            content_type: "text/plain; charset=utf-8".into(),
            body: format!("ok {pages} pages\n").into_bytes(),
            headers: Vec::new(),
        }
    }

    fn home(&self) -> Response {
        let engine = self.engine.snapshot();
        let count = engine.smr().page_count();
        let stats_html = engine
            .smr()
            .statistics()
            .map(|s| {
                let per_ns: String = s
                    .pages_per_namespace
                    .iter()
                    .map(|(ns, n)| format!("{} {}", viz::escape(ns), n))
                    .collect::<Vec<_>>()
                    .join(" · ");
                format!(
                    "<p><small>{per_ns} — {} annotations, {} links, {} tags, {} RDF triples</small></p>",
                    s.annotations, s.links, s.tags, s.triples
                )
            })
            .unwrap_or_default();
        let attrs = engine.smr().attributes().unwrap_or_default();
        let options: String = attrs
            .iter()
            .take(20)
            .map(|(a, n)| {
                format!(
                    "<option value=\"{}\">{} ({n})</option>",
                    viz::escape(a),
                    viz::escape(a)
                )
            })
            .collect();
        Response::html(format!(
            r#"<!DOCTYPE html><html><head><title>Sensor Metadata Search</title></head>
<body>
<h1>Advanced Sensor Metadata Search</h1>
<p>{count} metadata pages in the repository.</p>
{stats_html}
<form action="/search" method="get">
  <input name="q" placeholder="keywords" size="40">
  <select name="attribute"><option value="">any attribute</option>{options}</select>
  <select name="op"><option>eq</option><option>contains</option><option>gt</option><option>lt</option><option>between</option></select>
  <input name="value" placeholder="value">
  <select name="sort"><option>relevance</option><option>pagerank</option><option>title</option></select>
  <button type="submit">Search</button>
</form>
<p><a href="/tags">tag cloud</a> · <a href="/viz/hypergraph">hypergraph</a> · <a href="/viz/graph">link graph</a></p>
</body></html>"#
        ))
    }

    fn form_from(req: &Request) -> SearchForm {
        let mut form = SearchForm::keywords(req.param_or("q", ""));
        if let (Some(attr), Some(value)) = (req.param("attribute"), req.param("value")) {
            if !attr.is_empty() && !value.is_empty() {
                let op = match req.param_or("op", "eq") {
                    "contains" => CondOp::Contains,
                    "gt" => CondOp::Gt,
                    "lt" => CondOp::Lt,
                    "between" => CondOp::Between,
                    _ => CondOp::Eq,
                };
                form.conditions.push(Condition::new(attr, op, value));
            }
        }
        if let Some(ns) = req.param("namespace") {
            if !ns.is_empty() {
                form.namespace = Some(ns.to_owned());
            }
        }
        form.sort_by = match req.param_or("sort", "relevance") {
            "pagerank" => SortBy::PageRank,
            "title" => SortBy::Title,
            attr if attr.starts_with("attr:") => SortBy::Attribute(attr[5..].to_owned()),
            _ => SortBy::Relevance,
        };
        form.descending = req.param_or("order", "") == "desc";
        form.limit = req.param("limit").and_then(|l| l.parse().ok()).unwrap_or(0);
        form.match_all = req.param_or("match", "any") == "all";
        form.soft_conditions = req.param_or("soft", "0") == "1";
        // Map-based browsing: ?lat_min=…&lat_max=…&lon_min=…&lon_max=…
        let bbox: Vec<f64> = ["lat_min", "lat_max", "lon_min", "lon_max"]
            .iter()
            .filter_map(|k| req.param(k).and_then(|v| v.parse().ok()))
            .collect();
        if bbox.len() == 4 {
            form.region = Some((bbox[0], bbox[1], bbox[2], bbox[3]));
        }
        form
    }

    fn search(&self, req: &Request) -> Response {
        let form = Self::form_from(req);
        // Sharded topology: scatter-gather across the shard set (results
        // are byte-identical to the single-store path by construction).
        if let Some(set) = &self.shards {
            return self.search_sharded(req, &form, set);
        }
        // Replicated topology: serve the read from a sufficiently fresh
        // replica when one exists; fall through to the primary otherwise.
        if let Some(replica) = self.router.route_read(ShardSet::SEARCH_DEPS) {
            return match replica.search(&form, req.param("user")) {
                Ok(out) => {
                    Self::render_search(req, &form, &out).with_header("X-Served-By", "replica")
                }
                Err(e) => self.search_error(e),
            };
        }
        let engine = self.engine.snapshot();
        if !self.breaker_query.allow() {
            // Open circuit: don't touch the backend at all — answer from the
            // stale holdover if one exists, shed otherwise.
            return match engine.search_stale(&form, req.param("user")) {
                Some((out, _age)) => Self::render_search(req, &form, &out)
                    .with_header("Cache-Status", Status::Degraded.as_str())
                    .with_header("Warning", WARNING_STALE),
                None => Response::error(503, "search backend unavailable (circuit open)")
                    .with_header("Retry-After", retry_after_secs().to_string()),
            };
        }
        let opts = SearchOptions {
            bypass: req.param("cache") == Some("bypass"),
            wait: self.cache_wait,
            user: req.param("user"),
            stale_ok: true,
            // Pin the cache to this request's snapshot generation: the
            // whole request sees one epoch vector even if a writer commits
            // mid-flight.
            at: Some(engine.epochs()),
            ..SearchOptions::default()
        };
        match engine.search_shared(&form, &opts) {
            Ok((out, status)) => {
                if status.is_degraded() {
                    // The backend failed and the cache bailed us out: a
                    // success for the client, a failure for the breaker.
                    self.breaker_query.record_failure();
                } else {
                    self.breaker_query.record_success();
                }
                let resp = Self::render_search(req, &form, &out)
                    .with_header("Cache-Status", status.as_str());
                if status.is_degraded() {
                    resp.with_header("Warning", WARNING_STALE)
                } else {
                    resp
                }
            }
            Err(e) => self.search_error(e),
        }
    }

    /// Scatter-gather search over the shard set, behind the query breaker.
    /// The scattered path is uncached (each request fans out), so responses
    /// are labelled `Cache-Status: bypass`.
    fn search_sharded(&self, req: &Request, form: &SearchForm, set: &ShardSet) -> Response {
        if !self.breaker_query.allow() {
            return Response::error(503, "search backend unavailable (circuit open)")
                .with_header("Retry-After", retry_after_secs().to_string());
        }
        match set.search(form, req.param("user")) {
            Ok(out) => {
                self.breaker_query.record_success();
                Self::render_search(req, form, &out)
                    .with_header("Cache-Status", "bypass")
                    .with_header("X-Cluster-Shards", set.shard_count().to_string())
            }
            Err(e) => self.search_error(e),
        }
    }

    /// Topology introspection: shard count, staleness bound, and per-replica
    /// applied sequence and epoch lag. Also refreshes the replica-lag gauge
    /// so `/metrics` stays current even between tail polls.
    fn cluster_status(&self) -> Response {
        let deps = ShardSet::SEARCH_DEPS;
        let replicas: Vec<serde_json::Value> = self
            .router
            .replicas()
            .iter()
            .map(|r| {
                json!({
                    "name": r.name(),
                    "appliedSeq": r.applied_seq(),
                    "stalenessEpochs": r.staleness(deps),
                })
            })
            .collect();
        let max_staleness = self
            .router
            .replicas()
            .iter()
            .map(|r| r.staleness(deps))
            .max()
            .unwrap_or(0);
        obs::gauge("cluster_replica_staleness_epochs").set(max_staleness as f64);
        Response::json(
            json!({
                "shards": self.topology.shards,
                "stalenessBound": self.topology.staleness_epochs,
                "replicas": replicas,
            })
            .to_string(),
        )
    }

    /// Maps a query failure to an HTTP status, feeding the breaker for
    /// backend-class failures (client errors and load-shedding don't count).
    fn search_error(&self, e: QueryError) -> Response {
        match e {
            QueryError::EmptyForm => Response::error(400, e.to_string()),
            QueryError::CacheBusy => Response::error(503, e.to_string())
                .with_header("Retry-After", retry_after_secs().to_string()),
            QueryError::DeadlineExceeded => {
                self.breaker_query.record_failure();
                Response::error(504, e.to_string())
            }
            other => {
                self.breaker_query.record_failure();
                Response::error(500, other.to_string())
            }
        }
    }

    fn render_search(
        req: &Request,
        form: &SearchForm,
        out: &sensormeta_query::QueryOutput,
    ) -> Response {
        if req.param_or("format", "json") == "html" {
            let rows: String = out
                .items
                .iter()
                .map(|i| {
                    format!(
                        "<tr><td><a href=\"/page/{}\">{}</a></td><td>{}</td><td>{:.4}</td><td>{}</td></tr>",
                        url_encode(&i.title),
                        viz::escape(&i.title),
                        viz::escape(&i.namespace),
                        i.score,
                        sensormeta_search::highlight_html(&i.snippet, &form.keywords),
                    )
                })
                .collect();
            let recs: String = out
                .recommendations
                .iter()
                .map(|r| {
                    format!(
                        "<li><a href=\"/page/{}\">{}</a></li>",
                        url_encode(&r.title),
                        viz::escape(&r.title)
                    )
                })
                .collect();
            let dym = out
                .did_you_mean
                .as_ref()
                .map(|s| {
                    format!(
                        "<p>Did you mean <a href=\"/search?q={}&format=html\"><i>{}</i></a>?</p>",
                        url_encode(s),
                        viz::escape(s)
                    )
                })
                .unwrap_or_default();
            Response::html(format!(
                "<html><body><h1>{} results</h1>{dym}<table border=1><tr><th>page</th><th>namespace</th><th>score</th><th>snippet</th></tr>{rows}</table><h2>Related pages</h2><ul>{recs}</ul></body></html>",
                out.total_matched
            ))
        } else {
            json_or_500(serde_json::to_string(out))
        }
    }

    fn autocomplete(&self, req: &Request) -> Response {
        let prefix = req.param_or("prefix", "");
        let k = req.param("k").and_then(|k| k.parse().ok()).unwrap_or(10);
        let suggestions = self.engine.snapshot().autocomplete(prefix, k);
        let arr: Vec<serde_json::Value> = suggestions
            .into_iter()
            .map(|(s, w)| json!({"suggestion": s, "weight": w}))
            .collect();
        Response::json(serde_json::Value::Array(arr).to_string())
    }

    fn attributes(&self) -> Response {
        let engine = self.engine.snapshot();
        let attrs = engine.smr().attributes().unwrap_or_default();
        let arr: Vec<serde_json::Value> = attrs
            .into_iter()
            .map(|(a, n)| {
                let values = engine.smr().attribute_values(&a).unwrap_or_default();
                json!({"attribute": a, "count": n, "values": values})
            })
            .collect();
        Response::json(serde_json::Value::Array(arr).to_string())
    }

    fn recommend(&self, req: &Request) -> Response {
        let Some(title) = req.param("title") else {
            return Response::error(400, "missing ?title=");
        };
        let recs = self.engine.snapshot().recommend(&[title], 10);
        json_or_500(serde_json::to_string(&recs))
    }

    fn page(&self, raw_title: &str) -> Response {
        let title = raw_title.to_owned();
        let engine = self.engine.snapshot();
        match engine.smr().get_page(&title) {
            Ok(Some(page)) => {
                let ann: String = page
                    .annotations
                    .iter()
                    .map(|(a, v)| {
                        format!(
                            "<tr><td>{}</td><td>{}</td></tr>",
                            viz::escape(a),
                            viz::escape(v)
                        )
                    })
                    .collect();
                let links: String = page
                    .links
                    .iter()
                    .map(|l| {
                        format!(
                            "<li><a href=\"/page/{}\">{}</a></li>",
                            url_encode(l),
                            viz::escape(l)
                        )
                    })
                    .collect();
                let tags = page.tags.join(", ");
                Response::html(format!(
                    "<html><body><h1>{}</h1><p><i>{} — revision {}</i></p><p>{}</p>\
                     <h2>Annotations</h2><table border=1>{ann}</table>\
                     <h2>Links</h2><ul>{links}</ul><p>Tags: {}</p></body></html>",
                    viz::escape(&page.title),
                    viz::escape(&page.namespace),
                    page.revision,
                    viz::escape(&page.body),
                    viz::escape(&tags),
                ))
            }
            Ok(None) => Response::error(404, format!("no page `{title}`")),
            Err(e) => Response::error(500, e.to_string()),
        }
    }

    fn bulkload(&self, req: &Request) -> Response {
        let body = match req.body_str() {
            Ok(b) => b.to_owned(),
            Err(e) => {
                obs::counter("http_body_utf8_rejected_total").inc();
                return Response::error(400, format!("body is not valid UTF-8: {e}"));
            }
        };
        let content_type = req
            .headers
            .get("content-type")
            .map(String::as_str)
            .unwrap_or("application/jsonl");
        let (drafts, parse_errors) = if content_type.contains("csv") {
            parse_csv(&body)
        } else {
            parse_jsonl(&body)
        };
        // Serialized committer path: mutate the private primary (WAL-logged
        // inside bulk_load), rebuild its derived structures, then publish a
        // reader clone as the next version. Readers on open snapshots are
        // untouched; new requests admit onto the rebuilt engine.
        let mut primary = self.primary.lock();
        let mut report = primary.smr_mut().bulk_load(drafts);
        report.errors.extend(parse_errors);
        if let Err(e) = primary.rebuild() {
            return Response::error(500, e.to_string());
        }
        self.engine
            .begin()
            .publish(&ALL_DOMAINS, primary.clone_reader());
        self.republish_shards(&primary);
        // Refresh the tag store from the updated repository.
        let mut fresh = TagStore::new();
        if let Ok(pairs) = primary.smr().all_tags() {
            fresh.ingest(pairs.iter().map(|(p, t)| (p.as_str(), t.as_str())));
        }
        drop(primary);
        let _ = self
            .tags
            .commit(&[Domain::TagIncidence], |t: &mut TagStore| {
                *t = fresh;
                Ok::<(), std::convert::Infallible>(())
            });
        json_or_500(serde_json::to_string(&report))
    }

    fn add_tag(&self, req: &Request) -> Response {
        let (Some(page), Some(tag)) = (req.param("page"), req.param("tag")) else {
            return Response::error(400, "need ?page= and ?tag=");
        };
        let mut added = false;
        let _ = self
            .tags
            .commit(&[Domain::TagIncidence], |t: &mut TagStore| {
                added = t.add(page, tag);
                Ok::<(), std::convert::Infallible>(())
            });
        Response::json(json!({"added": added}).to_string())
    }

    /// Raw SQL console (read-only SELECT / EXPLAIN).
    fn sql_console(&self, req: &Request) -> Response {
        let Some(q) = req.param("q") else {
            return Response::error(400, "missing ?q=SELECT …");
        };
        let engine = self.engine.snapshot();
        let upper = q.trim_start().to_uppercase();
        if !upper.starts_with("SELECT") && !upper.starts_with("EXPLAIN") {
            return Response::error(400, "only SELECT / EXPLAIN are allowed here");
        }
        match engine.smr().sql(q) {
            Ok(rs) => {
                if req.param_or("format", "text") == "json" {
                    let rows: Vec<Vec<String>> = rs
                        .rows
                        .iter()
                        .map(|r| r.iter().map(|v| v.to_string()).collect())
                        .collect();
                    Response::json(json!({"columns": rs.columns, "rows": rows}).to_string())
                } else {
                    Response {
                        status: 200,
                        content_type: "text/plain; charset=utf-8".into(),
                        body: rs.to_ascii_table().into_bytes(),
                        headers: Vec::new(),
                    }
                }
            }
            Err(e) => Response::error(400, e.to_string()),
        }
    }

    /// Raw SPARQL console.
    fn sparql_console(&self, req: &Request) -> Response {
        let Some(q) = req.param("q") else {
            return Response::error(400, "missing ?q=SELECT …");
        };
        let engine = self.engine.snapshot();
        match engine.smr().sparql(q) {
            Ok(sols) => {
                let rows: Vec<Vec<Option<String>>> = sols
                    .rows
                    .iter()
                    .map(|r| {
                        r.iter()
                            .map(|t| t.as_ref().map(|t| t.to_string()))
                            .collect()
                    })
                    .collect();
                Response::json(json!({"vars": sols.vars, "rows": rows}).to_string())
            }
            Err(e) => Response::error(400, e.to_string()),
        }
    }

    /// Dumps the RDF mirror as Turtle (the SMR's export format).
    fn export_turtle(&self) -> Response {
        let engine = self.engine.snapshot();
        let store = engine.smr().rdf();
        let triples: Vec<(
            sensormeta_rdf::Term,
            sensormeta_rdf::Term,
            sensormeta_rdf::Term,
        )> = store.match_terms(None, None, None);
        let ttl = sensormeta_rdf::to_turtle(triples.iter().map(|(s, p, o)| (s, p, o)));
        Response {
            status: 200,
            content_type: "text/turtle; charset=utf-8".into(),
            body: ttl.into_bytes(),
            headers: Vec::new(),
        }
    }

    /// Suggests tags for a page from co-occurrence.
    fn suggest_tags(&self, req: &Request) -> Response {
        let Some(page) = req.param("page") else {
            return Response::error(400, "missing ?page=");
        };
        let k = req.param("k").and_then(|k| k.parse().ok()).unwrap_or(5);
        let tags = self.tags.snapshot();
        let suggestions = suggest_tags(&tags, page, k);
        let arr: Vec<serde_json::Value> = suggestions
            .into_iter()
            .map(|s| json!({"tag": s.tag, "score": s.score, "becauseOf": s.because_of}))
            .collect();
        Response::json(serde_json::Value::Array(arr).to_string())
    }

    /// Drops every result cache (query results, postings, rank vectors and
    /// tag clouds) and bumps all invalidation epochs, so the next request on
    /// each path recomputes from the stores.
    fn admin_cache_clear(&self) -> Response {
        self.engine.snapshot().clear_caches();
        self.cloud_cache.clear();
        sensormeta_cache::clock().bump_all();
        obs::counter("cache_admin_clears_total").inc();
        Response::json(json!({"cleared": true}).to_string())
    }

    /// Tag-cloud lookup behind the `tagcloud` breaker: interruptible
    /// compute, degrading to the last good cloud within the staleness grace
    /// when the compute path fails or the circuit is open.
    fn cloud(&self) -> Result<(Arc<TagCloud>, Status), Response> {
        if !self.breaker_cloud.allow() {
            return match self.cloud_cache.stale() {
                Some((cloud, _age)) => Ok((cloud, Status::Degraded)),
                None => Err(Response::error(503, "tag cloud unavailable (circuit open)")
                    .with_header("Retry-After", retry_after_secs().to_string())),
            };
        }
        let tags = self.tags.snapshot();
        match self
            .cloud_cache
            .try_get_with_status(&tags, &CloudParams::default())
        {
            Ok(pair) => {
                self.breaker_cloud.record_success();
                Ok(pair)
            }
            Err(i) => {
                self.breaker_cloud.record_failure();
                match self.cloud_cache.stale() {
                    Some((cloud, _age)) => Ok((cloud, Status::Degraded)),
                    None => Err(match i {
                        resil::Interrupt::DeadlineExceeded => Response::error(504, i.to_string()),
                        resil::Interrupt::Fault { .. } => Response::error(500, i.to_string()),
                    }),
                }
            }
        }
    }

    /// Labels a tag-cloud response, warning on degraded serves.
    fn cloud_headers(resp: Response, status: Status) -> Response {
        let resp = resp.with_header("Cache-Status", status.as_str());
        if status.is_degraded() {
            resp.with_header("Warning", WARNING_STALE)
        } else {
            resp
        }
    }

    fn tag_cloud_svg(&self) -> Response {
        let (cloud, status) = match self.cloud() {
            Ok(pair) => pair,
            Err(resp) => return resp,
        };
        Self::cloud_headers(
            Response::svg(viz::render_tag_cloud("Metadata trends", &cloud)),
            status,
        )
    }

    fn tag_cloud_json(&self) -> Response {
        let (cloud, status) = match self.cloud() {
            Ok(pair) => pair,
            Err(resp) => return resp,
        };
        let arr: Vec<serde_json::Value> = cloud
            .entries
            .iter()
            .map(|e| {
                json!({
                    "tag": e.tag,
                    "count": e.count,
                    "fontSize": e.font_size,
                    "cliques": e.cliques,
                })
            })
            .collect();
        Self::cloud_headers(
            Response::json(serde_json::Value::Array(arr).to_string()),
            status,
        )
    }

    /// Facet source shared by bar/pie: counts of one attribute over a search.
    fn facet_data(&self, req: &Request) -> Result<(String, Vec<viz::Datum>), Response> {
        let attribute = req.param_or("attribute", "measuresQuantity").to_owned();
        let form = Self::form_from(req);
        let engine = self.engine.snapshot();
        let out = if form.is_empty() {
            // No query: facet over everything via SQL.
            let rs = engine
                .smr()
                .sql(&format!(
                    "SELECT value, COUNT(*) FROM annotations WHERE attribute = '{}' \
                     GROUP BY value ORDER BY 2 DESC",
                    sensormeta_smr::sql_escape(&attribute)
                ))
                .map_err(|e| Response::error(500, e.to_string()))?;
            return Ok((
                attribute.clone(),
                rs.rows
                    .iter()
                    .take(12)
                    .map(|r| viz::Datum::new(r[0].to_string(), r[1].as_int().unwrap_or(0) as f64))
                    .collect(),
            ));
        } else {
            engine
                .search(&form, req.param("user"))
                .map_err(|e| Response::error(400, e.to_string()))?
        };
        let data: Vec<viz::Datum> = out
            .facets
            .iter()
            .filter(|f| f.attribute == attribute)
            .take(12)
            .map(|f| viz::Datum::new(f.value.clone(), f.count as f64))
            .collect();
        Ok((attribute, data))
    }

    fn viz_bar(&self, req: &Request) -> Response {
        match self.facet_data(req) {
            Ok((attr, data)) => {
                Response::svg(viz::bar_chart(&format!("{attr} distribution"), &data))
            }
            Err(resp) => resp,
        }
    }

    fn viz_pie(&self, req: &Request) -> Response {
        match self.facet_data(req) {
            Ok((attr, data)) => Response::svg(viz::pie_chart(&format!("{attr} share"), &data)),
            Err(resp) => resp,
        }
    }

    fn viz_map(&self, req: &Request) -> Response {
        let form = Self::form_from(req);
        let engine = self.engine.snapshot();
        let out = match engine.search(&form, req.param("user")) {
            Ok(o) => o,
            Err(e) => return Response::error(400, e.to_string()),
        };
        let markers: Vec<viz::MapMarker> = out
            .geolocated()
            .filter_map(|i| {
                i.coords.map(|(lat, lon)| viz::MapMarker {
                    title: i.title.clone(),
                    lat,
                    lon,
                    match_degree: i.match_degree,
                })
            })
            .collect();
        Response::svg(viz::map_plot(
            "Geolocated results",
            &markers,
            &viz::MapOptions::default(),
        ))
    }

    fn viz_graph(&self, req: &Request) -> Response {
        let engine = self.engine.snapshot();
        let (semantic, hyperlink, titles) = match engine.smr().link_graphs() {
            Ok(g) => g,
            Err(e) => return Response::error(500, e.to_string()),
        };
        let g = if req.param_or("links", "hyper") == "semantic" {
            semantic
        } else {
            hyperlink
        };
        // Cap at a readable number of nodes.
        let max_nodes: usize = req
            .param("max")
            .and_then(|m| m.parse().ok())
            .unwrap_or(60)
            .min(titles.len());
        let keep: Vec<usize> = (0..max_nodes).collect();
        let remap: std::collections::HashMap<usize, usize> = keep
            .iter()
            .enumerate()
            .map(|(new, &old)| (old, new))
            .collect();
        let edges: Vec<(usize, usize)> = g
            .iter_edges()
            .filter_map(|(u, v)| Some((*remap.get(&u)?, *remap.get(&v)?)))
            .collect();
        let sub = sensormeta_graph::CsrGraph::from_edges(keep.len(), &edges, true);
        let classes = viz::classify_by_neighbors(&sub);
        let nodes: Vec<viz::GraphNode> = keep
            .iter()
            .map(|&old| viz::GraphNode {
                label: titles[old].clone(),
                class: classes[remap[&old]],
            })
            .collect();
        Response::svg(viz::render_digraph(
            "Metadata associations",
            &sub,
            &nodes,
            viz::GraphLayout::Force,
        ))
    }

    fn viz_hypergraph(&self, req: &Request) -> Response {
        let engine = self.engine.snapshot();
        let (_, hyperlink, titles) = match engine.smr().link_graphs() {
            Ok(g) => g,
            Err(e) => return Response::error(500, e.to_string()),
        };
        if titles.is_empty() {
            return Response::error(404, "repository is empty");
        }
        let focus = match req.param("focus") {
            Some(f) => match titles.iter().position(|t| t == f) {
                Some(ix) => ix,
                None => return Response::error(404, format!("no page `{f}`")),
            },
            // Default to the best-connected page ("popular pages").
            None => {
                let ind = hyperlink.in_degrees();
                (0..titles.len())
                    .max_by_key(|&v| ind[v] + hyperlink.out_degree(v))
                    .unwrap_or(0)
            }
        };
        let rings = req.param("rings").and_then(|r| r.parse().ok()).unwrap_or(2);
        Response::svg(viz::render_hypergraph(
            &format!("Hypergraph around {}", titles[focus]),
            &hyperlink,
            &titles,
            focus,
            rings,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_wait_parsing() {
        assert_eq!(parse_cache_wait(None), Some(DEFAULT_CACHE_WAIT));
        assert_eq!(
            parse_cache_wait(Some("250")),
            Some(Duration::from_millis(250))
        );
        assert_eq!(
            parse_cache_wait(Some(" 250 ")),
            Some(Duration::from_millis(250))
        );
        assert_eq!(parse_cache_wait(Some("0")), None, "0 disables the bound");
        assert_eq!(parse_cache_wait(Some("soon")), Some(DEFAULT_CACHE_WAIT));
    }

    #[test]
    fn overload_knob_parsing() {
        assert_eq!(parse_opt_ms(None, DEFAULT_DEADLINE), Some(DEFAULT_DEADLINE));
        assert_eq!(
            parse_opt_ms(Some("750"), DEFAULT_DEADLINE),
            Some(Duration::from_millis(750))
        );
        assert_eq!(parse_opt_ms(Some("0"), DEFAULT_DEADLINE), None);
        assert_eq!(parse_max_inflight(None), DEFAULT_MAX_INFLIGHT);
        assert_eq!(parse_max_inflight(Some("4")), 4);
        assert_eq!(parse_max_inflight(Some("0")), 0, "0 means unbounded");
        assert_eq!(parse_max_inflight(Some("lots")), DEFAULT_MAX_INFLIGHT);
    }

    #[test]
    fn retry_after_is_clamped() {
        // With few or no samples p95 is tiny; the floor keeps the header honest.
        let secs = retry_after_secs();
        assert!((1..=30).contains(&secs), "{secs}");
    }
}
