//! Minimal HTTP/1.1 request parsing and response building over raw streams.
//!
//! Implemented on `std::net` directly — the demo's web layer is part of the
//! system under reproduction, not an off-the-shelf dependency.

use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Read, Write};
use std::time::Instant;

/// A parsed HTTP request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Method (GET, POST, ...).
    pub method: String,
    /// Decoded path without the query string.
    pub path: String,
    /// Decoded query parameters.
    pub query: BTreeMap<String, String>,
    /// Lowercased header map.
    pub headers: BTreeMap<String, String>,
    /// Request body.
    pub body: Vec<u8>,
}

impl Request {
    /// A query parameter by name.
    pub fn param(&self, name: &str) -> Option<&str> {
        self.query.get(name).map(String::as_str)
    }

    /// A query parameter with a default.
    pub fn param_or<'a>(&'a self, name: &str, default: &'a str) -> &'a str {
        self.param(name).unwrap_or(default)
    }

    /// Body as UTF-8. Malformed bytes are an error — handlers answer 400
    /// instead of silently mangling the payload with replacement characters.
    pub fn body_str(&self) -> Result<&str, std::str::Utf8Error> {
        std::str::from_utf8(&self.body)
    }
}

/// Errors while reading a request.
#[derive(Debug)]
pub enum HttpError {
    /// Connection-level I/O failure.
    Io(std::io::Error),
    /// Malformed request.
    Malformed(String),
    /// Body larger than the configured cap.
    TooLarge,
    /// Request line or header block larger than the configured cap
    /// (answered with 431).
    HeaderTooLarge,
    /// The client stalled past the read/write timeout (answered with 408 —
    /// the slow-loris defense).
    Timeout,
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::Io(e) => write!(f, "io error: {e}"),
            HttpError::Malformed(m) => write!(f, "malformed request: {m}"),
            HttpError::TooLarge => write!(f, "request body too large"),
            HttpError::HeaderTooLarge => write!(f, "request line or headers too large"),
            HttpError::Timeout => write!(f, "client timed out"),
        }
    }
}

impl std::error::Error for HttpError {}

/// Maximum accepted body: generous enough for bulk loads, small enough to
/// not be a memory DoS in a demo.
pub const MAX_BODY: usize = 16 * 1024 * 1024;

/// Maximum accepted request line — beyond this the request is answered
/// with 431 rather than buffered without bound.
pub const MAX_REQUEST_LINE: usize = 8 * 1024;

/// Maximum combined size of all header lines.
pub const MAX_HEADER_BYTES: usize = 64 * 1024;

fn is_timeout(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
    )
}

/// Checks the overall request-read deadline between socket reads: per-read
/// socket timeouts bound each *stall*, this bounds the *total* — a client
/// trickling one byte per timeout window (slow-loris) otherwise holds a
/// handler thread indefinitely.
fn check_deadline(deadline: Option<Instant>) -> Result<(), HttpError> {
    match deadline {
        Some(d) if Instant::now() >= d => Err(HttpError::Timeout),
        _ => Ok(()),
    }
}

/// Reads one `\n`-terminated line (CR stripped) without ever buffering more
/// than `limit` bytes. Transient `Interrupted` reads are retried; a read
/// timeout surfaces as [`HttpError::Timeout`].
fn read_line_bounded(
    reader: &mut impl BufRead,
    limit: usize,
    deadline: Option<Instant>,
) -> Result<String, HttpError> {
    let mut buf: Vec<u8> = Vec::new();
    loop {
        check_deadline(deadline)?;
        let mut byte = [0u8; 1];
        match reader.read(&mut byte) {
            Ok(0) => break,
            Ok(_) => {
                if byte[0] == b'\n' {
                    break;
                }
                buf.push(byte[0]);
                if buf.len() > limit {
                    return Err(HttpError::HeaderTooLarge);
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) if is_timeout(&e) => return Err(HttpError::Timeout),
            Err(e) => return Err(HttpError::Io(e)),
        }
    }
    while buf.last() == Some(&b'\r') {
        buf.pop();
    }
    Ok(String::from_utf8_lossy(&buf).into_owned())
}

/// `read_exact` with `Interrupted` retries and timeout classification.
fn read_exact_retrying(
    reader: &mut impl BufRead,
    out: &mut [u8],
    deadline: Option<Instant>,
) -> Result<(), HttpError> {
    let mut filled = 0;
    while filled < out.len() {
        check_deadline(deadline)?;
        match reader.read(&mut out[filled..]) {
            Ok(0) => {
                return Err(HttpError::Malformed(format!(
                    "body truncated at {filled} of {} bytes",
                    out.len()
                )))
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) if is_timeout(&e) => return Err(HttpError::Timeout),
            Err(e) => return Err(HttpError::Io(e)),
        }
    }
    Ok(())
}

/// Reads one request from a stream. Request-line and header sizes are
/// bounded ([`MAX_REQUEST_LINE`], [`MAX_HEADER_BYTES`]) so a slow or
/// malicious client cannot tie up unbounded memory.
pub fn read_request(stream: &mut impl Read) -> Result<Request, HttpError> {
    read_request_with_deadline(stream, None)
}

/// [`read_request`] with an absolute wall deadline on the *whole* read:
/// the request line, headers and body together must arrive before it, no
/// matter how many individually-fast reads the client spreads them over.
pub fn read_request_with_deadline(
    stream: &mut impl Read,
    deadline: Option<Instant>,
) -> Result<Request, HttpError> {
    let mut reader = BufReader::new(stream);
    let line = read_line_bounded(&mut reader, MAX_REQUEST_LINE, deadline)?;
    let mut parts = line.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| HttpError::Malformed("empty request line".into()))?
        .to_uppercase();
    let target = parts
        .next()
        .ok_or_else(|| HttpError::Malformed("missing target".into()))?;
    let (raw_path, raw_query) = match target.split_once('?') {
        Some((p, q)) => (p, Some(q)),
        None => (target, None),
    };
    let path = url_decode(raw_path);
    let query = raw_query.map(parse_query).unwrap_or_default();

    let mut headers = BTreeMap::new();
    let mut header_bytes = 0usize;
    loop {
        let hline = read_line_bounded(&mut reader, MAX_HEADER_BYTES, deadline)?;
        if hline.is_empty() {
            break;
        }
        header_bytes += hline.len();
        if header_bytes > MAX_HEADER_BYTES {
            return Err(HttpError::HeaderTooLarge);
        }
        if let Some((k, v)) = hline.split_once(':') {
            headers.insert(k.trim().to_lowercase(), v.trim().to_owned());
        }
    }
    let content_length: usize = headers
        .get("content-length")
        .and_then(|v| v.parse().ok())
        .unwrap_or(0);
    if content_length > MAX_BODY {
        return Err(HttpError::TooLarge);
    }
    let mut body = vec![0u8; content_length];
    if content_length > 0 {
        read_exact_retrying(&mut reader, &mut body, deadline)?;
    }
    Ok(Request {
        method,
        path,
        query,
        headers,
        body,
    })
}

/// Parses `a=1&b=two` with percent-decoding.
pub fn parse_query(raw: &str) -> BTreeMap<String, String> {
    raw.split('&')
        .filter(|kv| !kv.is_empty())
        .map(|kv| match kv.split_once('=') {
            Some((k, v)) => (url_decode(k), url_decode(v)),
            None => (url_decode(kv), String::new()),
        })
        .collect()
}

/// Percent-decodes a URL component (`+` becomes a space).
pub fn url_decode(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b'%' => {
                let hex = bytes.get(i + 1..i + 3);
                match hex.and_then(|h| u8::from_str_radix(std::str::from_utf8(h).ok()?, 16).ok()) {
                    Some(b) => {
                        out.push(b);
                        i += 3;
                    }
                    None => {
                        out.push(b'%');
                        i += 1;
                    }
                }
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// Percent-encodes a URL component.
pub fn url_encode(s: &str) -> String {
    let mut out = String::new();
    for b in s.as_bytes() {
        match b {
            b'A'..=b'Z' | b'a'..=b'z' | b'0'..=b'9' | b'-' | b'_' | b'.' | b'~' => {
                out.push(*b as char)
            }
            b' ' => out.push('+'),
            b => out.push_str(&format!("%{b:02X}")),
        }
    }
    out
}

/// A response under construction.
#[derive(Debug, Clone)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// Content type.
    pub content_type: String,
    /// Extra response headers as (name, value) pairs, written in order.
    pub headers: Vec<(String, String)>,
    /// Body bytes.
    pub body: Vec<u8>,
}

impl Response {
    /// 200 HTML response.
    pub fn html(body: impl Into<String>) -> Response {
        Response {
            status: 200,
            content_type: "text/html; charset=utf-8".into(),
            headers: Vec::new(),
            body: body.into().into_bytes(),
        }
    }

    /// 200 JSON response.
    pub fn json(body: impl Into<String>) -> Response {
        Response {
            status: 200,
            content_type: "application/json".into(),
            headers: Vec::new(),
            body: body.into().into_bytes(),
        }
    }

    /// 200 SVG response.
    pub fn svg(body: impl Into<String>) -> Response {
        Response {
            status: 200,
            content_type: "image/svg+xml".into(),
            headers: Vec::new(),
            body: body.into().into_bytes(),
        }
    }

    /// Error response with a plain-text body.
    pub fn error(status: u16, message: impl Into<String>) -> Response {
        Response {
            status,
            content_type: "text/plain; charset=utf-8".into(),
            headers: Vec::new(),
            body: message.into().into_bytes(),
        }
    }

    /// Adds an extra response header (builder style).
    pub fn with_header(mut self, name: impl Into<String>, value: impl Into<String>) -> Response {
        self.headers.push((name.into(), value.into()));
        self
    }

    /// Serializes onto a stream.
    pub fn write_to(&self, stream: &mut impl Write) -> std::io::Result<()> {
        let reason = match self.status {
            200 => "OK",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            408 => "Request Timeout",
            413 => "Payload Too Large",
            429 => "Too Many Requests",
            431 => "Request Header Fields Too Large",
            500 => "Internal Server Error",
            502 => "Bad Gateway",
            503 => "Service Unavailable",
            504 => "Gateway Timeout",
            _ => "Unknown",
        };
        write!(
            stream,
            "HTTP/1.1 {} {reason}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n",
            self.status,
            self.content_type,
            self.body.len()
        )?;
        for (name, value) in &self.headers {
            write!(stream, "{name}: {value}\r\n")?;
        }
        write!(stream, "\r\n")?;
        stream.write_all(&self.body)?;
        stream.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_get_with_query() {
        let raw = b"GET /search?q=snow+height&limit=5 HTTP/1.1\r\nHost: x\r\n\r\n";
        let req = read_request(&mut &raw[..]).unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/search");
        assert_eq!(req.param("q"), Some("snow height"));
        assert_eq!(req.param("limit"), Some("5"));
        assert_eq!(req.headers["host"], "x");
    }

    #[test]
    fn parses_post_with_body() {
        let raw = b"POST /bulkload HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello";
        let req = read_request(&mut &raw[..]).unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.body_str().unwrap(), "hello");
    }

    #[test]
    fn invalid_utf8_body_is_an_error() {
        let mut raw: Vec<u8> = b"POST /bulkload HTTP/1.1\r\nContent-Length: 3\r\n\r\n".to_vec();
        raw.extend_from_slice(&[0xff, 0xfe, 0x41]);
        let req = read_request(&mut &raw[..]).unwrap();
        assert!(req.body_str().is_err());
        assert_eq!(req.body, [0xff, 0xfe, 0x41], "raw bytes still available");
    }

    #[test]
    fn url_decoding() {
        assert_eq!(url_decode("a%20b+c"), "a b c");
        assert_eq!(url_decode("caf%C3%A9"), "café");
        assert_eq!(url_decode("100%"), "100%", "stray % preserved");
        assert_eq!(url_decode("%zz"), "%zz", "bad hex preserved");
    }

    #[test]
    fn url_encode_roundtrip() {
        for s in ["Fieldsite:Weissfluhjoch", "a b&c=d", "Zürich 100%"] {
            assert_eq!(url_decode(&url_encode(s)), s);
        }
    }

    #[test]
    fn rejects_empty_request() {
        let raw = b"\r\n";
        assert!(read_request(&mut &raw[..]).is_err());
    }

    #[test]
    fn rejects_oversized_body() {
        let raw = format!(
            "POST / HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY + 1
        );
        assert!(matches!(
            read_request(&mut raw.as_bytes()),
            Err(HttpError::TooLarge)
        ));
    }

    #[test]
    fn rejects_oversized_request_line() {
        let raw = format!("GET /{} HTTP/1.1\r\n\r\n", "a".repeat(MAX_REQUEST_LINE + 1));
        assert!(matches!(
            read_request(&mut raw.as_bytes()),
            Err(HttpError::HeaderTooLarge)
        ));
    }

    #[test]
    fn rejects_oversized_headers() {
        let mut raw = String::from("GET / HTTP/1.1\r\n");
        for i in 0..80 {
            raw.push_str(&format!("X-Pad-{i}: {}\r\n", "b".repeat(1024)));
        }
        raw.push_str("\r\n");
        assert!(matches!(
            read_request(&mut raw.as_bytes()),
            Err(HttpError::HeaderTooLarge)
        ));
    }

    /// A reader that fails with `Interrupted` before every chunk — the
    /// parser must retry transparently.
    struct Interrupting<'a> {
        data: &'a [u8],
        pos: usize,
        interrupt_next: bool,
    }

    impl Read for Interrupting<'_> {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            if self.interrupt_next {
                self.interrupt_next = false;
                return Err(std::io::Error::from(std::io::ErrorKind::Interrupted));
            }
            self.interrupt_next = true;
            if self.pos >= self.data.len() {
                return Ok(0);
            }
            let n = buf.len().min(self.data.len() - self.pos).min(3);
            buf[..n].copy_from_slice(&self.data[self.pos..self.pos + n]);
            self.pos += n;
            Ok(n)
        }
    }

    #[test]
    fn interrupted_reads_are_retried() {
        let mut stream = Interrupting {
            data: b"POST /x HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello",
            pos: 0,
            interrupt_next: true,
        };
        let req = read_request(&mut stream).unwrap();
        assert_eq!(req.path, "/x");
        assert_eq!(req.body_str().unwrap(), "hello");
    }

    /// A reader that simulates a stalled client: times out immediately.
    struct Stalled;

    impl Read for Stalled {
        fn read(&mut self, _buf: &mut [u8]) -> std::io::Result<usize> {
            Err(std::io::Error::from(std::io::ErrorKind::WouldBlock))
        }
    }

    #[test]
    fn stalled_client_times_out() {
        assert!(matches!(
            read_request(&mut Stalled),
            Err(HttpError::Timeout)
        ));
    }

    #[test]
    fn truncated_body_is_malformed() {
        let raw = b"POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nhi";
        assert!(matches!(
            read_request(&mut &raw[..]),
            Err(HttpError::Malformed(_))
        ));
    }

    #[test]
    fn response_serialization() {
        let mut buf = Vec::new();
        Response::json("{\"ok\":true}").write_to(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 11"));
        assert!(text.ends_with("{\"ok\":true}"));
    }

    #[test]
    fn extra_headers_serialize_before_body() {
        let mut buf = Vec::new();
        Response::json("{}")
            .with_header("Cache-Status", "hit")
            .with_header("Retry-After", "1")
            .write_to(&mut buf)
            .unwrap();
        let text = String::from_utf8(buf).unwrap();
        let (head, body) = text.split_once("\r\n\r\n").unwrap();
        assert!(head.contains("Cache-Status: hit"));
        assert!(head.contains("Retry-After: 1"));
        assert_eq!(body, "{}");
    }

    #[test]
    fn status_503_has_reason() {
        let mut buf = Vec::new();
        Response::error(503, "busy").write_to(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.starts_with("HTTP/1.1 503 Service Unavailable\r\n"));
    }
}
