//! TCP accept loop with a fixed worker pool.

use crate::app::App;
use crate::http::{read_request, HttpError, Response};
use crossbeam::channel;
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;
use std::thread;

/// A running HTTP server.
pub struct Server {
    /// Bound local address (useful with port 0).
    pub addr: std::net::SocketAddr,
    shutdown: channel::Sender<()>,
    accept_thread: Option<thread::JoinHandle<()>>,
}

/// Starts the server on `addr` (e.g. `127.0.0.1:0`) with `workers` handler
/// threads. Returns once the socket is bound and accepting.
pub fn serve(app: App, addr: &str, workers: usize) -> std::io::Result<Server> {
    let listener = TcpListener::bind(addr)?;
    let local = listener.local_addr()?;
    let app = Arc::new(app);
    let (tx, rx) = channel::unbounded::<TcpStream>();
    for _ in 0..workers.max(1) {
        let rx = rx.clone();
        let app = Arc::clone(&app);
        thread::spawn(move || {
            while let Ok(mut stream) = rx.recv() {
                handle_connection(&app, &mut stream);
            }
        });
    }
    let (shutdown_tx, shutdown_rx) = channel::bounded::<()>(1);
    let accept_thread = thread::spawn(move || {
        // Transient accept errors (signal interruptions, aborted handshakes,
        // transient resource pressure) are retried with exponential backoff
        // instead of killing the listener.
        let mut backoff_ms: u64 = 1;
        loop {
            if shutdown_rx.try_recv().is_ok() {
                break;
            }
            match listener.accept() {
                Ok((s, _)) => {
                    backoff_ms = 1;
                    let _ = tx.send(s);
                }
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock
                            | std::io::ErrorKind::Interrupted
                            | std::io::ErrorKind::TimedOut
                            | std::io::ErrorKind::ConnectionAborted
                            | std::io::ErrorKind::ConnectionReset
                    ) =>
                {
                    thread::sleep(std::time::Duration::from_millis(backoff_ms));
                    backoff_ms = (backoff_ms * 2).min(100);
                }
                Err(_) => break,
            }
        }
    });
    Ok(Server {
        addr: local,
        shutdown: shutdown_tx,
        accept_thread: Some(accept_thread),
    })
}

/// Per-connection read and write deadlines: a stalled client (slow-loris)
/// gets a 408 and its handler thread back after at most this long.
const IO_TIMEOUT: std::time::Duration = std::time::Duration::from_secs(10);

fn handle_connection(app: &App, stream: &mut TcpStream) {
    let _ = stream.set_read_timeout(Some(IO_TIMEOUT));
    let _ = stream.set_write_timeout(Some(IO_TIMEOUT));
    let response = match read_request(stream) {
        Ok(req) => app.handle(&req),
        Err(HttpError::TooLarge) => Response::error(413, "payload too large"),
        Err(HttpError::HeaderTooLarge) => Response::error(431, "request line or headers too large"),
        Err(HttpError::Timeout) => Response::error(408, "request timed out"),
        Err(e) => Response::error(400, e.to_string()),
    };
    let _ = response.write_to(stream);
    let _ = stream.shutdown(std::net::Shutdown::Both);
}

impl Server {
    /// Signals shutdown; the accept loop exits on the next connection.
    pub fn stop(mut self) {
        let _ = self.shutdown.send(());
        // Poke the listener so `incoming()` yields once more.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}
