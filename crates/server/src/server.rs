//! TCP accept loop with a fixed worker pool, a bounded accept backlog and
//! panic isolation per request.

use crate::app::App;
use crate::http::{read_request_with_deadline, HttpError, Response};
use crossbeam::channel;
use sensormeta_obs as obs;
use std::net::{TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

/// A running HTTP server.
pub struct Server {
    /// Bound local address (useful with port 0).
    pub addr: std::net::SocketAddr,
    shutdown: channel::Sender<()>,
    accept_thread: Option<thread::JoinHandle<()>>,
}

/// Serving knobs for [`serve_with`]. [`ServeConfig::from_env`] reads the
/// `SENSORMETA_*` variables; tests pass explicit values.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeConfig {
    /// Handler threads (always at least 1).
    pub workers: usize,
    /// Wall-clock bound on reading one whole request; `None` disables it
    /// and leaves only the per-read socket timeout.
    pub read_deadline: Option<Duration>,
    /// Max connections queued for workers before the accept loop sheds
    /// with an immediate 503 (`0` = unbounded).
    pub backlog: usize,
}

/// Default wall-clock bound on reading one request (`SENSORMETA_READ_DEADLINE_MS`).
const DEFAULT_READ_DEADLINE: Duration = Duration::from_millis(5000);

/// Default accept-backlog bound (`SENSORMETA_ACCEPT_BACKLOG`).
const DEFAULT_ACCEPT_BACKLOG: usize = 1024;

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 4,
            read_deadline: Some(DEFAULT_READ_DEADLINE),
            backlog: DEFAULT_ACCEPT_BACKLOG,
        }
    }
}

impl ServeConfig {
    /// Reads `SENSORMETA_READ_DEADLINE_MS` (`0` disables) and
    /// `SENSORMETA_ACCEPT_BACKLOG` (`0` = unbounded); unset or unparsable
    /// values fall back to the defaults.
    pub fn from_env() -> ServeConfig {
        ServeConfig {
            workers: 4,
            read_deadline: parse_read_deadline(
                std::env::var("SENSORMETA_READ_DEADLINE_MS").ok().as_deref(),
            ),
            backlog: parse_backlog(std::env::var("SENSORMETA_ACCEPT_BACKLOG").ok().as_deref()),
        }
    }
}

fn parse_read_deadline(raw: Option<&str>) -> Option<Duration> {
    match raw.map(|s| s.trim().parse::<u64>()) {
        Some(Ok(0)) => None,
        Some(Ok(ms)) => Some(Duration::from_millis(ms)),
        Some(Err(_)) | None => Some(DEFAULT_READ_DEADLINE),
    }
}

fn parse_backlog(raw: Option<&str>) -> usize {
    match raw.map(|s| s.trim().parse::<usize>()) {
        Some(Ok(n)) => n,
        Some(Err(_)) | None => DEFAULT_ACCEPT_BACKLOG,
    }
}

/// Starts the server on `addr` (e.g. `127.0.0.1:0`) with `workers` handler
/// threads and the remaining knobs from the environment. Returns once the
/// socket is bound and accepting.
pub fn serve(app: App, addr: &str, workers: usize) -> std::io::Result<Server> {
    let cfg = ServeConfig {
        workers,
        ..ServeConfig::from_env()
    };
    serve_with(app, addr, cfg)
}

/// [`serve`] with explicit knobs.
pub fn serve_with(app: App, addr: &str, cfg: ServeConfig) -> std::io::Result<Server> {
    let listener = TcpListener::bind(addr)?;
    let local = listener.local_addr()?;
    let app = Arc::new(app);
    let (tx, rx) = channel::unbounded::<TcpStream>();
    // The channel shim cannot block producers, so the backlog bound is an
    // explicit gauge: accept increments, a worker decrements on pickup.
    let queued = Arc::new(AtomicUsize::new(0));
    for _ in 0..cfg.workers.max(1) {
        let rx = rx.clone();
        let app = Arc::clone(&app);
        let queued = Arc::clone(&queued);
        let read_deadline = cfg.read_deadline;
        thread::spawn(move || {
            while let Ok(mut stream) = rx.recv() {
                queued.fetch_sub(1, Ordering::AcqRel);
                handle_connection(&app, &mut stream, read_deadline);
            }
        });
    }
    let (shutdown_tx, shutdown_rx) = channel::bounded::<()>(1);
    let backlog = cfg.backlog;
    let accept_thread = thread::spawn(move || {
        // Transient accept errors (signal interruptions, aborted handshakes,
        // transient resource pressure) are retried with exponential backoff
        // instead of killing the listener.
        let mut backoff_ms: u64 = 1;
        loop {
            if shutdown_rx.try_recv().is_ok() {
                break;
            }
            match listener.accept() {
                Ok((mut s, _)) => {
                    backoff_ms = 1;
                    if backlog != 0 && queued.load(Ordering::Acquire) >= backlog {
                        // Shed at the door: queueing behind saturated
                        // workers would just time the client out later.
                        obs::counter("http_accept_shed_total").inc();
                        let _ = s.set_write_timeout(Some(Duration::from_secs(1)));
                        let _ = Response::error(503, "server backlog full")
                            .with_header("Retry-After", "1")
                            .write_to(&mut s);
                        let _ = s.shutdown(std::net::Shutdown::Both);
                    } else {
                        queued.fetch_add(1, Ordering::AcqRel);
                        let _ = tx.send(s);
                    }
                }
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock
                            | std::io::ErrorKind::Interrupted
                            | std::io::ErrorKind::TimedOut
                            | std::io::ErrorKind::ConnectionAborted
                            | std::io::ErrorKind::ConnectionReset
                    ) =>
                {
                    thread::sleep(std::time::Duration::from_millis(backoff_ms));
                    backoff_ms = (backoff_ms * 2).min(100);
                }
                Err(_) => break,
            }
        }
    });
    Ok(Server {
        addr: local,
        shutdown: shutdown_tx,
        accept_thread: Some(accept_thread),
    })
}

/// Per-read socket timeout: bounds each individual stall. The overall
/// read deadline bounds the sum (slow-loris protection).
const IO_TIMEOUT: std::time::Duration = std::time::Duration::from_secs(10);

fn handle_connection(app: &App, stream: &mut TcpStream, read_deadline: Option<Duration>) {
    // Cap the per-read stall by the overall read budget so one silent
    // client can't hold the thread for a full IO_TIMEOUT past its deadline.
    let per_read = read_deadline.map_or(IO_TIMEOUT, |d| {
        d.min(IO_TIMEOUT).max(Duration::from_millis(1))
    });
    let _ = stream.set_read_timeout(Some(per_read));
    let _ = stream.set_write_timeout(Some(IO_TIMEOUT));
    let deadline = read_deadline.map(|d| Instant::now() + d);
    let response = match read_request_with_deadline(stream, deadline) {
        // A handler panic (a bug, or an injected chaos panic) must cost
        // exactly one 500, not a worker thread.
        Ok(req) => match catch_unwind(AssertUnwindSafe(|| app.handle(&req))) {
            Ok(resp) => resp,
            Err(_) => {
                obs::counter("http_handler_panics_total").inc();
                Response::error(500, "internal server error")
            }
        },
        Err(HttpError::TooLarge) => Response::error(413, "payload too large"),
        Err(HttpError::HeaderTooLarge) => Response::error(431, "request line or headers too large"),
        Err(HttpError::Timeout) => Response::error(408, "request timed out"),
        Err(e) => Response::error(400, e.to_string()),
    };
    let _ = response.write_to(stream);
    let _ = stream.shutdown(std::net::Shutdown::Both);
}

impl Server {
    /// Signals shutdown; the accept loop exits on the next connection.
    pub fn stop(mut self) {
        let _ = self.shutdown.send(());
        // Poke the listener so `incoming()` yields once more.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serve_knob_parsing() {
        assert_eq!(parse_read_deadline(None), Some(DEFAULT_READ_DEADLINE));
        assert_eq!(
            parse_read_deadline(Some("250")),
            Some(Duration::from_millis(250))
        );
        assert_eq!(parse_read_deadline(Some("0")), None, "0 disables");
        assert_eq!(
            parse_read_deadline(Some("nope")),
            Some(DEFAULT_READ_DEADLINE)
        );
        assert_eq!(parse_backlog(None), DEFAULT_ACCEPT_BACKLOG);
        assert_eq!(parse_backlog(Some("8")), 8);
        assert_eq!(parse_backlog(Some("0")), 0, "0 means unbounded");
        assert_eq!(parse_backlog(Some("many")), DEFAULT_ACCEPT_BACKLOG);
    }
}
