//! TCP accept loop with a fixed worker pool.

use crate::app::App;
use crate::http::{read_request, HttpError, Response};
use crossbeam::channel;
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;
use std::thread;

/// A running HTTP server.
pub struct Server {
    /// Bound local address (useful with port 0).
    pub addr: std::net::SocketAddr,
    shutdown: channel::Sender<()>,
    accept_thread: Option<thread::JoinHandle<()>>,
}

/// Starts the server on `addr` (e.g. `127.0.0.1:0`) with `workers` handler
/// threads. Returns once the socket is bound and accepting.
pub fn serve(app: App, addr: &str, workers: usize) -> std::io::Result<Server> {
    let listener = TcpListener::bind(addr)?;
    let local = listener.local_addr()?;
    let app = Arc::new(app);
    let (tx, rx) = channel::unbounded::<TcpStream>();
    for _ in 0..workers.max(1) {
        let rx = rx.clone();
        let app = Arc::clone(&app);
        thread::spawn(move || {
            while let Ok(mut stream) = rx.recv() {
                handle_connection(&app, &mut stream);
            }
        });
    }
    let (shutdown_tx, shutdown_rx) = channel::bounded::<()>(1);
    let accept_thread = thread::spawn(move || {
        for stream in listener.incoming() {
            if shutdown_rx.try_recv().is_ok() {
                break;
            }
            match stream {
                Ok(s) => {
                    let _ = tx.send(s);
                }
                Err(_) => break,
            }
        }
    });
    Ok(Server {
        addr: local,
        shutdown: shutdown_tx,
        accept_thread: Some(accept_thread),
    })
}

fn handle_connection(app: &App, stream: &mut TcpStream) {
    let _ = stream.set_read_timeout(Some(std::time::Duration::from_secs(10)));
    let response = match read_request(stream) {
        Ok(req) => app.handle(&req),
        Err(HttpError::TooLarge) => Response::error(413, "payload too large"),
        Err(e) => Response::error(400, e.to_string()),
    };
    let _ = response.write_to(stream);
    let _ = stream.shutdown(std::net::Shutdown::Both);
}

impl Server {
    /// Signals shutdown; the accept loop exits on the next connection.
    pub fn stop(mut self) {
        let _ = self.shutdown.send(());
        // Poke the listener so `incoming()` yields once more.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}
