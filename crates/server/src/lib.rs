//! # sensormeta-server
//!
//! The demo web application of the paper's Section V: an HTTP/1.1 server
//! written directly on `std::net` exposing the advanced search interface
//! (keyword + structured conditions + autocomplete), per-page views, the
//! bulk-loading interface, live visualizations (bar, pie, clustered map,
//! association graph, hypergraph) and real-time tag clouds.
//!
//! Start one with [`serve`]; see `examples/demo_server.rs` at the workspace
//! root for an end-to-end run over the synthetic Swiss-Experiment corpus.

#![warn(missing_docs)]

pub mod app;
pub mod http;
pub mod server;

pub use app::{App, AppConfig};
pub use http::{parse_query, url_decode, url_encode, Request, Response};
pub use server::{serve, serve_with, ServeConfig, Server};
