//! Overload behavior at the socket layer: slow-loris and partial-write
//! clients must not starve healthy clients past their deadline, and
//! admission control must shed with an honest `Retry-After`.
//!
//! One test function: the chaos plan is process-global.

use sensormeta_query::QueryEngine;
use sensormeta_resil::chaos::{self, Fault, FaultKind};
use sensormeta_resil::BreakerConfig;
use sensormeta_server::{parse_query, serve_with, App, AppConfig, Request, ServeConfig};
use sensormeta_smr::{PageDraft, Smr};
use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::thread;
use std::time::{Duration, Instant};

fn seeded_engine() -> QueryEngine {
    let mut smr = Smr::new();
    smr.create_page(
        PageDraft::new("Deployment:wfj_temp", "Deployment")
            .body("temperature sensor on the snow surface")
            .annotate("measuresQuantity", "temperature"),
    )
    .expect("seed page");
    QueryEngine::open(smr).expect("build engine")
}

fn config() -> AppConfig {
    AppConfig {
        cache_wait: Some(Duration::from_millis(200)),
        deadline: Some(Duration::from_secs(2)),
        max_inflight: 1,
        breaker: BreakerConfig::default(),
        ..AppConfig::default()
    }
}

fn req(method: &str, target: &str) -> Request {
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p, parse_query(q)),
        None => (target, BTreeMap::new()),
    };
    Request {
        method: method.into(),
        path: path.into(),
        query,
        headers: BTreeMap::new(),
        body: Vec::new(),
    }
}

fn read_status(stream: &mut TcpStream) -> u16 {
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("read response");
    let head = String::from_utf8_lossy(&raw);
    head.split_whitespace()
        .nth(1)
        .and_then(|c| c.parse().ok())
        .unwrap_or_else(|| panic!("no status line in {head:?}"))
}

fn get_status(addr: SocketAddr, target: &str) -> u16 {
    let mut s = TcpStream::connect(addr).expect("connect");
    s.set_read_timeout(Some(Duration::from_secs(20)))
        .expect("read timeout");
    s.write_all(
        format!("GET {target} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n").as_bytes(),
    )
    .expect("send request");
    read_status(&mut s)
}

#[test]
fn stalled_clients_do_not_starve_healthy_ones() {
    chaos::clear();

    // ---- Phase 1: admission shed (in-process, deterministic) --------------
    // One permit; a slow request holds it while a second arrives.
    let app = App::with_config(seeded_engine(), config());
    chaos::install(
        "query_search",
        Fault::always(FaultKind::Latency(Duration::from_millis(500))),
    );
    let shed = thread::scope(|s| {
        let slow = s.spawn(|| app.handle(&req("GET", "/search?q=alpha")));
        thread::sleep(Duration::from_millis(150));
        let shed = app.handle(&req("GET", "/search?q=beta"));
        // Probes stay exempt from admission even at capacity.
        assert_eq!(app.handle(&req("GET", "/healthz")).status, 200);
        assert_eq!(slow.join().expect("slow request").status, 200);
        shed
    });
    chaos::clear();
    assert_eq!(shed.status, 429, "over-capacity requests are shed");
    let retry_after = shed
        .headers
        .iter()
        .find(|(n, _)| n.eq_ignore_ascii_case("Retry-After"))
        .map(|(_, v)| v.as_str())
        .expect("shed replies carry Retry-After");
    let secs: u64 = retry_after.parse().expect("numeric Retry-After");
    assert!((1..=30).contains(&secs), "Retry-After {secs} out of range");
    // The permit was released: the next request is admitted.
    assert_eq!(app.handle(&req("GET", "/search?q=beta")).status, 200);

    // ---- Phase 2: slow-loris over real sockets ----------------------------
    // More stalled connections than worker threads, with a short read
    // deadline: every stalled connection gets a 408 and its thread back,
    // and a healthy client is served well within its own patience.
    let server = serve_with(
        App::with_config(seeded_engine(), config()),
        "127.0.0.1:0",
        ServeConfig {
            workers: 2,
            read_deadline: Some(Duration::from_millis(300)),
            backlog: 0,
        },
    )
    .expect("bind server");
    let addr = server.addr;

    let mut loris = Vec::new();
    for _ in 0..4 {
        let mut s = TcpStream::connect(addr).expect("connect loris");
        s.set_read_timeout(Some(Duration::from_secs(20)))
            .expect("read timeout");
        // A request line fragment, then silence: the server must not wait
        // for the rest beyond its read deadline.
        s.write_all(b"GET /healthz HT").expect("partial write");
        loris.push(s);
    }
    // A partial-write client that does finish (slowly, but within the
    // deadline) must still be served.
    let mut dribble = TcpStream::connect(addr).expect("connect dribble");
    dribble
        .set_read_timeout(Some(Duration::from_secs(20)))
        .expect("read timeout");
    dribble
        .write_all(b"GET /healthz HTTP/1.1\r\n")
        .expect("first chunk");

    let started = Instant::now();
    let healthy = get_status(addr, "/healthz");
    let waited = started.elapsed();
    assert_eq!(healthy, 200, "healthy client served despite stalled peers");
    assert!(
        waited < Duration::from_secs(2),
        "healthy client starved for {waited:?}"
    );

    thread::sleep(Duration::from_millis(100));
    dribble
        .write_all(b"Host: t\r\nConnection: close\r\n\r\n")
        .expect("second chunk");
    assert_eq!(
        read_status(&mut dribble),
        200,
        "slow-but-live client served"
    );

    for mut s in loris {
        assert_eq!(read_status(&mut s), 408, "stalled connections time out");
    }
    assert_eq!(get_status(addr, "/healthz"), 200, "pool intact afterwards");
    server.stop();
}
