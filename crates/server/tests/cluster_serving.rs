//! Serving-topology tests: sharded scatter-gather behind `/search`,
//! replica-backed reads, `/cluster` introspection and the cluster metrics
//! exported through `/metrics`.

use sensormeta_cluster::Topology;
use sensormeta_query::QueryEngine;
use sensormeta_server::{parse_query, App, AppConfig, Request, Response};
use sensormeta_smr::{PageDraft, Smr};
use sensormeta_workload::{generate_corpus, CorpusConfig};
use std::collections::BTreeMap;
use std::time::Duration;

fn req(method: &str, target: &str) -> Request {
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p, parse_query(q)),
        None => (target, BTreeMap::new()),
    };
    Request {
        method: method.into(),
        path: path.into(),
        query,
        headers: BTreeMap::new(),
        body: Vec::new(),
    }
}

fn get(app: &App, target: &str) -> Response {
    app.handle(&req("GET", target))
}

fn corpus_engine(scale: usize, seed: u64) -> QueryEngine {
    let pages = generate_corpus(&CorpusConfig {
        institutions: scale,
        seed,
        ..CorpusConfig::default()
    });
    let mut smr = Smr::new();
    let report = smr.bulk_load(pages.into_iter().map(|p| {
        let mut d = PageDraft::new(p.title, p.namespace).body(p.body);
        d.annotations = p.annotations;
        d.links = p.links;
        d.tags = p.tags;
        d
    }));
    assert!(report.errors.is_empty(), "{:?}", report.errors);
    QueryEngine::open(smr).expect("engine build")
}

fn config_with(topology: Topology) -> AppConfig {
    AppConfig {
        topology,
        ..AppConfig::default()
    }
}

fn body_str(resp: &Response) -> &str {
    std::str::from_utf8(&resp.body).expect("utf8 body")
}

/// `/search` through a 4-shard app returns byte-identical JSON to the
/// unsharded app over the same corpus.
#[test]
fn sharded_search_matches_unsharded() {
    let engine = corpus_engine(4, 2011);
    let single = App::with_config(engine.clone_reader(), config_with(Topology::default()));
    let sharded = App::with_config(
        engine,
        config_with(Topology {
            shards: 4,
            ..Topology::default()
        }),
    );
    for target in [
        "/search?q=temperature+sensor",
        "/search?q=wind&attribute=hasVendor&op=eq&value=Vaisala",
        "/search?attribute=hasElevation&op=gt&value=1500",
        "/search?q=snow&namespace=Deployment&limit=5",
    ] {
        let a = get(&single, target);
        let b = get(&sharded, target);
        assert_eq!(a.status, 200, "{target}: {}", body_str(&a));
        assert_eq!(b.status, 200, "{target}: {}", body_str(&b));
        assert_eq!(body_str(&a), body_str(&b), "{target} diverged");
        assert!(
            b.headers
                .iter()
                .any(|(k, v)| k == "X-Cluster-Shards" && v == "4"),
            "missing shard header on {target}"
        );
    }
    // Empty form is still a client error on the scattered path.
    assert_eq!(get(&sharded, "/search").status, 400);
}

/// A commit through the sharded app republises the shard set: the next
/// scattered read sees the new page.
#[test]
fn sharded_app_serves_committed_writes() {
    let engine = corpus_engine(2, 7);
    let app = App::with_config(
        engine,
        config_with(Topology {
            shards: 2,
            ..Topology::default()
        }),
    );
    app.commit_engine(|e| {
        e.smr_mut()
            .create_page(
                PageDraft::new("Deployment:freshly_committed", "Deployment")
                    .body("zumsteinspitze borehole thermistor string"),
            )
            .expect("create page");
        e.rebuild().expect("rebuild");
        Ok::<(), std::convert::Infallible>(())
    })
    .expect("commit");
    let resp = get(&app, "/search?q=zumsteinspitze+borehole");
    assert_eq!(resp.status, 200);
    assert!(
        body_str(&resp).contains("Deployment:freshly_committed"),
        "scattered read missed the committed page: {}",
        body_str(&resp)
    );
}

fn scratch_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "sensormeta_cluster_serving_{tag}_{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

/// Satellite: replica topology surfaces through `/cluster` and exports
/// `cluster_replica_lag_seq` (plus shard fan-out counters) via `/metrics`.
#[test]
fn cluster_metrics_and_status_are_exported() {
    let dir = scratch_dir("metrics");
    let snap = dir.join("repo.snap");
    let (mut smr, _) = Smr::open_durable(&snap).expect("durable open");
    for p in generate_corpus(&CorpusConfig {
        institutions: 1,
        seed: 3,
        ..CorpusConfig::default()
    }) {
        let mut d = PageDraft::new(p.title, p.namespace).body(p.body);
        d.annotations = p.annotations;
        d.tags = p.tags;
        smr.create_page(d).expect("create");
    }
    let engine = QueryEngine::open(smr).expect("engine");
    let mut app = App::with_config(
        engine,
        config_with(Topology {
            replicas: 1,
            poll_interval: Duration::from_millis(5),
            ..Topology::default()
        }),
    );
    let attached = app.attach_replicas(&snap).expect("attach replicas");
    assert_eq!(attached, 1);

    // /cluster names the replica and the staleness bound.
    let status = get(&app, "/cluster");
    assert_eq!(status.status, 200);
    let json: serde_json::Value = serde_json::from_str(body_str(&status)).expect("json");
    assert_eq!(json["replicas"][0]["name"], "r0");
    assert_eq!(json["stalenessBound"], 64);

    // A search drives the routed read path (replica or primary, depending
    // on clock churn from parallel tests — either is a 200).
    assert_eq!(get(&app, "/search?q=temperature").status, 200);

    // The replica's tail loop publishes the lag gauge within a few polls.
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        let metrics = get(&app, "/metrics");
        assert_eq!(metrics.status, 200);
        if body_str(&metrics).contains("cluster_replica_lag_seq") {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "cluster_replica_lag_seq never appeared in /metrics"
        );
        std::thread::sleep(Duration::from_millis(10));
    }

    // Fan-out counters appear once a sharded app has served a scatter.
    let sharded = App::with_config(
        corpus_engine(1, 5),
        config_with(Topology {
            shards: 2,
            ..Topology::default()
        }),
    );
    assert_eq!(get(&sharded, "/search?q=sensor").status, 200);
    let metrics = get(&sharded, "/metrics");
    let body = body_str(&metrics);
    assert!(
        body.contains("cluster_shard_fanout_total"),
        "missing fan-out counter"
    );
    assert!(
        body.contains("cluster_searches_total"),
        "missing search counter"
    );

    let _ = std::fs::remove_dir_all(&dir);
}
