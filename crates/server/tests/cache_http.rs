//! HTTP surface of the shared result cache: `Cache-Status` headers on
//! search and tag-cloud routes, `?cache=bypass`, and `POST
//! /admin/cache/clear` dropping every namespace.
//!
//! Everything lives in ONE test function: the invalidation epochs are
//! process-global, so concurrent tests in the same binary could otherwise
//! bump them between a warm-up request and its `hit` assertion.

use sensormeta_query::QueryEngine;
use sensormeta_server::{parse_query, App, Request, Response};
use sensormeta_smr::{PageDraft, Smr};
use std::collections::BTreeMap;

fn req(method: &str, target: &str) -> Request {
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p, parse_query(q)),
        None => (target, BTreeMap::new()),
    };
    Request {
        method: method.into(),
        path: path.into(),
        query,
        headers: BTreeMap::new(),
        body: Vec::new(),
    }
}

fn header<'a>(resp: &'a Response, name: &str) -> Option<&'a str> {
    resp.headers
        .iter()
        .find(|(n, _)| n.eq_ignore_ascii_case(name))
        .map(|(_, v)| v.as_str())
}

fn cache_status(app: &App, target: &str) -> String {
    let resp = app.handle(&req("GET", target));
    assert_eq!(resp.status, 200, "GET {target}");
    header(&resp, "Cache-Status")
        .unwrap_or_else(|| panic!("GET {target}: no Cache-Status header"))
        .to_owned()
}

fn seeded_app() -> App {
    let mut smr = Smr::new();
    smr.create_page(
        PageDraft::new("Fieldsite:Weissfluhjoch", "Fieldsite")
            .body("alpine snow research site")
            .tag("snow"),
    )
    .unwrap();
    smr.create_page(
        PageDraft::new("Deployment:wfj_temp", "Deployment")
            .body("temperature sensor at weissfluhjoch")
            .annotate("measuresQuantity", "temperature")
            .link("Fieldsite:Weissfluhjoch")
            .tag("snow"),
    )
    .unwrap();
    App::new(QueryEngine::open(smr).unwrap())
}

#[test]
fn cache_status_headers_and_admin_clear() {
    let app = seeded_app();

    // Search: cold is a miss, identical repeat a hit, bypass never caches.
    assert_eq!(cache_status(&app, "/search?q=temperature"), "miss");
    assert_eq!(cache_status(&app, "/search?q=temperature"), "hit");
    assert_eq!(
        cache_status(&app, "/search?q=temperature&format=html"),
        "hit"
    );
    assert_eq!(
        cache_status(&app, "/search?q=temperature&cache=bypass"),
        "bypass"
    );
    assert_eq!(
        cache_status(&app, "/search?q=temperature"),
        "hit",
        "a bypassed request must not evict the cached result"
    );
    // A different form is a different key.
    assert_eq!(cache_status(&app, "/search?q=snow"), "miss");

    // Tag cloud: SVG and JSON share one cloud namespace.
    assert_eq!(cache_status(&app, "/tags"), "miss");
    assert_eq!(cache_status(&app, "/tags"), "hit");
    assert_eq!(cache_status(&app, "/tags.json"), "hit");

    // An empty form is a client error, never cached (no Cache-Status).
    let resp = app.handle(&req("GET", "/search"));
    assert_eq!(resp.status, 400);
    assert!(header(&resp, "Cache-Status").is_none());

    // Admin clear drops every namespace: both paths go cold again.
    let resp = app.handle(&req("POST", "/admin/cache/clear"));
    assert_eq!(resp.status, 200);
    let body: serde_json::Value =
        serde_json::from_str(std::str::from_utf8(&resp.body).expect("utf-8 body"))
            .expect("clear responds with JSON");
    assert_eq!(body["cleared"], serde_json::Value::Bool(true));
    assert_eq!(cache_status(&app, "/search?q=temperature"), "miss");
    assert_eq!(cache_status(&app, "/tags"), "miss");
    assert_eq!(cache_status(&app, "/search?q=temperature"), "hit");

    // Tagging a page bumps the tag-incidence epoch: clouds recompute, but
    // query results (which don't depend on the live tag store) stay warm.
    let resp = app.handle(&req("POST", "/tag?page=Fieldsite:Weissfluhjoch&tag=alpine"));
    assert_eq!(resp.status, 200);
    assert_eq!(cache_status(&app, "/tags"), "miss");
    assert_eq!(cache_status(&app, "/search?q=temperature"), "hit");

    // GET on the admin route stays a 404, POST elsewhere a 405.
    assert_eq!(app.handle(&req("GET", "/admin/cache/clear")).status, 404);
}
