//! Chaos harness: drives the real HTTP surface with injected latency,
//! errors and panics at the compute-layer checkpoint sites, asserting the
//! overload-protection invariants:
//!
//! - `/healthz` always answers;
//! - no request outlives its deadline by more than bounded slack;
//! - every stale serve is labeled (`Cache-Status: stale` + `Warning`);
//! - degraded bodies are byte-identical to a previously-correct response
//!   (no corrupt data escapes);
//! - a handler panic costs one 500, never a worker thread;
//! - the circuit breaker opens under persistent failure and recovers.
//!
//! Everything lives in ONE test function: the chaos plan, the invalidation
//! epochs and the breaker metrics are process-global.

use sensormeta_query::QueryEngine;
use sensormeta_resil::chaos::{self, Fault, FaultKind};
use sensormeta_resil::BreakerConfig;
use sensormeta_server::{serve_with, App, AppConfig, ServeConfig};
use sensormeta_smr::{PageDraft, Smr};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::{Arc, Barrier};
use std::thread;
use std::time::{Duration, Instant};

/// A parsed HTTP response from the wire.
struct Resp {
    status: u16,
    headers: Vec<(String, String)>,
    body: Vec<u8>,
}

impl Resp {
    fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }
}

fn send_raw(addr: SocketAddr, request: &[u8]) -> Resp {
    let mut s = TcpStream::connect(addr).expect("connect");
    s.set_read_timeout(Some(Duration::from_secs(20)))
        .expect("read timeout");
    s.set_write_timeout(Some(Duration::from_secs(20)))
        .expect("write timeout");
    s.write_all(request).expect("send request");
    let mut raw = Vec::new();
    s.read_to_end(&mut raw).expect("read response");
    parse_response(&raw)
}

fn parse_response(raw: &[u8]) -> Resp {
    let split = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .expect("header/body separator");
    let head = std::str::from_utf8(&raw[..split]).expect("utf-8 head");
    let mut lines = head.split("\r\n");
    let status_line = lines.next().expect("status line");
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|c| c.parse().ok())
        .expect("status code");
    let headers = lines
        .filter_map(|l| l.split_once(':'))
        .map(|(n, v)| (n.trim().to_owned(), v.trim().to_owned()))
        .collect();
    Resp {
        status,
        headers,
        body: raw[split + 4..].to_vec(),
    }
}

fn get(addr: SocketAddr, target: &str) -> Resp {
    send_raw(
        addr,
        format!("GET {target} HTTP/1.1\r\nHost: chaos\r\nConnection: close\r\n\r\n").as_bytes(),
    )
}

fn post(addr: SocketAddr, target: &str, content_type: &str, body: &str) -> Resp {
    send_raw(
        addr,
        format!(
            "POST {target} HTTP/1.1\r\nHost: chaos\r\nContent-Type: {content_type}\r\n\
             Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
            body.len()
        )
        .as_bytes(),
    )
}

fn seeded_app() -> App {
    let mut smr = Smr::new();
    smr.create_page(
        PageDraft::new("Fieldsite:Weissfluhjoch", "Fieldsite")
            .body("alpine snow research site")
            .tag("snow"),
    )
    .expect("seed page");
    smr.create_page(
        PageDraft::new("Deployment:wfj_temp", "Deployment")
            .body("temperature sensor at weissfluhjoch")
            .annotate("measuresQuantity", "temperature")
            .link("Fieldsite:Weissfluhjoch")
            .tag("snow"),
    )
    .expect("seed page");
    let cfg = AppConfig {
        cache_wait: Some(Duration::from_millis(300)),
        deadline: Some(Duration::from_millis(500)),
        max_inflight: 2,
        breaker: BreakerConfig {
            failure_threshold: 3,
            open_for: Duration::from_millis(600),
            half_open_probes: 1,
        },
        ..AppConfig::default()
    };
    App::with_config(QueryEngine::open(smr).expect("build engine"), cfg)
}

#[test]
fn chaos_harness_end_to_end() {
    chaos::clear();
    let server = serve_with(
        seeded_app(),
        "127.0.0.1:0",
        ServeConfig {
            workers: 8,
            read_deadline: Some(Duration::from_secs(2)),
            backlog: 0,
        },
    )
    .expect("bind server");
    let addr = server.addr;

    // ---- Phase 1: baseline ------------------------------------------------
    assert_eq!(get(addr, "/healthz").status, 200);
    let cold = get(addr, "/search?q=temperature");
    assert_eq!(cold.status, 200);
    assert_eq!(cold.header("Cache-Status"), Some("miss"));
    let warm = get(addr, "/search?q=temperature");
    assert_eq!(warm.status, 200);
    assert_eq!(warm.header("Cache-Status"), Some("hit"));
    assert!(
        warm.header("Warning").is_none(),
        "fresh serves carry no Warning"
    );
    let oracle = warm.body.clone();
    assert_eq!(get(addr, "/tags.json").status, 200);

    // ---- Phase 2: deadline propagation ------------------------------------
    // 700 ms of injected backend latency against a 500 ms budget: the
    // checkpoint right after the sleep trips and the request maps to 504.
    chaos::install(
        "query_search",
        Fault::always(FaultKind::Latency(Duration::from_millis(700))),
    );
    let started = Instant::now();
    let slow = get(addr, "/search?q=glacier");
    let elapsed = started.elapsed();
    assert_eq!(slow.status, 504, "deadline exceeded maps to 504");
    assert!(
        elapsed < Duration::from_secs(3),
        "request must not hang past its deadline (took {elapsed:?})"
    );
    // A cached entry answers instantly even while the backend is slow.
    let hit = get(addr, "/search?q=temperature");
    assert_eq!(hit.status, 200);
    assert_eq!(hit.header("Cache-Status"), Some("hit"));
    chaos::clear();
    // A success closes the failure streak before the breaker phases.
    assert_eq!(get(addr, "/search?q=glacier").status, 200);

    // ---- Phase 3: serve-stale degradation ---------------------------------
    // Mutate the corpus (epoch-stales the cached entry), then fail the
    // backend hard: stale-tolerant serving answers from the superseded
    // entry, labeled, byte-identical to the known-good response.
    let report = post(
        addr,
        "/bulkload",
        "application/jsonl",
        r#"{"title":"Deployment:new_temp","namespace":"Deployment","body":"second temperature sensor","annotations":[["measuresQuantity","temperature"]]}"#,
    );
    assert_eq!(report.status, 200);
    chaos::install("query_search", Fault::always(FaultKind::Error));
    let stale = get(addr, "/search?q=temperature");
    assert_eq!(stale.status, 200, "stale serve degrades, not fails");
    assert_eq!(stale.header("Cache-Status"), Some("stale"));
    assert!(
        stale.header("Warning").is_some(),
        "stale serves must carry a Warning header"
    );
    assert_eq!(
        stale.body, oracle,
        "degraded body must be the known-good bytes"
    );
    // A key with no stale holdover fails with a backend-class status.
    assert_eq!(get(addr, "/search?q=neverseen").status, 500);

    // ---- Phase 4: circuit breaker -----------------------------------------
    // Two more degraded serves reach the threshold of 3 consecutive
    // failures; the open breaker stops touching the backend but keeps
    // serving labeled stale answers, and sheds keys with no holdover.
    for _ in 0..2 {
        let r = get(addr, "/search?q=temperature");
        assert_eq!(r.status, 200);
        assert_eq!(r.header("Cache-Status"), Some("stale"));
    }
    let open_stale = get(addr, "/search?q=temperature");
    assert_eq!(open_stale.status, 200, "open breaker still serves stale");
    assert_eq!(open_stale.header("Cache-Status"), Some("stale"));
    assert!(open_stale.header("Warning").is_some());
    let shed = get(addr, "/search?q=neverseen");
    assert_eq!(shed.status, 503, "open breaker sheds keys with no holdover");
    assert!(
        shed.header("Retry-After").is_some(),
        "shed replies say when to retry"
    );
    assert_eq!(get(addr, "/healthz").status, 200);

    // Backend recovers; after the cooldown a half-open probe recomputes the
    // real answer (the retained entry is replaced, labeled `stale` by the
    // cache's recompute semantics, but carries no Warning and fresh bytes).
    chaos::clear();
    thread::sleep(Duration::from_millis(700));
    let recovered = get(addr, "/search?q=temperature");
    assert_eq!(recovered.status, 200);
    assert!(
        recovered.header("Warning").is_none(),
        "fresh recompute, no Warning"
    );
    assert_ne!(recovered.body, oracle, "recompute must see the mutation");
    assert!(
        String::from_utf8_lossy(&recovered.body).contains("new_temp"),
        "fresh body includes the bulk-loaded page"
    );
    assert_eq!(
        get(addr, "/search?q=temperature").header("Cache-Status"),
        Some("hit"),
        "recovery re-warms the cache"
    );

    // ---- Phase 5: panic isolation -----------------------------------------
    chaos::install("query_search", Fault::always(FaultKind::Panic));
    let crashed = get(addr, "/search?q=panicprobe");
    assert_eq!(crashed.status, 500, "a handler panic costs exactly one 500");
    assert_eq!(
        get(addr, "/healthz").status,
        200,
        "healthz survives the panic"
    );
    let metrics = get(addr, "/metrics.json");
    assert_eq!(metrics.status, 200);
    assert!(
        String::from_utf8_lossy(&metrics.body).contains("http_handler_panics_total"),
        "panics are counted"
    );
    chaos::clear();
    assert_eq!(
        get(addr, "/search?q=panicprobe").status,
        200,
        "the worker pool survives panics"
    );

    // ---- Phase 6: concurrent storm ----------------------------------------
    // Mixed latency + error injection under more clients than admission
    // permits. Every request must complete with a well-defined status
    // within bounded time; Warning must imply a stale label; /healthz must
    // stay green throughout.
    chaos::install(
        "query_search",
        Fault {
            kind: FaultKind::Latency(Duration::from_millis(100)),
            every: 3,
            offset: 0,
        },
    );
    chaos::install(
        "query_search",
        Fault {
            kind: FaultKind::Error,
            every: 4,
            offset: 1,
        },
    );
    let clients = 12;
    let per_client = 4;
    let barrier = Arc::new(Barrier::new(clients));
    let mut handles = Vec::new();
    for c in 0..clients {
        let barrier = Arc::clone(&barrier);
        handles.push(thread::spawn(move || {
            barrier.wait();
            let mut out = Vec::new();
            for i in 0..per_client {
                let started = Instant::now();
                let r = get(addr, &format!("/search?q=storm{c}x{i}"));
                let warned = r.header("Warning").is_some();
                let label = r.header("Cache-Status").map(str::to_owned);
                out.push((r.status, warned, label, started.elapsed()));
            }
            out
        }));
    }
    for _ in 0..6 {
        assert_eq!(
            get(addr, "/healthz").status,
            200,
            "healthz green under storm"
        );
        thread::sleep(Duration::from_millis(50));
    }
    let mut statuses = Vec::new();
    for h in handles {
        for (status, warned, label, elapsed) in h.join().expect("client thread") {
            assert!(
                matches!(status, 200 | 429 | 500 | 503 | 504),
                "unexpected status {status} under storm"
            );
            assert!(
                elapsed < Duration::from_secs(5),
                "request outlived its deadline bound: {elapsed:?}"
            );
            if warned {
                assert_eq!(
                    label.as_deref(),
                    Some("stale"),
                    "Warning must only accompany labeled stale serves"
                );
            }
            statuses.push(status);
        }
    }
    assert!(statuses.contains(&200), "some storm requests must succeed");
    chaos::clear();

    // ---- Phase 7: calm after the storm ------------------------------------
    let calm = get(addr, "/search?q=temperature");
    assert_eq!(calm.status, 200);
    assert_eq!(get(addr, "/healthz").status, 200);
    server.stop();
}
