//! End-to-end HTTP tests: a real server on a real socket, driven by raw
//! TCP clients.

use sensormeta_query::QueryEngine;
use sensormeta_server::{serve, url_encode, App, Server};
use sensormeta_smr::{PageDraft, Smr};
use std::io::{Read, Write};
use std::net::TcpStream;

fn start() -> Server {
    let mut smr = Smr::new();
    smr.create_page(
        PageDraft::new("Fieldsite:Weissfluhjoch", "Fieldsite")
            .body("alpine snow research site")
            .annotate("hasElevation", "2693")
            .annotate("hasLatitude", "46.83")
            .annotate("hasLongitude", "9.81")
            .tag("snow")
            .tag("alpine"),
    )
    .unwrap();
    smr.create_page(
        PageDraft::new("Deployment:wfj_temp", "Deployment")
            .body("temperature sensor at weissfluhjoch")
            .annotate("measuresQuantity", "temperature")
            .link("Fieldsite:Weissfluhjoch")
            .tag("snow"),
    )
    .unwrap();
    let engine = QueryEngine::open(smr).unwrap();
    serve(App::new(engine), "127.0.0.1:0", 4).unwrap()
}

fn get(server: &Server, path: &str) -> (u16, String) {
    request(server, &format!("GET {path} HTTP/1.1\r\nHost: t\r\n\r\n"))
}

fn request(server: &Server, raw: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(server.addr).unwrap();
    stream.write_all(raw.as_bytes()).unwrap();
    let mut buf = String::new();
    stream.read_to_string(&mut buf).unwrap();
    let status: u16 = buf
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("status line");
    let body = buf
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_owned())
        .unwrap_or_default();
    (status, body)
}

#[test]
fn home_page_lists_corpus() {
    let server = start();
    let (status, body) = get(&server, "/");
    assert_eq!(status, 200);
    assert!(body.contains("2 metadata pages"));
    assert!(body.contains("<form"));
    server.stop();
}

#[test]
fn search_json_and_html() {
    let server = start();
    let (status, body) = get(&server, "/search?q=temperature");
    assert_eq!(status, 200);
    let v: serde_json::Value = serde_json::from_str(&body).unwrap();
    assert_eq!(v["items"][0]["title"], "Deployment:wfj_temp");
    let (status, html) = get(&server, "/search?q=temperature&format=html");
    assert_eq!(status, 200);
    assert!(html.contains("<table"));
    assert!(html.contains("Deployment:wfj_temp"));
    server.stop();
}

#[test]
fn search_with_condition_and_map() {
    let server = start();
    let (status, body) = get(&server, "/search?attribute=hasElevation&op=gt&value=2000");
    assert_eq!(status, 200);
    let v: serde_json::Value = serde_json::from_str(&body).unwrap();
    assert_eq!(v["items"][0]["title"], "Fieldsite:Weissfluhjoch");
    let (status, svg) = get(&server, "/viz/map?attribute=hasElevation&op=gt&value=2000");
    assert_eq!(status, 200);
    assert!(svg.contains("<svg"));
    assert!(svg.contains("<circle"));
    server.stop();
}

#[test]
fn autocomplete_endpoint() {
    let server = start();
    let (status, body) = get(&server, "/autocomplete?prefix=Field");
    assert_eq!(status, 200);
    let v: serde_json::Value = serde_json::from_str(&body).unwrap();
    assert!(v
        .as_array()
        .unwrap()
        .iter()
        .any(|s| s["suggestion"].as_str().unwrap().contains("fieldsite")));
    server.stop();
}

#[test]
fn page_view_and_missing_page() {
    let server = start();
    let path = format!("/page/{}", url_encode("Fieldsite:Weissfluhjoch"));
    let (status, body) = get(&server, &path);
    assert_eq!(status, 200);
    assert!(body.contains("hasElevation"));
    assert!(body.contains("2693"));
    let (status, _) = get(&server, "/page/Nothing:here");
    assert_eq!(status, 404);
    server.stop();
}

#[test]
fn tag_cloud_svg_and_json() {
    let server = start();
    let (status, svg) = get(&server, "/tags");
    assert_eq!(status, 200);
    assert!(svg.contains("snow"));
    let (status, body) = get(&server, "/tags.json");
    assert_eq!(status, 200);
    let v: serde_json::Value = serde_json::from_str(&body).unwrap();
    let tags: Vec<&str> = v
        .as_array()
        .unwrap()
        .iter()
        .map(|e| e["tag"].as_str().unwrap())
        .collect();
    assert!(tags.contains(&"snow"));
    assert!(tags.contains(&"alpine"));
    server.stop();
}

#[test]
fn bar_and_pie_charts() {
    let server = start();
    for path in [
        "/viz/bar?attribute=measuresQuantity",
        "/viz/pie?attribute=measuresQuantity",
    ] {
        let (status, svg) = get(&server, path);
        assert_eq!(status, 200, "{path}");
        assert!(svg.contains("temperature"), "{path}");
    }
    server.stop();
}

#[test]
fn graph_and_hypergraph() {
    let server = start();
    let (status, svg) = get(&server, "/viz/graph");
    assert_eq!(status, 200);
    assert!(svg.contains("marker-end"), "directed arcs rendered");
    let (status, svg) = get(&server, "/viz/hypergraph");
    assert_eq!(status, 200);
    assert!(svg.contains("Hypergraph around"));
    let (status, _) = get(&server, "/viz/hypergraph?focus=Missing");
    assert_eq!(status, 404);
    server.stop();
}

#[test]
fn bulkload_updates_everything() {
    let server = start();
    let line = serde_json::json!({
        "title": "Deployment:new_wind",
        "namespace": "Deployment",
        "body": "a brand new anemometer",
        "tags": ["wind"],
    })
    .to_string();
    let (status, body) = request(
        &server,
        &format!(
            "POST /bulkload HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{line}",
            line.len()
        ),
    );
    assert_eq!(status, 200);
    let v: serde_json::Value = serde_json::from_str(&body).unwrap();
    assert_eq!(v["created"], 1);
    // Searchable immediately (engine rebuilt).
    let (_, body) = get(&server, "/search?q=anemometer");
    let v: serde_json::Value = serde_json::from_str(&body).unwrap();
    assert_eq!(v["items"][0]["title"], "Deployment:new_wind");
    // Tag store refreshed too.
    let (_, tags) = get(&server, "/tags.json");
    assert!(tags.contains("wind"));
    server.stop();
}

#[test]
fn user_tagging_endpoint() {
    let server = start();
    let (status, body) = request(
        &server,
        "POST /tag?page=Fieldsite:Weissfluhjoch&tag=avalanche HTTP/1.1\r\nHost: t\r\nContent-Length: 0\r\n\r\n",
    );
    assert_eq!(status, 200);
    assert!(body.contains("true"));
    let (_, tags) = get(&server, "/tags.json");
    assert!(tags.contains("avalanche"));
    server.stop();
}

#[test]
fn recommend_endpoint_and_errors() {
    let server = start();
    let (status, _) = get(&server, "/recommend?title=Deployment:wfj_temp");
    assert_eq!(status, 200);
    let (status, _) = get(&server, "/recommend");
    assert_eq!(status, 400);
    let (status, _) = get(&server, "/definitely/not/a/route");
    assert_eq!(status, 404);
    let (status, _) = request(&server, "DELETE / HTTP/1.1\r\nHost: t\r\n\r\n");
    assert_eq!(status, 405);
    server.stop();
}

#[test]
fn empty_search_is_bad_request() {
    let server = start();
    let (status, _) = get(&server, "/search");
    assert_eq!(status, 400);
    server.stop();
}

#[test]
fn concurrent_requests() {
    let server = start();
    let addr = server.addr;
    let handles: Vec<_> = (0..8)
        .map(|_| {
            std::thread::spawn(move || {
                let mut stream = TcpStream::connect(addr).unwrap();
                stream
                    .write_all(b"GET /search?q=temperature HTTP/1.1\r\nHost: t\r\n\r\n")
                    .unwrap();
                let mut buf = String::new();
                stream.read_to_string(&mut buf).unwrap();
                assert!(buf.starts_with("HTTP/1.1 200"));
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    server.stop();
}

#[test]
fn sql_and_sparql_consoles() {
    let server = start();
    let (status, body) = get(&server, "/sql?q=SELECT+title+FROM+pages+ORDER+BY+title");
    assert_eq!(status, 200);
    assert!(body.contains("Deployment:wfj_temp"));
    // JSON mode.
    let (status, body) = get(&server, "/sql?q=SELECT+COUNT(*)+FROM+pages&format=json");
    assert_eq!(status, 200);
    let v: serde_json::Value = serde_json::from_str(&body).unwrap();
    assert_eq!(v["rows"][0][0], "2");
    // EXPLAIN through the console.
    let (status, body) = get(
        &server,
        "/sql?q=EXPLAIN+SELECT+*+FROM+pages+WHERE+title+%3D+%27x%27",
    );
    assert_eq!(status, 200);
    assert!(body.contains("IndexSeek pages"), "{body}");
    // Writes are rejected.
    let (status, _) = get(&server, "/sql?q=DELETE+FROM+pages");
    assert_eq!(status, 400);
    // SPARQL console.
    let (status, body) = get(
        &server,
        "/sparql?q=PREFIX+prop%3A+%3Chttp%3A%2F%2Fswiss-experiment.ch%2Fproperty%2F%3E+SELECT+%3Ft+WHERE+%7B+%3Fp+prop%3Atitle+%3Ft+%7D",
    );
    assert_eq!(status, 200);
    let v: serde_json::Value = serde_json::from_str(&body).unwrap();
    assert_eq!(v["rows"].as_array().unwrap().len(), 2);
    server.stop();
}

#[test]
fn metrics_expose_planner_counters() {
    let server = start();
    // Run one indexed lookup and one trigram-eligible substring query so the
    // planner's chosen-path counters have been bumped.
    let (status, _) = get(
        &server,
        "/sql?q=SELECT+*+FROM+pages+WHERE+title+%3D+%27Fieldsite%3ADavos%27",
    );
    assert_eq!(status, 200);
    let (status, _) = get(
        &server,
        "/sql?q=SELECT+title+FROM+pages+WHERE+title+ILIKE+%27%25davos%25%27",
    );
    assert_eq!(status, 200);
    let (status, body) = get(&server, "/metrics");
    assert_eq!(status, 200);
    assert!(body.contains("sql_plan_index_seek_total"), "{body}");
    assert!(body.contains("sql_plan_trigram_seek_total"), "{body}");
    server.stop();
}

#[test]
fn turtle_export() {
    let server = start();
    let (status, ttl) = get(&server, "/export.ttl");
    assert_eq!(status, 200);
    assert!(ttl.contains("<http://swiss-experiment.ch/page/Fieldsite:Weissfluhjoch>"));
    assert!(ttl.contains("\"2693\""));
    // The export parses back as Turtle.
    let triples = sensormeta_rdf::parse_turtle(&ttl).unwrap();
    assert!(triples.len() > 5);
    server.stop();
}

#[test]
fn tag_suggestions_endpoint() {
    let server = start();
    let (status, body) = get(&server, "/suggest_tags?page=Deployment:wfj_temp");
    assert_eq!(status, 200);
    let v: serde_json::Value = serde_json::from_str(&body).unwrap();
    // wfj_temp has "snow"; the field site has "snow" + "alpine" → alpine is
    // the co-occurring suggestion.
    assert!(
        v.as_array().unwrap().iter().any(|s| s["tag"] == "alpine"),
        "{v}"
    );
    let (status, _) = get(&server, "/suggest_tags");
    assert_eq!(status, 400);
    server.stop();
}

#[test]
fn did_you_mean_in_html() {
    let server = start();
    let (status, html) = get(&server, "/search?q=temperture&format=html");
    assert_eq!(status, 200);
    assert!(html.contains("Did you mean"), "{html}");
    assert!(html.contains("temperature"));
    server.stop();
}

#[test]
fn search_html_highlights_terms() {
    let server = start();
    let (_, html) = get(&server, "/search?q=temperature&format=html");
    assert!(html.contains("<b>temperature</b>"), "{html}");
    server.stop();
}

#[test]
fn survives_malformed_requests() {
    let server = start();
    for raw in [
        "\r\n",                                           // empty request line
        "GARBAGE\r\n\r\n",                                // no target
        "GET\r\n\r\n",                                    // missing path
        "GET /%zz%% HTTP/1.1\r\n\r\n",                    // broken escapes
        "POST / HTTP/1.1\r\nContent-Length: abc\r\n\r\n", // bad length
    ] {
        let mut stream = TcpStream::connect(server.addr).unwrap();
        stream.write_all(raw.as_bytes()).unwrap();
        let mut buf = String::new();
        // Must always answer with *something* HTTP-shaped (4xx), not hang or die.
        stream.read_to_string(&mut buf).unwrap();
        assert!(
            buf.starts_with("HTTP/1.1 4") || buf.starts_with("HTTP/1.1 2"),
            "{raw:?} → {buf:?}"
        );
    }
    // Binary garbage gets a 4xx too (lossy decode in the request line).
    let mut stream = TcpStream::connect(server.addr).unwrap();
    stream
        .write_all(&[0xFFu8, 0xFE, 0x00, 0x01, b'\r', b'\n', b'\r', b'\n'])
        .unwrap();
    let mut buf = Vec::new();
    stream.read_to_end(&mut buf).unwrap();
    assert!(buf.starts_with(b"HTTP/1.1 4"), "binary garbage answered");
    // The server still works afterwards.
    let (status, _) = get(&server, "/");
    assert_eq!(status, 200);
    server.stop();
}

#[test]
fn oversized_body_is_rejected_cleanly() {
    let server = start();
    let mut stream = TcpStream::connect(server.addr).unwrap();
    write!(
        stream,
        "POST /bulkload HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
        64 * 1024 * 1024
    )
    .unwrap();
    let mut buf = String::new();
    stream.read_to_string(&mut buf).unwrap();
    assert!(buf.starts_with("HTTP/1.1 413"), "{buf}");
    server.stop();
}

#[test]
fn sql_console_injection_is_contained() {
    let server = start();
    // A stacked write smuggled behind a SELECT must fail to parse (the
    // engine only parses ONE statement for query()).
    let q = sensormeta_server::url_encode("SELECT * FROM pages; DELETE FROM pages");
    let (status, _) = get(&server, &format!("/sql?q={q}"));
    assert_eq!(status, 400);
    // The data is intact.
    let (_, body) = get(&server, "/sql?q=SELECT+COUNT(*)+FROM+pages&format=json");
    let v: serde_json::Value = serde_json::from_str(&body).unwrap();
    assert_eq!(v["rows"][0][0], "2");
    server.stop();
}
