//! Full route-surface test: drives `App::handle` directly across every
//! route (including `/metrics` and `/healthz`), asserting status codes and
//! content types, then scrapes `/metrics` and checks that the traffic left
//! nonzero per-route counters and that every instrumented subsystem
//! (server, query, relstore, rank, tagging) shows up in the exposition.

use sensormeta_obs as obs;
use sensormeta_query::QueryEngine;
use sensormeta_server::{parse_query, App, Request, Response};
use sensormeta_smr::{PageDraft, Smr};
use std::collections::BTreeMap;

fn req(method: &str, target: &str, body: &[u8]) -> Request {
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p, parse_query(q)),
        None => (target, BTreeMap::new()),
    };
    Request {
        method: method.into(),
        path: path.into(),
        query,
        headers: BTreeMap::new(),
        body: body.to_vec(),
    }
}

fn get(app: &App, target: &str) -> Response {
    app.handle(&req("GET", target, b""))
}

/// A durable repository in a scratch directory, so relstore's WAL and
/// checkpoint instrumentation fires too.
fn durable_app() -> App {
    let dir = std::env::temp_dir().join(format!(
        "sensormeta-http-surface-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let snap = dir.join("repo.snap");
    let (mut smr, _report) = Smr::open_durable(&snap).unwrap();
    smr.create_page(
        PageDraft::new("Fieldsite:Weissfluhjoch", "Fieldsite")
            .body("alpine snow research site")
            .annotate("hasElevation", "2693")
            .annotate("hasLatitude", "46.83")
            .annotate("hasLongitude", "9.81")
            .tag("snow")
            .tag("alpine"),
    )
    .unwrap();
    smr.create_page(
        PageDraft::new("Deployment:wfj_temp", "Deployment")
            .body("temperature sensor at weissfluhjoch")
            .annotate("measuresQuantity", "temperature")
            .link("Fieldsite:Weissfluhjoch")
            .tag("snow"),
    )
    .unwrap();
    smr.checkpoint().unwrap();
    App::new(QueryEngine::open(smr).unwrap())
}

#[test]
fn every_route_answers_and_counts() {
    let app = durable_app();

    // (route target, expected status, content-type prefix)
    let surface: &[(&str, u16, &str)] = &[
        ("/", 200, "text/html"),
        ("/search?q=temperature", 200, "application/json"),
        ("/search?q=temperature&format=html", 200, "text/html"),
        ("/autocomplete?prefix=Dep", 200, "application/json"),
        ("/attributes", 200, "application/json"),
        ("/recommend?title=Deployment:wfj_temp", 200, "application/json"),
        ("/tags", 200, "image/svg+xml"),
        ("/tags.json", 200, "application/json"),
        ("/viz/bar?attribute=measuresQuantity", 200, "image/svg+xml"),
        ("/viz/pie?attribute=measuresQuantity", 200, "image/svg+xml"),
        ("/viz/map?q=snow", 200, "image/svg+xml"),
        ("/viz/graph", 200, "image/svg+xml"),
        ("/viz/hypergraph", 200, "image/svg+xml"),
        ("/sql?q=SELECT%20title%20FROM%20pages", 200, "text/plain"),
        (
            "/sparql?q=PREFIX%20prop%3A%20%3Chttp%3A%2F%2Fswiss-experiment.ch%2Fproperty%2F%3E%20SELECT%20%3Ft%20WHERE%20%7B%20%3Fp%20prop%3Atitle%20%3Ft%20%7D",
            200,
            "application/json",
        ),
        ("/export.ttl", 200, "text/turtle"),
        ("/suggest_tags?page=Fieldsite:Weissfluhjoch", 200, "application/json"),
        ("/page/Deployment:wfj_temp", 200, "text/html"),
        ("/healthz", 200, "text/plain"),
        ("/metrics", 200, "text/plain"),
        ("/metrics.json", 200, "application/json"),
        ("/definitely-not-a-route", 404, "text/plain"),
    ];
    for (target, status, ctype) in surface {
        let resp = get(&app, target);
        assert_eq!(resp.status, *status, "GET {target}");
        assert!(
            resp.content_type.starts_with(ctype),
            "GET {target}: content type {} != {ctype}",
            resp.content_type
        );
        assert!(!resp.body.is_empty(), "GET {target}: empty body");
    }

    // POSTs: a JSONL bulk load, a malformed-UTF-8 bulk load (400), a tag.
    let jsonl = br#"{"title":"Deployment:wfj_wind","namespace":"Deployment","body":"wind sensor","annotations":[["measuresQuantity","wind"]],"links":[],"tags":["wind"]}"#;
    let resp = app.handle(&req("POST", "/bulkload", jsonl));
    assert_eq!(
        resp.status,
        200,
        "{:?}",
        String::from_utf8_lossy(&resp.body)
    );
    let resp = app.handle(&req("POST", "/bulkload", &[0xff, 0xfe, b'{']));
    assert_eq!(resp.status, 400, "invalid UTF-8 body must be rejected");
    let resp = app.handle(&req(
        "POST",
        "/tag?page=Deployment:wfj_wind&tag=breeze",
        b"",
    ));
    assert_eq!(resp.status, 200);
    let resp = app.handle(&req("DELETE", "/tags", b""));
    assert_eq!(resp.status, 405);

    // Scrape the exposition and check the traffic is visible.
    let metrics = get(&app, "/metrics");
    let text = String::from_utf8(metrics.body).unwrap();
    for route in [
        "home",
        "search",
        "autocomplete",
        "attributes",
        "recommend",
        "tags",
        "tags_json",
        "viz_bar",
        "viz_pie",
        "viz_map",
        "viz_graph",
        "viz_hypergraph",
        "sql",
        "sparql",
        "export_ttl",
        "suggest_tags",
        "page",
        "healthz",
        "metrics",
        "bulkload",
        "tag",
        "other",
    ] {
        let counter = format!("http_route_{route}_requests_total");
        let line = text
            .lines()
            .find(|l| l.starts_with(&counter) && !l.starts_with('#'))
            .unwrap_or_else(|| panic!("missing {counter} in exposition"));
        let value: f64 = line.split_whitespace().nth(1).unwrap().parse().unwrap();
        assert!(value >= 1.0, "{counter} = {value}");
        assert!(
            text.contains(&format!("http_route_{route}_us_count")),
            "missing latency histogram for {route}"
        );
    }
    assert!(text.contains("http_route_bulkload_status_4xx_total"));
    assert!(text.contains("http_body_utf8_rejected_total"));

    // Every instrumented subsystem surfaces in the same scrape.
    for needle in [
        "http_requests_total",              // server
        "query_searches_total",             // query engine
        "query_search_us_count",            // query span histogram
        "relstore_wal_commits_total",       // relstore WAL
        "relstore_checkpoints_total",       // relstore checkpoint
        "rank_gauss_seidel_solves_total",   // rank solver
        "tagging_cloud_cache_misses_total", // tagging cache
    ] {
        assert!(
            needle.len() > 1 && text.contains(needle),
            "missing {needle}"
        );
    }

    // JSON rendering parses and carries the same counters.
    let json_body = get(&app, "/metrics.json");
    let v: serde_json::Value =
        serde_json::from_str(std::str::from_utf8(&json_body.body).unwrap()).unwrap();
    assert!(!v["counters"].is_null());
    let _ = obs::global(); // exposition above came from the same registry
}
