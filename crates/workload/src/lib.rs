//! # sensormeta-workload
//!
//! Deterministic synthetic workloads standing in for the Swiss Experiment
//! platform's live data: web-link graphs for the ranking experiments
//! (Barabási–Albert with dangling injection, Erdős–Rényi), the paper's
//! double-link structure with partial semantic coverage, a full
//! metadata-page corpus (institutions → projects → field sites →
//! deployments), and keyword query workloads. Everything reproduces exactly
//! from a seed.

#![warn(missing_docs)]

pub mod corpus;
pub mod webgraph;

pub use corpus::{generate_corpus, query_workload, CorpusConfig, PageSpec};
pub use webgraph::{barabasi_albert, double_link_pair, erdos_renyi};
