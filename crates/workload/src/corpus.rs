//! Swiss-Experiment-style synthetic metadata corpus.
//!
//! The paper's system runs over the Swiss Experiment Platform, "where various
//! research institutes share metadata as well as real-time environmental
//! observation data". That corpus is not available, so this module generates
//! a structurally faithful substitute: institutions running projects, projects
//! operating field sites, deployments of sensors at sites, each entity a
//! metadata page with (attribute, value) annotations, inter-page links and
//! free-text descriptions. Everything is deterministic from a seed.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One generated metadata page.
#[derive(Debug, Clone, PartialEq)]
pub struct PageSpec {
    /// Unique page title, e.g. `Deployment:wannengrat_wind_03`.
    pub title: String,
    /// Namespace (entity kind).
    pub namespace: &'static str,
    /// Free-text body for full-text search.
    pub body: String,
    /// Semantic (attribute, value) annotations.
    pub annotations: Vec<(String, String)>,
    /// Titles of pages this page links to (wiki links).
    pub links: Vec<String>,
    /// User tags attached to the page.
    pub tags: Vec<String>,
    /// Optional WGS84 position for map visualization.
    pub coords: Option<(f64, f64)>,
}

/// Scale knobs for the corpus generator.
#[derive(Debug, Clone, Copy)]
pub struct CorpusConfig {
    /// Number of research institutions.
    pub institutions: usize,
    /// Projects per institution (upper bound).
    pub projects_per_institution: usize,
    /// Field sites per project (upper bound).
    pub sites_per_project: usize,
    /// Sensor deployments per site (upper bound).
    pub deployments_per_site: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for CorpusConfig {
    fn default() -> Self {
        CorpusConfig {
            institutions: 6,
            projects_per_institution: 3,
            sites_per_project: 4,
            deployments_per_site: 5,
            seed: 2011, // the paper's year
        }
    }
}

const INSTITUTIONS: &[&str] = &[
    "EPFL",
    "ETHZ",
    "WSL",
    "SLF",
    "EAWAG",
    "PSI",
    "UNIBE",
    "UNIL",
    "EMPA",
    "MeteoSwiss",
];
const SITE_NAMES: &[&str] = &[
    "Weissfluhjoch",
    "Wannengrat",
    "Davos",
    "Jungfraujoch",
    "Payerne",
    "Rietholzbach",
    "Grimsel",
    "Valais",
    "Engadin",
    "Lagrev",
    "Piora",
    "Claree",
];
const SENSOR_KINDS: &[(&str, &str)] = &[
    ("temperature", "C"),
    ("wind_speed", "m/s"),
    ("wind_direction", "deg"),
    ("snow_height", "cm"),
    ("humidity", "%"),
    ("radiation", "W/m2"),
    ("pressure", "hPa"),
    ("precipitation", "mm"),
    ("soil_moisture", "%"),
    ("discharge", "m3/s"),
];
const VENDORS: &[&str] = &[
    "Campbell",
    "Vaisala",
    "Sensirion",
    "Davis",
    "Lufft",
    "Kipp&Zonen",
];
const TOPICS: &[&str] = &[
    "snow",
    "avalanche",
    "hydrology",
    "climate",
    "permafrost",
    "alpine",
    "wind",
    "radiation",
    "forecast",
    "catchment",
];

/// Thematic tag groups: a project draws its tags from one group, so tags
/// within a group co-occur heavily across that project's pages (the
/// folksonomy structure the clique analysis of Section IV exploits). The
/// tag "alpine" bridges several groups, mirroring the paper's Fig. 5
/// multi-clique example.
const TAG_GROUPS: &[&[&str]] = &[
    &["snow", "avalanche", "winter", "alpine"],
    &["hydrology", "discharge", "catchment", "runoff"],
    &["wind", "storm", "foehn", "alpine"],
    &["radiation", "energy-balance", "albedo"],
    &["permafrost", "rockfall", "alpine"],
    &["climate", "forecast", "reanalysis"],
];

/// Generates the full corpus: a list of metadata pages covering institutions,
/// projects, field sites, and sensor deployments, cross-linked like wiki
/// pages.
pub fn generate_corpus(cfg: &CorpusConfig) -> Vec<PageSpec> {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut pages = Vec::new();

    let institutions: Vec<String> = (0..cfg.institutions)
        .map(|i| INSTITUTIONS[i % INSTITUTIONS.len()].to_string())
        .collect();

    for inst in &institutions {
        let inst_title = format!("Institution:{inst}");
        let mut inst_links = Vec::new();
        let nproj = rng.gen_range(1..=cfg.projects_per_institution);
        let mut inst_tags = pick_tags(&mut rng, &mut Vec::new(), 2);
        inst_tags.push("institution".into());

        for pj in 0..nproj {
            let topic = TOPICS[rng.gen_range(0..TOPICS.len())];
            let mut group: Vec<&str> = TAG_GROUPS[rng.gen_range(0..TAG_GROUPS.len())].to_vec();
            let proj_name = format!("{}_{topic}_{pj}", inst.to_lowercase());
            let proj_title = format!("Project:{proj_name}");
            inst_links.push(proj_title.clone());
            let mut proj_links = vec![inst_title.clone()];
            let nsites = rng.gen_range(1..=cfg.sites_per_project);
            let mut site_titles = Vec::new();

            for _ in 0..nsites {
                let site = SITE_NAMES[rng.gen_range(0..SITE_NAMES.len())];
                let site_title = format!("Fieldsite:{site}");
                site_titles.push((site.to_string(), site_title.clone()));
                proj_links.push(site_title.clone());
                // Field sites may be generated repeatedly; the SMR loader
                // dedupes by title, so emitting duplicates is fine.
                let lat = 45.8 + rng.gen::<f64>() * 1.8;
                let lon = 6.8 + rng.gen::<f64>() * 3.4;
                let elevation = rng.gen_range(400..3600);
                pages.push(PageSpec {
                    title: site_title.clone(),
                    namespace: "Fieldsite",
                    body: format!(
                        "{site} field site in the Swiss Alps at {elevation} m elevation. \
                         Environmental monitoring station for {topic} research."
                    ),
                    annotations: vec![
                        ("hasElevation".into(), elevation.to_string()),
                        ("locatedInCountry".into(), "Switzerland".into()),
                        ("hasLatitude".into(), format!("{lat:.4}")),
                        ("hasLongitude".into(), format!("{lon:.4}")),
                    ],
                    links: vec![proj_title.clone()],
                    tags: {
                        let mut t = pick_tags(&mut rng, &mut group, 3);
                        t.push(site.to_lowercase());
                        t
                    },
                    coords: Some((lat, lon)),
                });

                let ndep = rng.gen_range(1..=cfg.deployments_per_site);
                for d in 0..ndep {
                    let (kind, unit) = SENSOR_KINDS[rng.gen_range(0..SENSOR_KINDS.len())];
                    let vendor = VENDORS[rng.gen_range(0..VENDORS.len())];
                    let dep_title = format!("Deployment:{}_{kind}_{d:02}", site.to_lowercase());
                    let interval = [1, 5, 10, 30, 60][rng.gen_range(0..5)];
                    pages.push(PageSpec {
                        title: dep_title.clone(),
                        namespace: "Deployment",
                        body: format!(
                            "A {vendor} {kind} sensor deployed at {site} for project \
                             {proj_name}. Sampling every {interval} minutes, reporting in {unit}. \
                             Maintained by {inst}."
                        ),
                        annotations: vec![
                            ("measuresQuantity".into(), kind.into()),
                            ("hasUnit".into(), unit.into()),
                            ("hasVendor".into(), vendor.into()),
                            ("hasSamplingIntervalMinutes".into(), interval.to_string()),
                            ("deployedAt".into(), site.into()),
                            ("partOfProject".into(), proj_name.clone()),
                        ],
                        links: vec![site_title.clone(), proj_title.clone()],
                        tags: {
                            let mut t = pick_tags(&mut rng, &mut group, 3);
                            t.push(kind.to_string());
                            t.push(vendor.to_lowercase());
                            t
                        },
                        coords: None,
                    });
                }
            }

            pages.push(PageSpec {
                title: proj_title.clone(),
                namespace: "Project",
                body: format!(
                    "Research project {proj_name} led by {inst}, studying {topic} \
                     processes across {} field sites in Switzerland.",
                    site_titles.len()
                ),
                annotations: vec![
                    ("ledBy".into(), inst.clone()),
                    ("hasTopic".into(), topic.into()),
                    ("hasSiteCount".into(), site_titles.len().to_string()),
                ],
                links: proj_links,
                tags: {
                    let mut t = pick_tags(&mut rng, &mut group, 3);
                    t.push(topic.to_string());
                    t
                },
                coords: None,
            });
        }

        pages.push(PageSpec {
            title: inst_title,
            namespace: "Institution",
            body: format!(
                "{inst} is a Swiss research institution participating in the Swiss \
                 Experiment platform with {nproj} environmental monitoring projects."
            ),
            annotations: vec![
                ("hasProjectCount".into(), nproj.to_string()),
                ("memberOfPlatform".into(), "SwissExperiment".into()),
            ],
            links: inst_links,
            tags: inst_tags,
            coords: None,
        });
    }

    // Dedupe by title, keeping the first occurrence (sites can repeat).
    let mut seen = std::collections::HashSet::new();
    pages.retain(|p| seen.insert(p.title.clone()));
    pages
}

/// Draws `n` *distinct* tags from the project's thematic `group` (a light
/// shuffle-take), occasionally appending one off-topic tag — the correlated
/// folksonomy structure real tagging produces.
fn pick_tags(rng: &mut StdRng, group: &mut Vec<&str>, n: usize) -> Vec<String> {
    let mut out: Vec<String> = if group.is_empty() {
        (0..n)
            .map(|_| TOPICS[rng.gen_range(0..TOPICS.len())].to_string())
            .collect()
    } else {
        // Partial Fisher–Yates: the first `n` slots become a random sample.
        for i in 0..n.min(group.len()) {
            let j = rng.gen_range(i..group.len());
            group.swap(i, j);
        }
        group.iter().take(n).map(|t| t.to_string()).collect()
    };
    if rng.gen_bool(0.15) {
        out.push(TOPICS[rng.gen_range(0..TOPICS.len())].to_string());
    }
    out
}

/// A keyword-query workload sampled from corpus vocabulary: returns `n`
/// queries of 1–3 terms with a power-law skew toward common topics.
pub fn query_workload(n: usize, seed: u64) -> Vec<String> {
    let mut rng = StdRng::seed_from_u64(seed);
    let vocab: Vec<&str> = TOPICS
        .iter()
        .chain(SENSOR_KINDS.iter().map(|(k, _)| k))
        .chain(SITE_NAMES.iter())
        .copied()
        .collect();
    (0..n)
        .map(|_| {
            let terms = rng.gen_range(1..=3);
            (0..terms)
                .map(|_| {
                    // Zipf-ish skew: square the uniform to favor the head.
                    let u: f64 = rng.gen();
                    let ix = ((u * u) * vocab.len() as f64) as usize;
                    vocab[ix.min(vocab.len() - 1)]
                })
                .collect::<Vec<_>>()
                .join(" ")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_is_deterministic() {
        let cfg = CorpusConfig::default();
        let a = generate_corpus(&cfg);
        let b = generate_corpus(&cfg);
        assert_eq!(a, b);
    }

    #[test]
    fn corpus_has_all_namespaces_and_unique_titles() {
        let pages = generate_corpus(&CorpusConfig::default());
        let mut titles = std::collections::HashSet::new();
        for p in &pages {
            assert!(titles.insert(&p.title), "duplicate title {}", p.title);
        }
        for ns in ["Institution", "Project", "Fieldsite", "Deployment"] {
            assert!(
                pages.iter().any(|p| p.namespace == ns),
                "missing namespace {ns}"
            );
        }
        assert!(
            pages.len() > 50,
            "default corpus too small: {}",
            pages.len()
        );
    }

    #[test]
    fn links_point_to_existing_pages() {
        let pages = generate_corpus(&CorpusConfig::default());
        let titles: std::collections::HashSet<&str> =
            pages.iter().map(|p| p.title.as_str()).collect();
        for p in &pages {
            for l in &p.links {
                assert!(
                    titles.contains(l.as_str()),
                    "{} links to missing {l}",
                    p.title
                );
            }
        }
    }

    #[test]
    fn deployments_are_annotated_and_tagged() {
        let pages = generate_corpus(&CorpusConfig::default());
        for p in pages.iter().filter(|p| p.namespace == "Deployment") {
            let attrs: Vec<&str> = p.annotations.iter().map(|(a, _)| a.as_str()).collect();
            assert!(attrs.contains(&"measuresQuantity"));
            assert!(attrs.contains(&"hasUnit"));
            assert!(!p.tags.is_empty());
            assert!(!p.links.is_empty());
        }
    }

    #[test]
    fn fieldsites_have_coordinates_in_switzerland() {
        let pages = generate_corpus(&CorpusConfig::default());
        for p in pages.iter().filter(|p| p.namespace == "Fieldsite") {
            let (lat, lon) = p.coords.expect("fieldsites carry coordinates");
            assert!((45.0..48.5).contains(&lat));
            assert!((5.5..11.0).contains(&lon));
        }
    }

    #[test]
    fn scaling_produces_more_pages() {
        let small = generate_corpus(&CorpusConfig {
            institutions: 2,
            ..CorpusConfig::default()
        });
        let large = generate_corpus(&CorpusConfig {
            institutions: 10,
            projects_per_institution: 5,
            ..CorpusConfig::default()
        });
        assert!(large.len() > small.len() * 2);
    }

    #[test]
    fn query_workload_deterministic_and_nonempty() {
        let a = query_workload(50, 3);
        let b = query_workload(50, 3);
        assert_eq!(a, b);
        assert_eq!(a.len(), 50);
        assert!(a.iter().all(|q| !q.is_empty()));
    }
}
