//! Synthetic web-graph generators for the ranking experiments.
//!
//! Fig. 3 evaluates solver convergence/time on the SMR's page graph. We stand
//! in for that (unavailable) graph with deterministic generators whose
//! structural properties match what matters for PageRank convergence:
//! power-law in-degrees (Barabási–Albert), dangling nodes (the paper calls
//! these out explicitly), and a tunable edge density (Erdős–Rényi control).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sensormeta_graph::CsrGraph;

/// Barabási–Albert preferential attachment: each new node attaches `m` edges
/// to existing nodes with probability proportional to their degree, then a
/// `dangling_fraction` of nodes has all out-links removed (metadata pages
/// with no out-references).
pub fn barabasi_albert(n: usize, m: usize, dangling_fraction: f64, seed: u64) -> CsrGraph {
    assert!(n >= 2 && m >= 1, "need n >= 2, m >= 1");
    assert!((0.0..1.0).contains(&dangling_fraction));
    let mut rng = StdRng::seed_from_u64(seed);
    // Repeated-node trick: `targets` holds one entry per edge endpoint so
    // sampling uniformly from it is degree-proportional sampling.
    let mut endpoints: Vec<usize> = vec![0, 1];
    let mut edges: Vec<(usize, usize)> = vec![(1, 0)];
    for u in 2..n {
        let mut chosen = Vec::with_capacity(m);
        for _ in 0..m.min(u) {
            // Sample until we hit a target not already chosen (keeps the
            // graph simple).
            loop {
                let t = endpoints[rng.gen_range(0..endpoints.len())];
                if t != u && !chosen.contains(&t) {
                    chosen.push(t);
                    break;
                }
            }
        }
        for &t in &chosen {
            // Attachment is degree-preferential; the *direction* of a web
            // link is independent of page age, so flip a fair coin. (With
            // all edges pointing new→old, a forward Gauss–Seidel sweep
            // degenerates to Jacobi — real link graphs are mixed.)
            if rng.gen_bool(0.5) {
                edges.push((u, t));
            } else {
                edges.push((t, u));
            }
            endpoints.push(t);
            endpoints.push(u);
        }
    }
    // Dangling injection: strip all out-links from a random subset.
    let dangling_count = (n as f64 * dangling_fraction).round() as usize;
    let mut is_dangling = vec![false; n];
    let mut made = 0usize;
    while made < dangling_count {
        let v = rng.gen_range(0..n);
        if !is_dangling[v] {
            is_dangling[v] = true;
            made += 1;
        }
    }
    edges.retain(|(u, _)| !is_dangling[*u]);
    CsrGraph::from_edges(n, &edges, true)
}

/// Erdős–Rényi G(n, p) digraph (self-loops excluded).
pub fn erdos_renyi(n: usize, p: f64, seed: u64) -> CsrGraph {
    assert!((0.0..=1.0).contains(&p));
    let mut rng = StdRng::seed_from_u64(seed);
    let mut edges = Vec::new();
    for u in 0..n {
        for v in 0..n {
            if u != v && rng.gen::<f64>() < p {
                edges.push((u, v));
            }
        }
    }
    CsrGraph::from_edges(n, &edges, false)
}

/// Generates the paper's double-link structure: a semantic link graph that
/// only covers a `semantic_coverage` fraction of pages (the paper: "not all
/// of the metadata pages have semantic attributes") and a hyperlink graph
/// over all pages.
pub fn double_link_pair(
    n: usize,
    m: usize,
    semantic_coverage: f64,
    seed: u64,
) -> (CsrGraph, CsrGraph) {
    assert!((0.0..=1.0).contains(&semantic_coverage));
    let hyperlink = barabasi_albert(n, m, 0.1, seed);
    let mut rng = StdRng::seed_from_u64(seed.wrapping_add(0x5EED));
    let covered = (n as f64 * semantic_coverage).round() as usize;
    let mut edges = Vec::new();
    for u in 0..covered {
        // Semantic links are denser among low-numbered (older, core) pages.
        let deg = rng.gen_range(1..=3);
        for _ in 0..deg {
            let v = rng.gen_range(0..covered.max(2));
            if v != u {
                edges.push((u, v));
            }
        }
    }
    let semantic = CsrGraph::from_edges(n, &edges, true);
    (semantic, hyperlink)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sensormeta_graph::powerlaw_exponent;

    #[test]
    fn ba_graph_is_deterministic() {
        let a = barabasi_albert(500, 3, 0.15, 7);
        let b = barabasi_albert(500, 3, 0.15, 7);
        assert_eq!(a, b);
        let c = barabasi_albert(500, 3, 0.15, 8);
        assert_ne!(a, c);
    }

    #[test]
    fn ba_graph_has_requested_dangling_fraction() {
        let g = barabasi_albert(1000, 3, 0.15, 42);
        let dangling = g.dangling_nodes().len();
        // At least the injected 150; random edge orientation leaves some
        // additional nodes without out-links.
        assert!((150..400).contains(&dangling), "dangling = {dangling}");
    }

    #[test]
    fn ba_graph_indegrees_are_heavy_tailed() {
        let g = barabasi_albert(3000, 3, 0.0, 1);
        let exponent = powerlaw_exponent(&g, 3).expect("enough points to fit");
        // BA in-degree tail exponent is ~3 in theory; an unweighted log-log
        // fit over the raw histogram underestimates it, so accept a generous
        // band — the property under test is heavy-tailedness, not the number.
        assert!((1.2..4.5).contains(&exponent), "fitted exponent {exponent}");
        let max_in = g.in_degrees().into_iter().max().unwrap();
        assert!(max_in > 30, "hub expected, max in-degree {max_in}");
    }

    #[test]
    fn er_graph_edge_count_near_expectation() {
        let g = erdos_renyi(300, 0.02, 5);
        let expected = 300.0 * 299.0 * 0.02;
        let got = g.edge_count() as f64;
        assert!((got - expected).abs() < expected * 0.25, "got {got}");
    }

    #[test]
    fn double_link_pair_semantic_partial_coverage() {
        let (sem, hyp) = double_link_pair(400, 3, 0.5, 9);
        assert_eq!(sem.node_count(), hyp.node_count());
        // Pages beyond the covered half have no semantic out-links.
        let uncovered_with_links = (200..400).filter(|&v| sem.out_degree(v) > 0).count();
        assert_eq!(uncovered_with_links, 0);
        let covered_with_links = (0..200).filter(|&v| sem.out_degree(v) > 0).count();
        assert!(covered_with_links > 150);
    }
}
